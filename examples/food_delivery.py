"""Food-delivery cold start: multi-task ATNN recruiting new restaurants.

Recreates the Section V workflow (Tables IV and V): train the extended
multi-task ATNN on (restaurant, user-group) samples with VpPV and GMV
labels, compare its cold-start accuracy against the non-adversarial
TNN-DCN, then use it to recruit new applicants and compare realised
first-month outcomes against a simulated human reviewer.

Usage::

    python examples/food_delivery.py
"""

import numpy as np

from repro.core import ExpertConfig, ExpertSelector, select_top_k
from repro.data import train_test_split, zero_statistics
from repro.experiments import build_eleme_artifacts
from repro.experiments.table5 import _cold_start_features, _rank_blend
from repro.metrics import mae
from repro.utils import format_table
from repro.utils.rng import derive_seed


def main() -> None:
    # Train both the adversarial and non-adversarial multi-task models on
    # the same synthetic Ele.me world.
    atnn = build_eleme_artifacts("smoke", adversarial=True)
    baseline = build_eleme_artifacts("smoke", world=atnn.world, adversarial=False)
    world = atnn.world
    print(f"world: {len(world.restaurants)} signed-up restaurants, "
          f"{len(world.new_restaurants)} new applicants, "
          f"{len(world.user_groups)} user groups\n")

    # ------------------------------------------------------------------
    # Offline cold-start accuracy (Table IV workflow): statistics zeroed.
    # ------------------------------------------------------------------
    rng = np.random.default_rng(derive_seed(atnn.preset.seed, "eleme-split"))
    _, test = train_test_split(world.samples, 0.2, rng)
    cold = zero_statistics(test.schema, test.features)

    rows = []
    for task in ("vppv", "gmv"):
        truth = test.label(task)
        baseline_mae = mae(truth, baseline.model.predict(cold, task))
        atnn_mae = mae(truth, atnn.model.predict(cold, task, cold_start=True))
        rows.append([task.upper(), baseline_mae, atnn_mae,
                     100 * (baseline_mae - atnn_mae) / baseline_mae])
    print(format_table(
        ["Task", "TNN-DCN MAE", "ATNN MAE", "Improvement %"], rows,
        precision=4, title="Cold-start regression accuracy (new applicants)",
    ))

    # ------------------------------------------------------------------
    # Recruitment A/B test (Table V workflow).
    # ------------------------------------------------------------------
    features = _cold_start_features(world)
    predicted_vppv = atnn.model.predict(features, "vppv", cold_start=True)
    predicted_gmv = atnn.model.predict(features, "gmv", cold_start=True)
    blend = _rank_blend(predicted_vppv, predicted_gmv)

    k = len(world.new_restaurants) // 5
    model_picks = select_top_k(blend, k)

    reviewer = ExpertSelector(ExpertConfig(
        feature_weights={"rest_photo_quality": 1.0, "rest_menu_breadth": 0.4},
        judgement_noise=1.6,
    ))
    reviewer_scores = reviewer.score(
        world.new_restaurants,
        np.random.default_rng(3),
        insight=world.new_restaurant_attractiveness,
    )
    reviewer_picks = select_top_k(reviewer_scores, k)

    outcome_rng = np.random.default_rng(4)
    expert_vppv, expert_gmv = world.realized_outcomes(reviewer_picks, outcome_rng)
    model_vppv, model_gmv = world.realized_outcomes(model_picks, outcome_rng)

    print(format_table(
        ["Recruiter", "Realised VpPV", "Realised GMV"],
        [
            ["Human reviewer", expert_vppv.mean(), expert_gmv.mean()],
            ["Multi-task ATNN", model_vppv.mean(), model_gmv.mean()],
        ],
        precision=3,
        title=f"\nFirst-30-day outcomes of recruited restaurants (k={k})",
    ))


if __name__ == "__main__":
    main()
