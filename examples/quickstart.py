"""Quickstart: train ATNN on a synthetic Tmall world and score new arrivals.

Runs in well under a minute and walks through the full public API:

1. generate a synthetic e-commerce world,
2. train the adversarial two-tower model (Algorithm 1),
3. evaluate both prediction paths (encoder vs cold-start generator),
4. build the O(1) popularity service and rank the new arrivals.

Usage::

    python examples/quickstart.py
"""

import numpy as np

from repro.core import ATNN, ATNNTrainer, PopularityPredictor, TowerConfig
from repro.data import train_test_split
from repro.data.synthetic import TmallConfig, generate_tmall_world
from repro.metrics import roc_auc


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A small synthetic world: users, released items (with engagement
    #    statistics), new arrivals (profiles only) and click interactions.
    # ------------------------------------------------------------------
    world = generate_tmall_world(
        TmallConfig(
            n_users=1000,
            n_items=1500,
            n_new_items=500,
            n_interactions=40_000,
            seed=7,
        )
    )
    train, test = train_test_split(
        world.interactions, test_fraction=0.2, rng=np.random.default_rng(0)
    )
    print(f"world: {len(world.users)} users, {len(world.items)} items, "
          f"{len(world.new_items)} new arrivals, {len(train)} train rows")

    # ------------------------------------------------------------------
    # 2. ATNN: item encoder (profiles + statistics), generator (profiles
    #    only, shared embeddings) and user tower, trained by alternating
    #    L_i and L_g + lambda * L_s.
    # ------------------------------------------------------------------
    model = ATNN(
        world.schema,
        TowerConfig(vector_dim=16, deep_dims=(32, 16), head_dims=(32,),
                    num_cross_layers=2),
        rng=np.random.default_rng(1),
    )
    trainer = ATNNTrainer(
        lambda_similarity=0.1, epochs=3, batch_size=512, lr=2e-3, verbose=True
    )
    trainer.fit(model, train)

    # ------------------------------------------------------------------
    # 3. Both CTR paths on held-out interactions.
    # ------------------------------------------------------------------
    labels = test.label("ctr")
    auc_encoder = roc_auc(labels, model.predict_proba(test.features))
    auc_generator = roc_auc(labels, model.predict_proba_cold_start(test.features))
    print(f"\nencoder-path AUC (complete features): {auc_encoder:.4f}")
    print(f"generator-path AUC (profiles only):   {auc_generator:.4f}")

    # ------------------------------------------------------------------
    # 4. O(1) popularity: store the mean user vector of the active-user
    #    group once, then score each new arrival against it.
    # ------------------------------------------------------------------
    predictor = PopularityPredictor(model)
    predictor.fit_user_group(world.active_user_group(fraction=0.25))
    scores = predictor.score_items(world.new_items)

    top = np.argsort(scores)[::-1][:5]
    print("\ntop-5 predicted new arrivals (score / true popularity):")
    for item in top:
        print(f"  item {item:4d}: {scores[item]:.3f} / "
              f"{world.new_item_popularity[item]:.3f}")
    corr = np.corrcoef(scores, world.new_item_popularity)[0, 1]
    print(f"\ncorrelation with ground-truth popularity: {corr:.3f}")


if __name__ == "__main__":
    main()
