"""User-preference segmentation: the paper's future-work direction.

Section VI of the paper suggests grouping users by preference before
making new-arrival predictions.  This example clusters the active-user
group in the trained model's vector space, compares the segmented
popularity ranking with the single-mean-vector strategy, and surfaces
*niche* items — strong for one taste segment, unremarkable on average —
that a single global ranking would bury.

Usage::

    python examples/segmented_popularity.py
"""

import numpy as np

from repro.core import SegmentedPopularityPredictor
from repro.data.synthetic import TmallConfig, generate_tmall_world
from repro.experiments import build_tmall_artifacts
from repro.metrics import rank_correlation
from repro.utils import format_table


def main() -> None:
    world = generate_tmall_world(
        TmallConfig(
            n_users=1500,
            n_items=2000,
            n_new_items=600,
            n_interactions=60_000,
            seed=7,
        )
    )
    artifacts = build_tmall_artifacts("smoke", world=world)

    predictor = SegmentedPopularityPredictor(artifacts.model, n_segments=4)
    predictor.fit_user_group(
        world.active_user_group(0.25), rng=np.random.default_rng(0)
    )
    sizes = ", ".join(f"{w:.1%}" for w in predictor.segment_weights)
    print(f"taste segments: {predictor.clustering.k} "
          f"(user-group shares: {sizes})\n")

    truth = world.new_item_popularity
    single = artifacts.predictor.score_items(world.new_items)
    seg_mean = predictor.score_items(world.new_items, aggregation="mean")
    seg_max = predictor.score_items(world.new_items, aggregation="max")

    print(format_table(
        ["Ranking strategy", "Rank corr vs true popularity"],
        [
            ["single mean user vector (paper)", rank_correlation(single, truth)],
            ["segmented, weighted mean", rank_correlation(seg_mean, truth)],
            ["segmented, best segment (max)", rank_correlation(seg_max, truth)],
        ],
        precision=4,
    ))

    # Niche discovery: items one segment loves far more than the average.
    matrix = predictor.segment_scores(world.new_items)
    niche = predictor.niche_items(world.new_items, top_k=5)
    print("\nniche candidates (best-segment score vs weighted mean):")
    for item in niche:
        best_segment = int(matrix[item].argmax())
        print(
            f"  item {item:4d}: segment {best_segment} scores "
            f"{matrix[item].max():.3f} vs mean {matrix[item] @ predictor.segment_weights:.3f} "
            f"(true popularity {truth[item]:.3f})"
        )


if __name__ == "__main__":
    main()
