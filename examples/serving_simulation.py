"""Real-time serving loop: streaming events, lazy refresh, two APIs.

Simulates the paper's deployment (Section IV-D): a trained ATNN serves a
catalogue of brand-new items; behaviour events stream in; the engine
refreshes popularity scores — generator path for cold items, encoder path
with live statistics once items warm up — and answers both downstream
applications (promotion selection and personalised recommendation).

Usage::

    python examples/serving_simulation.py
"""

import numpy as np

from repro.experiments import build_tmall_artifacts
from repro.serving import EngineConfig, RealTimeEngine, generate_event_stream


def main() -> None:
    artifacts = build_tmall_artifacts("smoke")
    world = artifacts.world

    engine = RealTimeEngine(
        model=artifacts.model,
        catalogue=world.new_items,
        user_group=world.active_user_group(0.25),
        config=EngineConfig(warm_view_threshold=30),
    )
    print(f"catalogue: {len(world.new_items)} new arrivals\n")

    # ------------------------------------------------------------------
    # T0: everything is cold — generator-path scores only.
    # ------------------------------------------------------------------
    cold_scores = engine.refresh()
    cold_corr = np.corrcoef(cold_scores, world.new_item_popularity)[0, 1]
    print(f"T0 (all cold): corr(scores, true popularity) = {cold_corr:.3f}")
    print(f"   top-5 promotion candidates: {engine.top_promotion_candidates(5)}")

    # ------------------------------------------------------------------
    # Stream an hour of behaviour events and refresh.
    # ------------------------------------------------------------------
    rng = np.random.default_rng(42)
    events = generate_event_stream(
        world,
        item_indices=np.arange(len(world.new_items)),
        n_events=30_000,
        rng=rng,
    )
    engine.ingest(events)
    warm = engine.store.warm_slots(30)
    print(f"\ningested {engine.events_seen} events; {warm.size} items are warm")

    warm_scores = engine.refresh()
    warm_corr = np.corrcoef(warm_scores, world.new_item_popularity)[0, 1]
    print(f"T1 (mixed): corr(scores, true popularity) = {warm_corr:.3f}")
    print(f"   top-5 promotion candidates: {engine.top_promotion_candidates(5)}")

    # ------------------------------------------------------------------
    # Personalised recommendation for one user.
    # ------------------------------------------------------------------
    user_row = {
        name: world.users[name][:1]
        for name in world.schema.all_column_names("user")
    }
    recommendations = engine.recommend_for_user(user_row, k=5)
    print(f"\npersonalised top-5 for user 0: {recommendations}")
    print(f"refreshes performed: {engine.refreshes}")


if __name__ == "__main__":
    main()
