"""New-arrivals selection campaign: ATNN vs a human-expert heuristic.

Recreates the workflow behind the paper's Tables II and III on a small
world: rank the incoming new-arrival pool, pick the top slice, release
everything, and compare realised business outcomes (IPV / AtF / GMV panels
and time-to-first-five-transactions) between the model's picks and a
simulated merchandising expert's picks.

Usage::

    python examples/new_arrivals_ranking.py
"""

import numpy as np

from repro.core import (
    ExpertConfig,
    ExpertSelector,
    first_k_transaction_time,
    select_top_k,
)
from repro.data.synthetic import TmallConfig, generate_tmall_world, simulate_behavior
from repro.experiments import build_tmall_artifacts
from repro.metrics import popularity_group_panel
from repro.utils import format_table


def main() -> None:
    # Train the full stack once (world + ATNN + popularity service) on a
    # mid-size world — big enough for the ranking signal to be clear.
    world = generate_tmall_world(
        TmallConfig(
            n_users=1500,
            n_items=2000,
            n_new_items=600,
            n_interactions=60_000,
            seed=7,
        )
    )
    artifacts = build_tmall_artifacts("smoke", world=world)
    pool = world.new_items
    print(f"candidate pool: {len(pool)} new arrivals\n")

    # ------------------------------------------------------------------
    # Quintile business panel (Table II workflow).
    # ------------------------------------------------------------------
    scores = artifacts.predictor.score_items(pool)
    panel_rng = np.random.default_rng(100)
    behavior = simulate_behavior(
        world.new_item_popularity, world.new_item_prices, panel_rng
    )
    panel = popularity_group_panel(
        scores,
        {
            "IPV": {7: behavior.cumulative("ipv", 7)},
            "GMV": {30: behavior.cumulative("gmv", 30)},
        },
    )
    rows = [
        [label, panel.column("IPV", 7)[i], panel.column("GMV", 30)[i]]
        for i, label in enumerate(panel.group_labels)
    ]
    print(format_table(
        ["Predicted rank group", "7-day IPV", "30-day GMV"], rows,
        precision=2, title="Business outcomes by predicted popularity group",
    ))

    # ------------------------------------------------------------------
    # Selection A/B test (Table III workflow).
    # ------------------------------------------------------------------
    k = len(pool) // 5
    expert = ExpertSelector(ExpertConfig(judgement_noise=1.2))
    expert_scores = expert.score(
        pool, np.random.default_rng(7), insight=world.new_item_quality
    )
    expert_picks = select_top_k(expert_scores, k)
    model_picks = select_top_k(scores, k)

    outcome = simulate_behavior(
        world.new_item_popularity, world.new_item_prices,
        np.random.default_rng(200),
    )
    expert_days = first_k_transaction_time(
        outcome.first_k_day[expert_picks], outcome.horizon_days
    )
    model_days = first_k_transaction_time(
        outcome.first_k_day[model_picks], outcome.horizon_days
    )
    overlap = len(set(expert_picks) & set(model_picks))

    print(f"\nselection size per arm: {k} (overlap {overlap})")
    print(f"expert picks — avg days to 5 transactions: {expert_days:.2f}")
    print(f"ATNN picks   — avg days to 5 transactions: {model_days:.2f}")
    print(f"improvement: {100 * (expert_days - model_days) / expert_days:.1f}%")


if __name__ == "__main__":
    main()
