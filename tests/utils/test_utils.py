"""Utility module tests: rng, tables, timer, serialization, validation."""

import json
import time

import numpy as np
import pytest

from repro.nn.layers import Linear
from repro.utils import (
    Timer,
    derive_seed,
    format_table,
    format_value,
    load_json,
    load_model,
    make_rng,
    save_json,
    save_model,
    spawn,
    time_callable,
)
from repro.utils.validation import (
    as_1d_float,
    as_1d_int,
    require_in_range,
    require_positive,
    require_probability,
    require_same_length,
)


class TestRng:
    def test_make_rng_deterministic(self):
        assert make_rng(7).random() == make_rng(7).random()

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            make_rng(-1)

    def test_derive_seed_depends_on_label(self):
        assert derive_seed(1, "users") != derive_seed(1, "items")

    def test_derive_seed_depends_on_parent(self):
        assert derive_seed(1, "users") != derive_seed(2, "users")

    def test_derive_seed_deterministic(self):
        assert derive_seed(5, "x") == derive_seed(5, "x")

    def test_spawn_independent_streams(self):
        a, b = spawn(0, ["alpha", "beta"])
        assert a.random() != b.random()


class TestTabulate:
    def test_format_value(self):
        assert format_value(None) == "-"
        assert format_value(1.23456, precision=2) == "1.23"
        assert format_value("text") == "text"
        assert format_value(7) == "7"
        assert format_value(True) == "True"

    def test_table_structure(self):
        table = format_table(["a", "bb"], [[1, 2.5], [3, 4.5]])
        lines = table.splitlines()
        assert lines[0].startswith("+")
        assert "| a" in lines[1]
        assert len({len(line) for line in lines}) == 1  # aligned

    def test_title(self):
        table = format_table(["a"], [[1]], title="My Table")
        assert table.splitlines()[0] == "My Table"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestTimer:
    def test_context_manager_measures(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.01

    def test_exit_without_enter_is_noop(self):
        timer = Timer()
        timer.__exit__(None, None, None)  # must not raise
        assert timer.elapsed == 0.0

    def test_reenterable(self):
        timer = Timer()
        with timer:
            time.sleep(0.002)
        first = timer.elapsed
        with timer:
            pass
        assert timer.elapsed < first  # second run overwrote the first

    def test_double_exit_keeps_first_measurement(self):
        timer = Timer()
        with timer:
            time.sleep(0.002)
        first = timer.elapsed
        timer.__exit__(None, None, None)
        assert timer.elapsed == first

    def test_named_timer_reports_to_active_registry(self):
        from repro.obs import MetricsRegistry, use_registry

        registry = MetricsRegistry()
        with use_registry(registry):
            with Timer("step"):
                pass
            with Timer("step"):
                pass
        assert registry.histogram("timer.step").count == 2

    def test_unnamed_timer_registers_nothing(self):
        from repro.obs import MetricsRegistry, use_registry

        registry = MetricsRegistry()
        with use_registry(registry):
            with Timer():
                pass
        assert not registry.names()

    def test_time_callable_returns_minimum(self):
        value = time_callable(lambda: time.sleep(0.002), repeats=2)
        assert 0.001 < value < 0.5

    def test_invalid_repeats_rejected(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)


class TestSerialization:
    def test_model_roundtrip(self, tmp_path, rng):
        layer = Linear(3, 2, rng=rng)
        path = tmp_path / "model.npz"
        save_model(layer, path)
        other = Linear(3, 2, rng=np.random.default_rng(99))
        load_model(other, path)
        np.testing.assert_allclose(layer.weight.data, other.weight.data)

    def test_load_missing_file_rejected(self, tmp_path, rng):
        with pytest.raises(FileNotFoundError):
            load_model(Linear(2, 2, rng=rng), tmp_path / "nope.npz")

    def test_json_roundtrip_with_numpy_types(self, tmp_path):
        path = tmp_path / "out.json"
        save_json(
            {
                "int": np.int64(3),
                "float": np.float64(1.5),
                "bool": np.bool_(True),
                "array": np.array([1.0, 2.0]),
            },
            path,
        )
        loaded = load_json(path)
        assert loaded == {"int": 3, "float": 1.5, "bool": True, "array": [1.0, 2.0]}

    def test_json_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "a" / "b" / "out.json"
        save_json({"x": 1}, path)
        assert path.exists()


class TestValidation:
    def test_require_positive(self):
        require_positive(1.0, "x")
        with pytest.raises(ValueError):
            require_positive(0.0, "x")

    def test_require_in_range(self):
        require_in_range(0.5, 0.0, 1.0, "x")
        with pytest.raises(ValueError):
            require_in_range(1.5, 0.0, 1.0, "x")

    def test_require_probability(self):
        require_probability(1.0, "p")
        with pytest.raises(ValueError):
            require_probability(-0.1, "p")

    def test_require_same_length(self):
        require_same_length([1, 2], [3, 4])
        with pytest.raises(ValueError):
            require_same_length([1], [2, 3])

    def test_as_1d_float(self):
        out = as_1d_float([1, 2], "x")
        assert out.dtype == np.float64
        with pytest.raises(ValueError):
            as_1d_float([[1.0]], "x")

    def test_as_1d_int(self):
        out = as_1d_int([1.0, 2.0], "x")
        assert out.dtype == np.int64
        with pytest.raises(ValueError):
            as_1d_int([1.5], "x")
        with pytest.raises(ValueError):
            as_1d_int([[1]], "x")
