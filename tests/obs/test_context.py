"""Request-scoped trace context: identity, nesting, observers."""

import pytest

from repro.obs import Tracer, use_tracer
from repro.obs.context import (
    MAX_SPANS_PER_REQUEST,
    RequestRecord,
    TraceContext,
    current_trace_context,
    new_trace_id,
    register_request_observer,
    request_scope,
    unregister_request_observer,
    use_trace_context,
)


class _Collector:
    def __init__(self):
        self.records = []

    def on_request(self, record):
        self.records.append(record)


@pytest.fixture
def collector():
    observer = _Collector()
    register_request_observer(observer)
    yield observer
    unregister_request_observer(observer)


class TestTraceIds:
    def test_unique_and_monotonic(self):
        ids = [new_trace_id() for _ in range(100)]
        assert len(set(ids)) == 100
        prefixes = {trace_id.split("-")[0] for trace_id in ids}
        assert len(prefixes) == 1  # one process prefix

    def test_no_active_context_outside_scopes(self):
        assert current_trace_context() is None


class TestRequestScope:
    def test_root_scope_sets_and_clears_context(self):
        with request_scope("ingest") as ctx:
            assert current_trace_context() is ctx
            assert ctx.kind == "ingest"
            assert ctx.parent_id is None
        assert current_trace_context() is None

    def test_nested_scope_shares_trace_and_storage(self):
        with request_scope("top_k") as root:
            with request_scope("refresh") as child:
                assert child.trace_id == root.trace_id
                assert child.parent_id == root.span_id
                assert child.span_id != root.span_id
                child.note("slots_rescored", 3)
            # Child decisions land on the shared request storage.
            assert root.decisions["slots_rescored"] == 3

    def test_baggage_propagates_to_children(self):
        with request_scope("a", baggage={"shard": "7"}) as root:
            with request_scope("b") as child:
                assert child.baggage["shard"] == "7"
            assert root.baggage["shard"] == "7"

    def test_exception_reraised_and_context_cleared(self):
        with pytest.raises(RuntimeError):
            with request_scope("boom"):
                raise RuntimeError("nope")
        assert current_trace_context() is None


class TestRequestObservers:
    def test_root_scope_notifies_with_record(self, collector):
        with request_scope("ingest") as ctx:
            ctx.note("events_applied", 12)
        assert len(collector.records) == 1
        record = collector.records[0]
        assert isinstance(record, RequestRecord)
        assert record.trace_id == ctx.trace_id
        assert record.kind == "ingest"
        assert record.status == "ok"
        assert record.decisions == {"events_applied": 12}
        assert record.duration_seconds >= 0.0

    def test_nested_scope_produces_single_record(self, collector):
        with request_scope("outer"):
            with request_scope("inner"):
                pass
        assert [r.kind for r in collector.records] == ["outer"]

    def test_error_status_and_message(self, collector):
        with pytest.raises(ValueError):
            with request_scope("broken"):
                raise ValueError("k out of range")
        record = collector.records[0]
        assert record.status == "error"
        assert "k out of range" in record.error

    def test_tracer_spans_attach_to_request(self, collector):
        tracer = Tracer()
        with use_tracer(tracer), request_scope("req"):
            with tracer.span("work"):
                with tracer.span("sub"):
                    pass
        record = collector.records[0]
        paths = [path for path, _, _ in record.spans]
        assert paths == ["work/sub", "work"]  # pop order

    def test_span_cap_counts_drops(self, collector):
        with request_scope("req") as ctx:
            for index in range(MAX_SPANS_PER_REQUEST + 5):
                ctx.record_span(f"s{index}", 0.0, 0.001)
        record = collector.records[0]
        assert len(record.spans) == MAX_SPANS_PER_REQUEST
        assert record.spans_dropped == 5


class TestRequestRecord:
    def _record(self, spans):
        return RequestRecord(
            trace_id="t-1",
            kind="req",
            started_unix=0.0,
            started_perf=100.0,
            duration_seconds=0.05,
            status="ok",
            spans=spans,
        )

    def test_as_dict_renders_relative_starts(self):
        record = self._record([("work", 100.01, 0.02)])
        payload = record.as_dict()
        span = payload["spans"][0]
        assert span["path"] == "work"
        assert span["start_seconds"] == pytest.approx(0.01)
        assert span["duration_seconds"] == pytest.approx(0.02)

    def test_self_times_subtract_direct_children(self):
        record = self._record(
            [
                ("work/sub", 100.0, 0.03),
                ("work", 100.0, 0.05),
                ("other", 100.06, 0.001),
            ]
        )
        self_times = record.span_self_times()
        assert self_times["work"] == pytest.approx(0.02)
        assert self_times["work/sub"] == pytest.approx(0.03)
        assert record.hottest_span() == "work/sub"

    def test_hottest_span_none_without_spans(self):
        assert self._record([]).hottest_span() is None


class TestUseTraceContext:
    def test_activates_externally_built_context(self):
        context = TraceContext(kind="replay")
        with use_trace_context(context):
            assert current_trace_context() is context
        assert current_trace_context() is None
