"""SLO declarations, error budgets, burn rates, and generated alerting."""

import pytest

from repro.obs import MetricsRegistry, use_registry
from repro.obs.context import RequestRecord, request_scope
from repro.obs.slo import (
    SLO,
    SLOTracker,
    SLOWindow,
    default_serving_slos,
    get_active_slo_tracker,
    use_slo_tracker,
)


def _request(kind="ingest", duration=0.01, status="ok"):
    return RequestRecord(
        trace_id="t-1",
        kind=kind,
        started_unix=0.0,
        started_perf=0.0,
        duration_seconds=duration,
        status=status,
    )


class TestSLOValidation:
    def test_kind_checked(self):
        with pytest.raises(ValueError, match="kind"):
            SLO("x", "nonsense")

    def test_objective_bounds(self):
        with pytest.raises(ValueError, match="objective"):
            SLO("x", "availability", objective=1.0)

    def test_latency_needs_threshold(self):
        with pytest.raises(ValueError, match="threshold"):
            SLO.latency("x", 0.0)

    def test_quality_needs_metric(self):
        with pytest.raises(ValueError, match="metric"):
            SLO("x", "quality")

    def test_fast_window_cannot_exceed_window(self):
        with pytest.raises(ValueError, match="fast_window"):
            SLO.availability("x", window=10, fast_window=20)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SLOTracker([SLO.availability("a"), SLO.availability("a")])


class TestSLOWindow:
    def test_warmup_reports_none(self):
        window = SLOWindow(SLO.availability("a", min_events=5))
        for _ in range(4):
            window.add(True)
        assert window.burn_rate() is None
        assert window.budget_remaining() is None

    def test_budget_full_on_clean_stream(self):
        window = SLOWindow(SLO.availability("a", objective=0.9, min_events=5))
        for _ in range(20):
            window.add(True)
        assert window.budget_remaining() == pytest.approx(1.0)
        assert window.burn_rate() == pytest.approx(0.0)

    def test_budget_exhausts_and_goes_negative(self):
        slo = SLO.availability(
            "a", objective=0.9, window=10, fast_window=5, min_events=5
        )
        window = SLOWindow(slo)
        for _ in range(8):
            window.add(True)
        for _ in range(2):
            window.add(False)
        # 2 bad of 10 with 1 allowed: budget fully spent and then some.
        assert window.budget_remaining() == pytest.approx(-1.0)

    def test_burn_rate_is_min_of_windows(self):
        slo = SLO.availability(
            "a", objective=0.9, window=20, fast_window=5, min_events=5
        )
        window = SLOWindow(slo)
        for _ in range(15):
            window.add(False)
        for _ in range(5):
            window.add(True)
        # Slow window burns hot (15/20 bad) but the fast window is clean,
        # so the multi-window burn rate stays at the fast window's zero.
        assert window.burn_rate_slow() > 1.0
        assert window.burn_rate_fast() == pytest.approx(0.0)
        assert window.burn_rate() == pytest.approx(0.0)

    def test_latency_percentiles_reported(self):
        slo = SLO.latency("l", 0.1, min_events=1)
        window = SLOWindow(slo)
        for duration in (0.01, 0.02, 0.03):
            window.add(True, duration=duration)
        snapshot = window.snapshot()
        assert snapshot["slo.l.p50_seconds"] == pytest.approx(0.02)
        assert snapshot["slo.l.p99_seconds"] <= 0.03 + 1e-9

    def test_window_eviction_restores_budget(self):
        slo = SLO.availability(
            "a", objective=0.5, window=4, fast_window=2, min_events=2
        )
        window = SLOWindow(slo)
        for good in (False, False, False, False):
            window.add(good)
        assert window.budget_remaining() < 0
        for _ in range(4):
            window.add(True)
        assert window.budget_remaining() == pytest.approx(1.0)


class TestSLOTracker:
    def _tracker(self, **kwargs):
        slos = [
            SLO.latency(
                "lat", 0.05, objective=0.9, window=10, fast_window=5,
                min_events=5,
            ),
            SLO.availability(
                "avail", objective=0.9, window=10, fast_window=5, min_events=5,
            ),
            SLO.quality(
                "auc", "quality.streaming_auc", floor=0.6, objective=0.9,
                window=10, fast_window=5, min_events=5,
            ),
        ]
        return SLOTracker(slos, **kwargs)

    def test_generated_rules_cover_burn_and_budget(self):
        tracker = self._tracker()
        names = {rule.name for rule in tracker.alerts.rules}
        assert names == {
            "slo-burn:lat", "slo-budget:lat",
            "slo-burn:avail", "slo-budget:avail",
            "slo-burn:auc", "slo-budget:auc",
        }

    def test_latency_requests_fold_into_windows(self):
        tracker = self._tracker(evaluate_every=0)
        for _ in range(8):
            tracker.on_request(_request(duration=0.01))
        for _ in range(2):
            tracker.on_request(_request(duration=0.2))
        snapshot = tracker.snapshot()
        assert snapshot["slo.lat.window_bad"] == 2.0
        assert snapshot["slo.avail.window_bad"] == 0.0

    def test_request_kind_filter(self):
        slo = SLO.latency(
            "ref", 0.05, request_kind="refresh", min_events=1
        )
        tracker = SLOTracker([slo], evaluate_every=0)
        tracker.on_request(_request(kind="ingest"))
        tracker.on_request(_request(kind="refresh"))
        assert tracker.snapshot()["slo.ref.window_events"] == 1.0

    def test_error_requests_burn_availability(self):
        tracker = self._tracker(evaluate_every=0)
        for _ in range(10):
            tracker.on_request(_request(status="error"))
        assert "avail" in tracker.exhausted()

    def test_quality_snapshot_feeds_quality_slo(self):
        tracker = self._tracker(evaluate_every=0)
        for _ in range(6):
            tracker.observe_quality({"quality.streaming_auc": 0.4})
        assert "auc" in tracker.exhausted()
        # None / missing metrics are skipped, not counted bad.
        before = tracker.snapshot()["slo.auc.window_events"]
        tracker.observe_quality({"quality.streaming_auc": None})
        tracker.observe_quality({})
        assert tracker.snapshot()["slo.auc.window_events"] == before

    def test_sustained_breach_fires_burn_alert(self):
        tracker = self._tracker(evaluate_every=0)
        for _ in range(10):
            tracker.on_request(_request(duration=0.2))
            tracker.evaluate()
        fired = [alert.rule for alert in tracker.alerts.fired]
        assert "slo-burn:lat" in fired
        assert "slo-budget:lat" in fired

    def test_single_spike_stays_silent(self):
        tracker = self._tracker(evaluate_every=0)
        for index in range(30):
            duration = 0.2 if index == 10 else 0.01
            tracker.on_request(_request(duration=duration))
            tracker.evaluate()
        assert not [
            a for a in tracker.alerts.fired if a.rule.startswith("slo-burn")
        ]

    def test_evaluate_mirrors_gauges_to_registry(self):
        registry = MetricsRegistry()
        tracker = self._tracker(evaluate_every=0)
        with use_registry(registry):
            for _ in range(10):
                tracker.on_request(_request(duration=0.01))
            tracker.evaluate()
        assert registry.gauge("slo.lat.budget_remaining").value == pytest.approx(1.0)
        text = registry.to_prometheus_text()
        assert "slo_lat_budget_remaining" in text

    def test_auto_evaluate_cadence(self):
        tracker = self._tracker(evaluate_every=4)
        for _ in range(8):
            tracker.on_request(_request(duration=0.01))
        assert tracker.alerts.evaluations == 2

    def test_alert_carries_trace_id_of_evaluating_request(self):
        tracker = self._tracker(evaluate_every=0)
        for _ in range(10):
            tracker.on_request(_request(duration=0.2))
        with request_scope("refresh") as ctx:
            transitions = tracker.evaluate()
        fired = [t for t in transitions if t.kind == "fired"]
        assert fired
        assert all(alert.trace_id == ctx.trace_id for alert in fired)

    def test_iter_records_and_to_text(self):
        tracker = self._tracker(evaluate_every=0)
        for _ in range(10):
            tracker.on_request(_request(duration=0.01))
        records = list(tracker.iter_records())
        assert [r["name"] for r in records] == ["auc", "avail", "lat"]
        assert all(r["type"] == "slo" for r in records)
        assert "budget_remaining" in tracker.to_text()


class TestActiveTracker:
    def test_scoped_activation_and_request_feed(self):
        tracker = SLOTracker(
            [SLO.availability("a", min_events=1)], evaluate_every=0
        )
        assert get_active_slo_tracker() is None
        with use_slo_tracker(tracker):
            assert get_active_slo_tracker() is tracker
            with request_scope("ingest"):
                pass
        assert get_active_slo_tracker() is None
        assert tracker.requests_seen == 1
        # Requests after deactivation are not delivered.
        with request_scope("ingest"):
            pass
        assert tracker.requests_seen == 1


class TestDefaultServingSLOs:
    def test_stock_set_names_and_kinds(self):
        slos = default_serving_slos()
        assert [(s.name, s.kind) for s in slos] == [
            ("serving-latency", "latency"),
            ("serving-availability", "availability"),
            ("streaming-auc", "quality"),
        ]
