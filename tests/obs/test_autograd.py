"""Autograd profiler: per-op forward/backward accounting and clean unpatching."""

import numpy as np
import pytest

from repro.nn import concat, embedding_lookup
from repro.nn.tensor import Tensor
from repro.obs import AutogradProfiler


def _small_graph():
    w = Tensor(np.ones((3, 2)), requires_grad=True)
    x = Tensor(np.array([[1.0, 2.0, 3.0]]))
    return w, ((x @ w).sigmoid().sum())


class TestProfiling:
    def test_forward_and_backward_recorded(self):
        with AutogradProfiler() as profiler:
            _, loss = _small_graph()
            loss.backward()
        report = profiler.report()
        for op in ("matmul", "sigmoid", "sum"):
            assert report[op].calls == 1
            assert report[op].forward_seconds >= 0.0
            assert report[op].backward_calls == 1
            assert report[op].backward_seconds >= 0.0

    def test_by_value_imports_are_profiled(self):
        """Ops imported by value elsewhere still dispatch through the hook."""
        with AutogradProfiler() as profiler:
            w = Tensor(np.ones((4, 2)), requires_grad=True)
            gathered = embedding_lookup(w, np.array([0, 1, 1]))
            joined = concat([gathered, gathered], axis=1)
            joined.sum().backward()
        report = profiler.report()
        assert report["embedding_lookup"].calls == 1
        assert report["embedding_lookup"].backward_calls == 1
        assert report["concat"].calls == 1

    def test_no_grad_paths_record_forward_only(self):
        from repro.nn.tensor import no_grad

        with AutogradProfiler() as profiler:
            with no_grad():
                Tensor(np.ones((2, 2)), requires_grad=True).relu()
        stats = profiler.report()["relu"]
        assert stats.calls == 1
        assert stats.backward_calls == 0

    def test_gradients_unchanged_under_profiling(self):
        w_plain, loss_plain = _small_graph()
        loss_plain.backward()
        with AutogradProfiler():
            w_profiled, loss_profiled = _small_graph()
            loss_profiled.backward()
        np.testing.assert_allclose(w_plain.grad, w_profiled.grad)

    def test_reset_clears_stats(self):
        with AutogradProfiler() as profiler:
            _, loss = _small_graph()
            profiler.reset()
            assert profiler.report() == {}


class TestPatchLifecycle:
    def test_disable_restores_original_methods(self):
        original_add = Tensor.__dict__["__add__"]
        original_concat = Tensor.__dict__["_concat"]
        profiler = AutogradProfiler()
        profiler.enable()
        assert Tensor.__dict__["__add__"] is not original_add
        profiler.disable()
        assert Tensor.__dict__["__add__"] is original_add
        assert Tensor.__dict__["_concat"] is original_concat

    def test_ops_after_disable_not_recorded(self):
        profiler = AutogradProfiler()
        with profiler:
            pass
        Tensor(np.ones(2)) + Tensor(np.ones(2))
        assert "add" not in profiler.report()

    def test_double_enable_is_idempotent(self):
        profiler = AutogradProfiler()
        with profiler:
            assert profiler.enable() is profiler
        assert not profiler.enabled

    def test_two_profilers_rejected(self):
        with AutogradProfiler():
            with pytest.raises(RuntimeError):
                AutogradProfiler().enable()

    def test_disable_without_enable_is_noop(self):
        AutogradProfiler().disable()


class TestReporting:
    def test_records_ranked_by_total_time(self):
        with AutogradProfiler() as profiler:
            _, loss = _small_graph()
            loss.backward()
        records = list(profiler.iter_records())
        totals = [record["total_seconds"] for record in records]
        assert totals == sorted(totals, reverse=True)

    def test_text_table_mentions_every_op(self):
        with AutogradProfiler() as profiler:
            _, loss = _small_graph()
            loss.backward()
        text = profiler.to_text()
        for op in ("matmul", "sigmoid", "sum"):
            assert op in text
