"""Property tests for the snapshot merge algebra.

The fleet collector's correctness rests on two algebraic facts about
``snapshot_state``/``merge_state``:

* **commutativity** — merging A's state into B gives the same merged
  statistics as merging B's into A (frame arrival order between
  processes must not matter, gauges excepted by design);
* **chunk invariance** — a stream split across N processes and merged
  equals the same stream observed by one process (sharding must not
  change fleet-level answers).

Hypothesis drives both over the mergeable surfaces: histograms, the
streaming AUC/ECE estimators, cohort CTR and SLO windows.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.quality import CohortCTR, StreamingAUC, WindowedECE
from repro.obs.slo import SLO, SLOWindow

finite_floats = st.floats(
    min_value=1e-6, max_value=60.0, allow_nan=False, allow_infinity=False
)
scores = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)


def roundtrip(state):
    """States cross a process boundary as JSON — merge what arrives."""
    return json.loads(json.dumps(state))


# ----------------------------------------------------------------------
# Counters and gauges
# ----------------------------------------------------------------------
@given(st.lists(finite_floats, max_size=20), st.lists(finite_floats, max_size=20))
def test_counter_merge_commutes_and_sums(a_values, b_values):
    a, b = Counter("c"), Counter("c")
    for value in a_values:
        a.inc(value)
    for value in b_values:
        b.inc(value)
    ab, ba = Counter("c"), Counter("c")
    ab.merge_state(roundtrip(a.snapshot_state()))
    ab.merge_state(roundtrip(b.snapshot_state()))
    ba.merge_state(roundtrip(b.snapshot_state()))
    ba.merge_state(roundtrip(a.snapshot_state()))
    assert ab.value == pytest.approx(sum(a_values) + sum(b_values))
    assert ab.value == ba.value


def test_gauge_merge_is_last_writer_wins():
    a, b = Gauge("g"), Gauge("g")
    a.set(1.0)
    b.set(2.5)
    merged = Gauge("g")
    merged.merge_state(roundtrip(a.snapshot_state()))
    merged.merge_state(roundtrip(b.snapshot_state()))
    assert merged.value == 2.5


# ----------------------------------------------------------------------
# Histograms
# ----------------------------------------------------------------------
def _merge_histograms(chunks):
    merged = Histogram("h")
    for chunk in chunks:
        source = Histogram("h")
        for value in chunk:
            source.observe(value)
        merged.merge_state(roundtrip(source.snapshot_state()))
    return merged


@given(st.lists(finite_floats, min_size=1, max_size=120), st.data())
def test_histogram_chunked_merge_equals_whole(values, data):
    """Split a stream at a random point: exact stats must agree."""
    split = data.draw(st.integers(min_value=0, max_value=len(values)))
    whole = Histogram("h")
    for value in values:
        whole.observe(value)
    merged = _merge_histograms([values[:split], values[split:]])
    assert merged.count == whole.count
    assert merged.sum == pytest.approx(whole.sum)
    assert merged.min == pytest.approx(whole.min)
    assert merged.max == pytest.approx(whole.max)
    assert merged.bucket_counts == whole.bucket_counts


@given(
    st.lists(finite_floats, min_size=1, max_size=60),
    st.lists(finite_floats, min_size=1, max_size=60),
)
def test_histogram_merge_commutes(a_values, b_values):
    ab = _merge_histograms([a_values, b_values])
    ba = _merge_histograms([b_values, a_values])
    assert ab.count == ba.count
    assert ab.sum == pytest.approx(ba.sum)
    assert ab.bucket_counts == ba.bucket_counts
    # The retained samples are the same multiset (order differs), so
    # every quantile — not just the moments — agrees.
    for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
        assert ab.quantile(q) == pytest.approx(ba.quantile(q))


@given(st.lists(finite_floats, min_size=1, max_size=200), st.data())
def test_histogram_merged_quantiles_within_documented_bounds(values, data):
    """Below sample capacity the merged quantiles are exact multiset
    quantiles; decimated merges stay within the stride-sampling bound
    (here: small capacity forces decimation, quantiles must still land
    inside the observed value range and within one bucket of truth)."""
    split = data.draw(st.integers(min_value=0, max_value=len(values)))
    merged = Histogram("h")
    for chunk in (values[:split], values[split:]):
        source = Histogram("h", sample_capacity=16)
        for value in chunk:
            source.observe(value)
        merged_state = roundtrip(source.snapshot_state())
        merged.merge_state(merged_state)
    lo, hi = min(values), max(values)
    for q in (0.1, 0.5, 0.9):
        estimate = merged.quantile(q)
        assert lo <= estimate <= hi
    # p50 of a decimated sample still falls within the true stream's
    # inter-decile range — stride decimation keeps every 2^k-th value,
    # which cannot skew the median outside the bulk of the data.
    ordered = sorted(values)
    p10 = ordered[max(0, int(0.1 * len(ordered)) - 1)]
    p90 = ordered[min(len(ordered) - 1, int(0.9 * len(ordered)) + 1)]
    assert p10 <= merged.quantile(0.5) <= p90


def test_histogram_merge_rejects_mismatched_buckets():
    a = Histogram("h", buckets=(0.1, 1.0))
    b = Histogram("h", buckets=(0.2, 2.0))
    with pytest.raises(ValueError):
        a.merge_state(b.snapshot_state())


# ----------------------------------------------------------------------
# Quality estimators
# ----------------------------------------------------------------------
@given(
    st.lists(st.tuples(st.booleans(), scores), min_size=4, max_size=200),
    st.data(),
)
@settings(max_examples=50)
def test_streaming_auc_chunked_merge_equals_whole(pairs, data):
    split = data.draw(st.integers(min_value=0, max_value=len(pairs)))
    labels = np.array([float(label) for label, _ in pairs])
    values = np.array([score for _, score in pairs])
    whole = StreamingAUC(n_bins=64)
    whole.update(labels, values)
    merged = StreamingAUC(n_bins=64)
    for sl in (slice(None, split), slice(split, None)):
        chunk = StreamingAUC(n_bins=64)
        if len(labels[sl]):
            chunk.update(labels[sl], values[sl])
        merged.merge_state(roundtrip(chunk.snapshot_state()))
    expected = whole.value
    actual = merged.value
    if expected is None:
        assert actual is None
    else:
        assert actual == pytest.approx(expected, abs=1e-12)


@given(
    st.lists(st.tuples(st.booleans(), scores), min_size=4, max_size=200),
    st.data(),
)
@settings(max_examples=50)
def test_windowed_ece_chunked_merge_equals_whole(pairs, data):
    split = data.draw(st.integers(min_value=0, max_value=len(pairs)))
    labels = np.array([float(label) for label, _ in pairs])
    values = np.array([score for _, score in pairs])
    whole = WindowedECE(n_bins=10)
    whole.update(labels, values)
    merged = WindowedECE(n_bins=10)
    for sl in (slice(None, split), slice(split, None)):
        chunk = WindowedECE(n_bins=10)
        if len(labels[sl]):
            chunk.update(labels[sl], values[sl])
        merged.merge_state(roundtrip(chunk.snapshot_state()))
    expected = whole.value
    actual = merged.value
    if expected is None:
        assert actual is None
    else:
        assert actual == pytest.approx(expected, abs=1e-12)


def test_streaming_auc_merge_rejects_mismatched_binning():
    a, b = StreamingAUC(n_bins=64), StreamingAUC(n_bins=32)
    with pytest.raises(ValueError):
        a.merge_state(b.snapshot_state())


@given(
    st.dictionaries(
        st.sampled_from(["new", "warm", "cold"]),
        st.tuples(st.integers(0, 50), st.integers(0, 50)),
        max_size=3,
    ),
    st.dictionaries(
        st.sampled_from(["new", "warm", "cold"]),
        st.tuples(st.integers(0, 50), st.integers(0, 50)),
        max_size=3,
    ),
)
def test_cohort_ctr_merge_sums_per_cohort(a_counts, b_counts):
    a, b = CohortCTR(), CohortCTR()
    for cohort, (impressions, clicks) in a_counts.items():
        a.record(cohort, impressions, min(impressions, clicks))
    for cohort, (impressions, clicks) in b_counts.items():
        b.record(cohort, impressions, min(impressions, clicks))
    merged = CohortCTR()
    merged.merge_state(roundtrip(a.snapshot_state()))
    merged.merge_state(roundtrip(b.snapshot_state()))
    impressions, clicks = merged._totals()
    for cohort in set(a_counts) | set(b_counts):
        expected_impressions = a_counts.get(cohort, (0, 0))[0] + b_counts.get(
            cohort, (0, 0)
        )[0]
        assert impressions.get(cohort, 0) == pytest.approx(
            expected_impressions
        )


# ----------------------------------------------------------------------
# SLO windows
# ----------------------------------------------------------------------
def _latency_slo(window=64, fast_window=16):
    return SLO.latency(
        "merge-test",
        0.1,
        objective=0.9,
        window=window,
        fast_window=fast_window,
        min_events=4,
    )


@given(
    st.lists(st.tuples(st.booleans(), finite_floats), min_size=1, max_size=300),
    st.data(),
)
@settings(max_examples=50)
def test_slo_window_chunked_merge_equals_whole(events, data):
    """Replay-merged windows reproduce the single-stream answers.

    Events are replayed oldest-first with their durations, so after a
    chunked merge the totals, window contents, burn rates and remaining
    budget all match a window that saw the entire stream itself.
    """
    split = data.draw(st.integers(min_value=0, max_value=len(events)))
    whole = SLOWindow(_latency_slo())
    for good, duration in events:
        whole.add(good, duration=duration)
    merged = SLOWindow(_latency_slo())
    for chunk in (events[:split], events[split:]):
        source = SLOWindow(_latency_slo())
        for good, duration in chunk:
            source.add(good, duration=duration)
        merged.merge_state(roundtrip(source.snapshot_state()))
    assert merged.total_events == whole.total_events
    assert merged.total_bad == whole.total_bad
    assert merged.burn_rate() == whole.burn_rate()
    assert merged.budget_remaining() == whole.budget_remaining()
    assert merged.snapshot() == whole.snapshot()


def test_slo_window_merge_rejects_mismatched_config():
    a = SLOWindow(_latency_slo(window=64))
    b = SLOWindow(_latency_slo(window=32))
    with pytest.raises(ValueError):
        a.merge_state(b.snapshot_state())


# ----------------------------------------------------------------------
# Registry-level merge
# ----------------------------------------------------------------------
def test_registry_merge_creates_and_folds_instruments():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("req").inc(3)
    b.counter("req").inc(4)
    b.gauge("level").set(2.5)
    a.histogram("lat").observe(0.01)
    b.histogram("lat").observe(0.5)
    merged = MetricsRegistry()
    for registry in (a, b):
        for record in roundtrip(registry.snapshot_state()):
            merged.merge_state(record)
    assert merged.counter("req").value == 7.0
    assert merged.gauge("level").value == 2.5
    assert merged.histogram("lat").count == 2
