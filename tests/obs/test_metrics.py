"""Metric instrument and registry semantics."""

import io
import json
import math

import numpy as np
import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_active_registry,
    use_registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_decrease_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(5.0)
        gauge.inc(2.0)
        gauge.dec(3.0)
        assert gauge.value == 4.0


class TestHistogram:
    def test_quantiles_match_numpy_percentile(self):
        values = np.random.default_rng(0).lognormal(size=2000)
        histogram = Histogram("h")
        for value in values:
            histogram.observe(value)
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            assert histogram.quantile(q) == pytest.approx(
                np.percentile(values, 100.0 * q), rel=1e-12
            )

    def test_count_sum_min_max(self):
        histogram = Histogram("h")
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == 6.0
        assert histogram.min == 1.0
        assert histogram.max == 3.0

    def test_bucket_counts(self):
        histogram = Histogram("h", buckets=(1.0, 2.0))
        for value in (0.5, 1.0, 1.5, 5.0):
            histogram.observe(value)
        # (<=1, <=2, +inf) — bounds are inclusive as in Prometheus.
        assert histogram.bucket_counts == [2, 1, 1]

    def test_quantile_of_empty_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h").quantile(0.5)

    def test_quantile_out_of_range_rejected(self):
        histogram = Histogram("h")
        histogram.observe(1.0)
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_empty_summary_has_none_quantiles(self):
        summary = Histogram("h").summary()
        assert summary["count"] == 0
        assert summary["p50"] is None

    def test_bounded_sample_stays_approximately_correct(self):
        values = np.random.default_rng(1).random(50_000)
        histogram = Histogram("h", sample_capacity=1024)
        for value in values:
            histogram.observe(value)
        # The decimated sample still tracks the true distribution.
        assert histogram.quantile(0.5) == pytest.approx(0.5, abs=0.05)
        assert histogram.count == 50_000

    def test_summary_buckets_end_with_inf(self):
        summary = Histogram("h", buckets=(1.0,)).summary()
        assert summary["buckets"][-1]["le"] == math.inf


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError):
            registry.gauge("a")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("")

    def test_to_text_lists_every_instrument(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc(2)
        registry.gauge("lr").set(0.01)
        registry.histogram("latency").observe(0.5)
        text = registry.to_text()
        assert "requests" in text and "lr" in text and "latency" in text
        assert "p99" in text

    def test_jsonl_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc(2)
        registry.histogram("latency").observe(0.5)
        buffer = io.StringIO()
        registry.write_jsonl(buffer, extra=[{"type": "meta", "label": "x"}])
        records = [json.loads(line) for line in buffer.getvalue().splitlines()]
        assert records[0] == {"type": "meta", "label": "x"}
        by_name = {r["name"]: r for r in records[1:]}
        assert by_name["requests"]["value"] == 2
        assert by_name["latency"]["count"] == 1


class TestActiveRegistry:
    def test_inactive_by_default(self):
        assert get_active_registry() is None

    def test_scoped_activation_nests(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with use_registry(outer):
            assert get_active_registry() is outer
            with use_registry(inner):
                assert get_active_registry() is inner
            assert get_active_registry() is outer
        assert get_active_registry() is None
