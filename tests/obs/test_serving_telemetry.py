"""Serving-path telemetry: deterministic counters from a scripted stream."""

import numpy as np
import pytest

from repro.core import ATNN, TowerConfig
from repro.obs import MetricsRegistry, Tracer, use_registry, use_tracer
from repro.serving import (
    EngineConfig,
    Event,
    EventKind,
    ItemStatisticsStore,
    RealTimeEngine,
)


@pytest.fixture(scope="module")
def serving_model(tiny_tmall_world):
    return ATNN(
        tiny_tmall_world.schema,
        TowerConfig(vector_dim=8, deep_dims=(16, 8), head_dims=(16,),
                    num_cross_layers=1),
        rng=np.random.default_rng(7),
    )


@pytest.fixture
def engine(tiny_tmall_world, serving_model):
    return RealTimeEngine(
        serving_model,
        tiny_tmall_world.new_items,
        tiny_tmall_world.active_user_group(0.2),
        EngineConfig(warm_view_threshold=5),
    )


def _views(slot, count):
    return [Event(EventKind.VIEW, slot, user, float(user)) for user in range(count)]


class TestEngineCounters:
    def test_cold_warm_counters_after_scripted_stream(self, engine):
        """Exact counter values from a hand-built event sequence.

        Slot 0 gets exactly the warm threshold of views (5), slot 1 one
        fewer (4), so after the second refresh precisely one slot has
        crossed onto the encoder path.
        """
        registry = MetricsRegistry()
        n = len(engine.catalogue)
        with use_registry(registry):
            engine.refresh()  # everything cold
            engine.ingest(_views(0, 5) + _views(1, 4))
            engine.refresh()  # slot 0 warm, rest cold
        assert registry.counter("engine.refreshes").value == 2
        assert registry.counter("engine.warm_path_items").value == 1
        assert registry.counter("engine.cold_path_items").value == n + (n - 1)
        assert registry.counter("engine.events_ingested").value == 9
        assert registry.counter("store.events_ingested").value == 9
        assert registry.histogram("engine.refresh_seconds").count == 2

    def test_lazy_refresh_counts_once(self, engine):
        registry = MetricsRegistry()
        with use_registry(registry):
            engine.scores()
            engine.scores()  # cached: no second refresh
        assert registry.counter("engine.refreshes").value == 1

    def test_recommend_metrics(self, engine, tiny_tmall_world):
        user_row = {
            name: tiny_tmall_world.users[name][:1]
            for name in tiny_tmall_world.schema.all_column_names("user")
        }
        registry = MetricsRegistry()
        with use_registry(registry):
            engine.recommend_for_user(user_row, k=3)
        assert registry.counter("engine.recommend_requests").value == 1
        assert registry.histogram("engine.recommend_seconds").count == 1

    def test_refresh_span_recorded(self, engine):
        tracer = Tracer()
        with use_tracer(tracer):
            engine.refresh()
        assert tracer.stats("engine.refresh").calls == 1

    def test_no_registry_no_counters(self, engine):
        """The engine works identically with telemetry off."""
        engine.refresh()
        engine.ingest(_views(0, 3))
        scores = engine.scores()
        assert scores.shape == (len(engine.catalogue),)


class TestStoreThroughput:
    def test_ingest_metrics(self):
        registry = MetricsRegistry()
        store = ItemStatisticsStore(4)
        with use_registry(registry):
            store.ingest(_views(2, 7))
        assert registry.counter("store.events_ingested").value == 7
        assert registry.histogram("store.ingest_seconds").count == 1
        assert registry.gauge("store.events_per_second").value > 0

    def test_empty_batch_records_nothing(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            ItemStatisticsStore(2).ingest([])
        assert "store.events_ingested" not in registry
