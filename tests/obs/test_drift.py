"""PSI/KL drift detection: fires on real shifts, quiet under noise."""

import numpy as np
import pytest

from repro.obs import DriftDetector, kl_divergence, psi


class TestDivergences:
    def test_identical_distributions_near_zero(self):
        counts = np.array([100.0, 200.0, 300.0, 400.0])
        assert psi(counts, counts) == pytest.approx(0.0, abs=1e-12)
        assert kl_divergence(counts, counts) == pytest.approx(0.0, abs=1e-12)

    def test_shifted_distribution_large_psi(self):
        reference = np.array([400.0, 300.0, 200.0, 100.0])
        shifted = np.array([100.0, 200.0, 300.0, 400.0])
        assert psi(reference, shifted) > 0.25
        assert kl_divergence(reference, shifted) > 0.1

    def test_psi_symmetric_kl_not(self):
        a = np.array([900.0, 50.0, 50.0])
        b = np.array([500.0, 250.0, 250.0])
        assert psi(a, b) == pytest.approx(psi(b, a))
        assert kl_divergence(a, b) != pytest.approx(kl_divergence(b, a))

    def test_empty_bins_are_smoothed(self):
        reference = np.array([0.0, 1000.0])
        live = np.array([1000.0, 0.0])
        value = psi(reference, live)
        assert np.isfinite(value) and value > 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            psi(np.ones(3), np.ones(4))
        with pytest.raises(ValueError):
            psi(np.zeros(3), np.ones(3))
        with pytest.raises(ValueError):
            psi(np.ones(3), np.ones(3), alpha=0.0)


class TestDriftDetector:
    def test_warmup_reports_none(self):
        detector = DriftDetector(reference_size=100, window=100)
        detector.update(np.random.default_rng(0).uniform(0, 1, 50))
        assert not detector.reference_frozen
        assert detector.psi() is None
        assert detector.kl() is None
        assert not detector.ready

    def test_live_window_minimum(self):
        rng = np.random.default_rng(0)
        detector = DriftDetector(reference_size=100, window=100, min_live=50)
        detector.update(rng.uniform(0, 1, 100))  # fills the reference exactly
        assert detector.reference_frozen
        detector.update(rng.uniform(0, 1, 10))  # live below min_live
        assert detector.psi() is None
        detector.update(rng.uniform(0, 1, 40))
        assert detector.psi() is not None

    def test_quiet_under_resampling_noise(self):
        rng = np.random.default_rng(1)
        detector = DriftDetector(reference_size=2000, window=2000)
        detector.update(rng.beta(2, 5, 2000))
        # Fresh draws from the SAME distribution: PSI stays under the
        # conventional 0.1 "watch" threshold.
        for _ in range(5):
            detector.update(rng.beta(2, 5, 1000))
            assert detector.psi() < 0.1

    def test_fires_on_injected_shift(self):
        rng = np.random.default_rng(2)
        detector = DriftDetector(reference_size=2000, window=2000)
        detector.update(rng.beta(2, 5, 2000))
        # Injected mean shift: the live window now comes from beta(5, 2).
        detector.update(rng.beta(5, 2, 2000))
        assert detector.psi() > 0.25
        assert detector.kl() > 0.1

    def test_batch_split_across_freeze_boundary(self):
        rng = np.random.default_rng(3)
        detector = DriftDetector(reference_size=100, window=100, min_live=1)
        # One batch covering reference fill + live spill.
        detector.update(rng.uniform(0, 1, 150))
        assert detector.n_reference == 100
        assert detector.n_live == 50

    def test_out_of_range_values_clamp(self):
        detector = DriftDetector(reference_size=4, window=4, min_live=1)
        detector.update([-5.0, 0.5, 99.0, 0.2])
        detector.update([-1.0, 2.0])
        assert detector.psi() is not None  # no crash, edge bins caught them

    def test_snapshot_and_reset(self):
        rng = np.random.default_rng(4)
        detector = DriftDetector(reference_size=10, window=10, min_live=1)
        detector.update(rng.uniform(0, 1, 20))
        snapshot = detector.snapshot()
        assert snapshot["ready"] is True
        assert snapshot["n_reference"] == 10
        detector.reset_reference()
        assert detector.n_reference == 0
        assert detector.psi() is None
