"""Prometheus text and Chrome-trace exporters."""

import json
import math

import pytest

from repro.obs import (
    AutogradProfiler,
    Histogram,
    MetricsRegistry,
    TelemetrySession,
    Tracer,
    prometheus_metric_name,
)
from repro.nn.tensor import Tensor


class TestPrometheusNameSanitization:
    def test_dots_and_dashes_become_underscores(self):
        assert prometheus_metric_name("engine.refresh_seconds") == (
            "engine_refresh_seconds"
        )
        assert prometheus_metric_name("quality.ctr.cold-start") == (
            "quality_ctr_cold_start"
        )

    def test_leading_digit_prefixed(self):
        assert prometheus_metric_name("95th.latency").startswith("_")

    def test_valid_names_untouched(self):
        assert prometheus_metric_name("already_valid:name") == (
            "already_valid:name"
        )


class TestPrometheusText:
    def test_counter_and_gauge_exposition(self):
        registry = MetricsRegistry()
        registry.counter("engine.refreshes", help="refresh count").inc(3)
        registry.gauge("quality.streaming_auc").set(0.7)
        text = registry.to_prometheus_text()
        assert "# TYPE engine_refreshes counter" in text
        assert "# HELP engine_refreshes refresh count" in text
        assert "engine_refreshes 3.0" in text
        assert "# TYPE quality_streaming_auc gauge" in text
        assert "quality_streaming_auc 0.7" in text
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat.s", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        text = registry.to_prometheus_text()
        assert 'lat_s_bucket{le="0.1"} 1' in text
        assert 'lat_s_bucket{le="1.0"} 3' in text
        assert 'lat_s_bucket{le="+Inf"} 4' in text
        assert "lat_s_count 4" in text

    def test_cumulative_consistent_with_summary(self):
        # The small fix: text/JSON summary and Prometheus exposition must
        # agree on cumulative bucket counts.
        histogram = Histogram("h", buckets=(1.0, 2.0, 3.0))
        for value in (0.5, 1.5, 1.7, 2.5, 9.0):
            histogram.observe(value)
        cumulative = histogram.cumulative_counts()
        assert cumulative == [1, 3, 4, 5]
        assert cumulative[-1] == histogram.count
        summary = histogram.summary()
        assert [b["cumulative"] for b in summary["buckets"]] == cumulative
        # Per-bin counts still there and still non-cumulative.
        assert [b["count"] for b in summary["buckets"]] == [1, 2, 1, 1]
        assert summary["buckets"][-1]["le"] == math.inf


class TestTracerChromeTrace:
    def test_events_recorded_and_exported(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        payload = json.loads(tracer.to_chrome_trace())
        events = payload["traceEvents"]
        assert {event["name"] for event in events} == {"outer", "inner"}
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
        by_name = {event["name"]: event for event in events}
        assert by_name["inner"]["args"]["path"] == "outer/inner"
        # The child starts after (or with) its parent.
        assert by_name["inner"]["ts"] >= by_name["outer"]["ts"]

    def test_max_events_cap(self):
        tracer = Tracer(max_events=2)
        for _ in range(5):
            with tracer.span("s"):
                pass
        assert len(json.loads(tracer.to_chrome_trace())["traceEvents"]) == 2
        assert tracer.dropped_events == 3
        # Aggregates are unaffected by the cap.
        assert tracer.stats("s").calls == 5

    def test_recording_disabled(self):
        tracer = Tracer(record_events=False)
        with tracer.span("s"):
            pass
        assert json.loads(tracer.to_chrome_trace())["traceEvents"] == []
        assert tracer.stats("s").calls == 1


class TestAutogradChromeTrace:
    def test_forward_and_backward_events(self):
        with AutogradProfiler(record_events=True) as profiler:
            loss = (Tensor([[1.0, 2.0]], requires_grad=True) * 3.0).sum()
            loss.backward()
        payload = json.loads(profiler.to_chrome_trace())
        categories = {event["cat"] for event in payload["traceEvents"]}
        assert "autograd.forward" in categories
        assert "autograd.backward" in categories
        ops = {event["args"]["op"] for event in payload["traceEvents"]}
        assert {"mul", "sum"} <= ops

    def test_events_off_by_default(self):
        with AutogradProfiler() as profiler:
            (Tensor([[1.0]], requires_grad=True) * 2.0).sum().backward()
        assert json.loads(profiler.to_chrome_trace())["traceEvents"] == []
        assert profiler.report()["mul"].calls == 1


class TestSessionChromeTrace:
    def test_merged_trace_shares_origin(self, tmp_path):
        path = tmp_path / "trace.json"
        with TelemetrySession(profile_autograd=True) as session:
            with session.tracer.span("step"):
                (Tensor([[1.0]], requires_grad=True) * 2.0).sum().backward()
        session.write_chrome_trace(path)
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        tids = {event["tid"] for event in events}
        assert tids == {1, 2}  # spans and autograd ops
        assert min(event["ts"] for event in events) == pytest.approx(0.0)
        # The autograd ops happen inside the span.
        span = next(e for e in events if e["tid"] == 1)
        for op_event in (e for e in events if e["tid"] == 2):
            assert op_event["ts"] >= span["ts"]

    def test_empty_session_writes_valid_trace(self, tmp_path):
        path = tmp_path / "empty.json"
        session = TelemetrySession(profile_autograd=False)
        with session:
            pass
        session.write_chrome_trace(path)
        assert json.loads(path.read_text())["traceEvents"] == []
