"""Unit tests for the telemetry shipper, spool tailing and collector."""

import json
import time

import pytest

from repro.obs.agg import (
    WIRE_VERSION,
    TelemetryCollector,
    TelemetryShipper,
    stitch_request_records,
    stitched_chrome_trace,
)
from repro.obs.context import TraceContext, request_scope, use_trace_context
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SLO, SLOTracker
from repro.obs.tracing import Tracer


def _slo_set():
    return [
        SLO.latency(
            "lat",
            0.1,
            objective=0.9,
            window=64,
            fast_window=64,
            min_events=8,
            burn_alert=2.0,
        )
    ]


def _request(tracker, duration, kind="serve"):
    from repro.obs.context import RequestRecord

    tracker.on_request(
        RequestRecord(
            trace_id="t",
            kind=kind,
            started_unix=time.time(),
            started_perf=time.perf_counter(),
            duration_seconds=duration,
            status="ok",
        )
    )


# ----------------------------------------------------------------------
# Shipper frames
# ----------------------------------------------------------------------
class TestShipper:
    def test_flush_writes_complete_versioned_frames(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("req").inc(3)
        shipper = TelemetryShipper(
            tmp_path, process_label="worker", registry=registry
        )
        shipper.flush()
        shipper.flush()
        lines = [
            json.loads(line)
            for line in (tmp_path / "worker.jsonl").read_text().splitlines()
        ]
        headers = [line for line in lines if line["type"] == "frame"]
        ends = [line for line in lines if line["type"] == "frame_end"]
        assert [header["seq"] for header in headers] == [1, 2]
        assert [end["seq"] for end in ends] == [1, 2]
        for header in headers:
            assert header["version"] == WIRE_VERSION
            assert header["process"] == "worker"
            assert header["pid"] > 0
        # n_records counts exactly the records between header and end.
        body = [
            line
            for line in lines
            if line["type"] not in ("frame", "frame_end")
        ]
        assert len(body) == headers[0]["n_records"] + headers[1]["n_records"]

    def test_flush_counts_itself_into_the_shipped_registry(self, tmp_path):
        registry = MetricsRegistry()
        shipper = TelemetryShipper(
            tmp_path, process_label="w", registry=registry
        )
        shipper.flush()
        assert registry.counter("shipper.flushes").value == 1.0
        assert registry.histogram("shipper.flush_seconds").count == 1

    def test_maybe_flush_respects_interval(self, tmp_path):
        registry = MetricsRegistry()
        shipper = TelemetryShipper(
            tmp_path,
            process_label="w",
            registry=registry,
            interval_seconds=3600.0,
        )
        assert shipper.maybe_flush() is True  # never flushed before
        assert shipper.maybe_flush() is False  # interval not yet elapsed
        assert shipper.maybe_flush(time.monotonic() + 7200.0) is True

    def test_rejects_nonpositive_interval(self, tmp_path):
        with pytest.raises(ValueError):
            TelemetryShipper(tmp_path, interval_seconds=0.0)

    def test_tracer_drop_count_is_shipped(self, tmp_path):
        tracer = Tracer(max_events=1)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass  # dropped: cap is one event
        shipper = TelemetryShipper(tmp_path, process_label="w", tracer=tracer)
        shipper.flush()
        collector = TelemetryCollector(tmp_path)
        collector.collect()
        assert collector.registry.counter("tracer.dropped").value == 1.0
        assert collector.registry.gauge("tracer.dropped.w").value == 1.0
        assert collector.processes["w"]["tracer_dropped"] == 1


# ----------------------------------------------------------------------
# Spool robustness
# ----------------------------------------------------------------------
class TestSpoolTailing:
    def _shipper(self, tmp_path, label="w"):
        registry = MetricsRegistry()
        registry.counter("req").inc(1)
        return TelemetryShipper(
            tmp_path, process_label=label, registry=registry
        )

    def test_partial_tail_line_is_not_consumed(self, tmp_path):
        shipper = self._shipper(tmp_path)
        shipper.flush()
        spool = shipper.spool_path
        complete = spool.read_text()
        # Append a torn write: a frame whose last line lacks a newline.
        torn = complete.replace('"seq": 1', '"seq": 2').rstrip("\n")
        spool.write_text(complete + torn)
        collector = TelemetryCollector(tmp_path)
        collector.collect()
        assert collector.processes["w"]["seq"] == 1
        # The writer completes the line: the frame is now consumable.
        with open(spool, "a", encoding="utf-8") as handle:
            handle.write("\n")
        collector.collect()
        assert collector.processes["w"]["seq"] == 2

    def test_truncated_spool_resets_the_tail(self, tmp_path):
        shipper = self._shipper(tmp_path)
        shipper.flush()
        collector = TelemetryCollector(tmp_path)
        collector.collect()
        assert collector.processes["w"]["seq"] == 1
        # Rotation: the file starts over with a fresh frame.
        shipper.spool_path.write_text("")
        fresh = self._shipper(tmp_path)
        fresh.flush()
        collector.collect()
        assert collector.processes["w"]["seq"] == 1
        assert collector.registry.counter("req").value == 1.0

    def test_corrupt_lines_are_counted_and_skipped(self, tmp_path):
        shipper = self._shipper(tmp_path)
        shipper.flush()
        with open(shipper.spool_path, "a", encoding="utf-8") as handle:
            handle.write("{not json}\n")
        shipper.flush()
        collector = TelemetryCollector(tmp_path)
        collector.collect()
        assert collector.processes["w"]["seq"] == 2
        tail = collector._tails["w.jsonl"]
        assert tail.corrupt_lines == 1

    def test_unknown_wire_version_is_skipped(self, tmp_path):
        shipper = self._shipper(tmp_path)
        shipper.flush()
        frame = shipper.build_frame()
        frame[0]["version"] = WIRE_VERSION + 1
        with open(shipper.spool_path, "a", encoding="utf-8") as handle:
            for record in frame:
                handle.write(json.dumps(record) + "\n")
        collector = TelemetryCollector(tmp_path)
        collector.collect()
        # The versioned frame (seq 2) was skipped; seq 1 is the truth.
        assert collector.processes["w"]["seq"] == 1

    def test_mismatched_record_count_discards_the_frame(self, tmp_path):
        shipper = self._shipper(tmp_path)
        frame = shipper.build_frame()
        frame[0]["n_records"] = 99
        with open(shipper.spool_path, "a", encoding="utf-8") as handle:
            for record in frame:
                handle.write(json.dumps(record) + "\n")
        collector = TelemetryCollector(tmp_path)
        summary = collector.collect()
        assert summary["processes"] == 0


# ----------------------------------------------------------------------
# Collector merge + evaluation
# ----------------------------------------------------------------------
class TestCollector:
    def test_merged_counters_equal_per_process_sums(self, tmp_path):
        for label, count in (("a", 3), ("b", 4)):
            registry = MetricsRegistry()
            registry.counter("req").inc(count)
            registry.histogram("lat").observe(0.01 * count)
            TelemetryShipper(
                tmp_path, process_label=label, registry=registry
            ).flush()
        collector = TelemetryCollector(tmp_path)
        summary = collector.collect()
        assert summary["processes"] == 2
        assert collector.registry.counter("req").value == 7.0
        assert collector.registry.histogram("lat").count == 2

    def test_rebuild_is_idempotent_across_collections(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("req").inc(5)
        shipper = TelemetryShipper(
            tmp_path, process_label="w", registry=registry
        )
        shipper.flush()
        collector = TelemetryCollector(tmp_path)
        collector.collect()
        collector.collect()  # same newest frame: must not double-count
        assert collector.registry.counter("req").value == 5.0
        registry.counter("req").inc(2)
        shipper.flush()
        collector.collect()
        assert collector.registry.counter("req").value == 7.0

    def test_stale_process_is_flagged_but_kept_in_the_merge(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("req").inc(5)
        TelemetryShipper(
            tmp_path, process_label="old", registry=registry
        ).flush()
        collector = TelemetryCollector(tmp_path, stale_after=30.0)
        summary = collector.collect(now=time.time() + 3600.0)
        assert summary["stale"] == ["old"]
        assert collector.processes["old"]["stale"] is True
        # Stale state still merges: flagged, never silently dropped.
        assert collector.registry.counter("req").value == 5.0
        assert (
            collector.registry.gauge("collector.stale_processes").value == 1.0
        )

    def test_fleet_burn_rate_alert_fires_on_merged_windows(self, tmp_path):
        # Shard A is healthy; shard B breaches the latency bound on
        # every request.  Neither shard alone saw the tracker evaluate,
        # but the merged windows burn fast enough to page.
        for label, duration in (("a", 0.01), ("b", 0.5)):
            tracker = SLOTracker(_slo_set(), evaluate_every=0)
            for _ in range(30):
                _request(tracker, duration)
            TelemetryShipper(tmp_path, process_label=label, slo=tracker).flush()
        collector = TelemetryCollector(tmp_path)
        collector.collect()
        alerts = collector.evaluate()
        assert any(alert.rule == "slo-burn:lat" for alert in alerts)
        # Burn-rate gauges landed in the merged registry.
        assert collector.registry.gauge("slo.lat.burn_rate").value >= 2.0

    def test_no_alert_when_fleet_is_healthy(self, tmp_path):
        for label in ("a", "b"):
            tracker = SLOTracker(_slo_set(), evaluate_every=0)
            for _ in range(30):
                _request(tracker, 0.01)
            TelemetryShipper(tmp_path, process_label=label, slo=tracker).flush()
        collector = TelemetryCollector(tmp_path)
        collector.collect()
        assert collector.evaluate() == []

    def test_prometheus_export_of_merged_view(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("req").inc(5)
        TelemetryShipper(tmp_path, process_label="w", registry=registry).flush()
        collector = TelemetryCollector(tmp_path)
        collector.collect()
        text = collector.to_prometheus_text()
        assert "req 5.0" in text
        assert "collector_processes 1.0" in text
        assert "# TYPE req counter" in text

    def test_jsonl_report_carries_fleet_and_process_records(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("req").inc(1)
        TelemetryShipper(tmp_path, process_label="w", registry=registry).flush()
        collector = TelemetryCollector(tmp_path)
        collector.collect()
        destination = tmp_path / "fleet.jsonl"
        collector.write_jsonl(destination)
        records = [
            json.loads(line)
            for line in destination.read_text().splitlines()
        ]
        kinds = {record["type"] for record in records}
        assert "fleet" in kinds and "process" in kinds
        assert "counter" in kinds  # merged instruments ride along

    def test_empty_spool_dir_collects_nothing(self, tmp_path):
        collector = TelemetryCollector(tmp_path / "missing")
        summary = collector.collect()
        assert summary["processes"] == 0


# ----------------------------------------------------------------------
# Cross-process context propagation + stitching
# ----------------------------------------------------------------------
class TestTraceStitching:
    def test_inject_extract_roundtrip_preserves_identity(self):
        context = TraceContext(kind="route")
        carrier = json.loads(json.dumps(context.inject()))
        remote = TraceContext.extract(carrier)
        assert remote.trace_id == context.trace_id
        assert remote.remote is True
        assert carrier["span_id"] is not None

    def test_remote_parent_scope_records_chained_root(self):
        records = []

        class Observer:
            def on_request(self, record):
                records.append(record)

        from repro.obs.context import (
            register_request_observer,
            unregister_request_observer,
        )

        observer = Observer()
        register_request_observer(observer)
        try:
            with request_scope("route") as upstream:
                carrier = upstream.inject()
            remote = TraceContext.extract(carrier)
            with use_trace_context(remote):
                with request_scope("serve"):
                    pass
        finally:
            unregister_request_observer(observer)
        route, serve = records
        assert serve.trace_id == route.trace_id
        assert serve.parent_id == carrier["span_id"] == route.span_id

    def _records(self):
        base = time.time()
        return [
            {
                "trace_id": "t1",
                "kind": "route",
                "started_unix": base,
                "duration_seconds": 0.2,
                "status": "ok",
                "span_id": "s-root",
                "parent_id": None,
                "pid": 1,
                "shard": "router",
                "spans": [],
            },
            {
                "trace_id": "t1",
                "kind": "serve",
                "started_unix": base + 0.01,
                "duration_seconds": 0.1,
                "status": "ok",
                "span_id": "s-child",
                "parent_id": "s-root",
                "pid": 2,
                "shard": "shard-0",
                "spans": [
                    {
                        "path": "serve/score",
                        "start_seconds": 0.001,
                        "duration_seconds": 0.05,
                    }
                ],
            },
            {
                "trace_id": "t2",
                "kind": "serve",
                "started_unix": base + 0.02,
                "duration_seconds": 0.05,
                "status": "ok",
                "span_id": "s-other",
                "parent_id": "s-elsewhere",  # parent never shipped
                "pid": 2,
                "shard": "shard-0",
                "spans": [],
            },
        ]

    def test_stitch_builds_cross_process_trees(self):
        trees = stitch_request_records(self._records())
        assert set(trees) == {"t1", "t2"}
        (root,) = trees["t1"]
        assert root["kind"] == "route"
        assert [child["kind"] for child in root["children"]] == ["serve"]
        # Orphaned parents keep their record as a root, not dropped.
        (orphan,) = trees["t2"]
        assert orphan["span_id"] == "s-other"

    def test_stitched_chrome_trace_counts_multi_process_traces(self):
        trace = stitched_chrome_trace(self._records())
        assert trace["metadata"]["stitched_traces"] == 1
        assert trace["metadata"]["processes"] == 2
        request_events = [
            event
            for event in trace["traceEvents"]
            if event.get("ph") == "X" and event.get("cat") == "request"
        ]
        assert {event["pid"] for event in request_events} == {1, 2}
        span_events = [
            event
            for event in trace["traceEvents"]
            if event.get("ph") == "X" and event.get("cat") == "span"
        ]
        assert any(event["name"] == "score" for event in span_events)
