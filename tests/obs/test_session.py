"""TelemetrySession lifecycle and run-report format."""

import io
import json

import numpy as np
import pytest

from repro.nn.tensor import Tensor
from repro.obs import (
    TelemetrySession,
    get_active_registry,
    get_active_tracer,
    global_callbacks,
    maybe_span,
)


def _records(session):
    buffer = io.StringIO()
    session.write_jsonl(buffer)
    return [json.loads(line) for line in buffer.getvalue().splitlines()]


class TestLifecycle:
    def test_activates_and_deactivates_all_surfaces(self):
        session = TelemetrySession(profile_autograd=False, label="t")
        assert get_active_registry() is None
        with session:
            assert get_active_registry() is session.registry
            assert get_active_tracer() is session.tracer
            assert session.callback in global_callbacks()
        assert get_active_registry() is None
        assert get_active_tracer() is None
        assert session.callback not in global_callbacks()

    def test_double_start_rejected(self):
        with TelemetrySession(profile_autograd=False) as session:
            with pytest.raises(RuntimeError):
                session.start()

    def test_stop_without_start_is_noop(self):
        TelemetrySession(profile_autograd=False).stop()

    def test_standard_counters_pre_registered(self):
        with TelemetrySession(profile_autograd=False) as session:
            pass
        for name in (
            "engine.refreshes",
            "engine.cold_path_items",
            "engine.warm_path_items",
            "store.events_ingested",
            "trainer.divergence_warning",
        ):
            assert name in session.registry


class TestReport:
    def test_jsonl_record_types(self):
        with TelemetrySession(label="run") as session:
            session.registry.histogram("latency").observe(0.25)
            session.callback.epochs.append({"loss": 0.5})
            with maybe_span("work"):
                (Tensor(np.ones((2, 2)), requires_grad=True) * 2.0).sum().backward()
        records = _records(session)
        types = {record["type"] for record in records}
        assert {"meta", "epoch", "counter", "histogram", "autograd_op", "span"} <= types
        meta = records[0]
        assert meta["type"] == "meta" and meta["label"] == "run"
        assert meta["duration_seconds"] >= 0.0
        epoch = next(r for r in records if r["type"] == "epoch")
        assert epoch["record"] == {"loss": 0.5}
        span = next(r for r in records if r["type"] == "span")
        assert span["path"] == "work"
        ops = {r["op"] for r in records if r["type"] == "autograd_op"}
        assert {"mul", "sum"} <= ops

    def test_histogram_records_carry_quantiles(self):
        with TelemetrySession(profile_autograd=False) as session:
            histogram = session.registry.histogram("latency")
            for value in np.linspace(0.01, 1.0, 100):
                histogram.observe(float(value))
        record = next(
            r for r in _records(session)
            if r["type"] == "histogram" and r["name"] == "latency"
        )
        for key in ("p50", "p90", "p99"):
            assert isinstance(record[key], float)
        assert record["p50"] <= record["p90"] <= record["p99"]

    def test_render_text_mentions_sections(self):
        with TelemetrySession(profile_autograd=False, label="demo") as session:
            session.registry.counter("demo.work").inc()
            with maybe_span("phase"):
                pass
        text = session.render_text()
        assert "demo" in text
        assert "demo.work" in text
        assert "phase" in text

    def test_write_jsonl_to_path(self, tmp_path):
        destination = tmp_path / "missing" / "dirs" / "report.jsonl"
        with TelemetrySession(profile_autograd=False) as session:
            session.registry.counter("c").inc()
        session.write_jsonl(destination)
        lines = destination.read_text().splitlines()
        assert json.loads(lines[0])["type"] == "meta"
        assert any(json.loads(line)["type"] == "counter" for line in lines)
