"""End-to-end trace propagation and the SLO/flight acceptance scenario.

Satellite coverage: a scripted serving session where every emitted
monitor sample, alert, and JSONL telemetry record must carry the
``trace_id`` of the request that produced it — including across a
dirty-slot (incremental) refresh.  Plus the tentpole acceptance test: an
injected p99 latency spike must fire the multi-window burn-rate alert,
dump a postmortem bundle whose slowest exemplar names the offending
span, and leave an exhausted-budget line in the Prometheus export.
"""

import io
import json
import time

import numpy as np
import pytest

from repro.core import ATNN, TowerConfig
from repro.obs import (
    FlightRecorder,
    MetricsRegistry,
    QualityMonitor,
    TelemetrySession,
    Tracer,
    use_flight_recorder,
    use_monitor,
    use_registry,
    use_slo_tracker,
    use_tracer,
)
from repro.obs.context import (
    register_request_observer,
    unregister_request_observer,
)
from repro.obs.flight import load_bundle
from repro.obs.slo import SLO, SLOTracker
from repro.obs.tracing import maybe_span
from repro.serving import EngineConfig, Event, EventKind, RealTimeEngine


@pytest.fixture(scope="module")
def serving_model(tiny_tmall_world):
    return ATNN(
        tiny_tmall_world.schema,
        TowerConfig(vector_dim=8, deep_dims=(16, 8), head_dims=(16,),
                    num_cross_layers=1),
        rng=np.random.default_rng(11),
    )


@pytest.fixture
def engine(tiny_tmall_world, serving_model):
    return RealTimeEngine(
        serving_model,
        tiny_tmall_world.new_items,
        tiny_tmall_world.active_user_group(0.2),
        EngineConfig(warm_view_threshold=5),
    )


def _views(slot, count):
    return [Event(EventKind.VIEW, slot, user, float(user)) for user in range(count)]


class _Collector:
    def __init__(self):
        self.records = []

    def on_request(self, record):
        self.records.append(record)


class TestTracePropagation:
    def test_monitor_samples_alerts_and_jsonl_carry_trace_ids(self, engine):
        """The scripted session of the satellite requirement.

        Script: full refresh → ingest (warms slot 0) → incremental
        dirty-slot refresh (scores + divergence samples) → top_k.  A
        hair-trigger latency SLO fires during the second refresh, so the
        alert must carry that refresh's trace id too.
        """
        collector = _Collector()
        monitor = QualityMonitor()
        tracker = SLOTracker(
            [SLO.latency("lat", 1e-9, objective=0.5, window=8,
                         fast_window=4, min_events=2)],
            evaluate_every=0,
        )
        recorder = FlightRecorder(capacity=32, tail_exemplars=4)
        session = TelemetrySession(
            profile_autograd=False, monitor=monitor, slo=tracker,
            flight=recorder,
        )
        register_request_observer(collector)
        try:
            with session:
                engine.refresh()
                engine.ingest(_views(0, 6) + _views(1, 3))
                engine.refresh()  # dirty-slot path: slot 0 is warm+dirty
                engine.top_k(3)
        finally:
            unregister_request_observer(collector)

        kinds = [record.kind for record in collector.records]
        assert kinds == ["refresh", "ingest", "refresh", "top_k"]
        refresh1, ingest, refresh2, top_k = collector.records
        assert len({r.trace_id for r in collector.records}) == 4

        # Every monitor sample names the request that produced it.
        samples = list(monitor.samples)
        assert [s["entry_point"] for s in samples] == [
            "scores", "serving_batch", "scores", "divergence",
        ]
        assert samples[0]["trace_id"] == refresh1.trace_id
        assert samples[1]["trace_id"] == ingest.trace_id
        # Dirty-slot refresh: both its samples carry the refresh's id.
        assert samples[2]["trace_id"] == refresh2.trace_id
        assert samples[3]["trace_id"] == refresh2.trace_id

        # The hair-trigger SLO fired while refresh2 evaluated the rules.
        fired = [a for a in tracker.alerts.fired if a.rule == "slo-burn:lat"]
        assert fired and fired[0].trace_id == refresh2.trace_id

        # Every JSONL record that names a request names a real one.
        buffer = io.StringIO()
        session.write_jsonl(buffer)
        records = [
            json.loads(line) for line in buffer.getvalue().splitlines()
        ]
        trace_ids = {r.trace_id for r in collector.records}
        monitor_samples = [r for r in records if r["type"] == "monitor_sample"]
        request_records = [r for r in records if r["type"] == "request"]
        alert_records = [
            r for r in records
            if r["type"] == "alert" and r.get("kind") == "fired"
        ]
        assert monitor_samples and request_records and alert_records
        assert all(r["trace_id"] in trace_ids for r in monitor_samples)
        assert all(r["trace_id"] in trace_ids for r in request_records)
        assert all(r["trace_id"] in trace_ids for r in alert_records)

        # The dirty-slot refresh's request record names its work.
        refresh2_record = next(
            r for r in request_records if r["trace_id"] == refresh2.trace_id
        )
        assert refresh2_record["decisions"]["slots_rescored"] == 1
        assert refresh2_record["decisions"]["full_refresh"] is False

    def test_engine_decisions_recorded_per_request(self, engine):
        collector = _Collector()
        register_request_observer(collector)
        try:
            engine.ingest(_views(0, 4))
            engine.top_k(2)
            engine.top_k(2)
        finally:
            unregister_request_observer(collector)
        # top_k's lazy refresh nests as a child scope, so it folds into
        # the first top_k record instead of emitting its own.
        ingest, top_k1, top_k2 = collector.records
        assert ingest.decisions["events_applied"] == 4
        assert top_k1.decisions["full_refresh"] is True
        assert top_k1.decisions["order_cache_hit"] is False
        assert top_k1.decisions["served_slots"] == 2
        assert top_k2.decisions == {
            "k": 2, "order_cache_hit": True, "served_slots": 2,
        }

    def test_store_spans_nest_under_request(self, engine):
        tracer = Tracer()
        with use_tracer(tracer):
            engine.ingest(_views(0, 3))
            engine.refresh()
        report = tracer.report()
        assert "engine.ingest/store.ingest" in report
        assert "engine.refresh/generator" in report


class TestLatencySpikeAcceptance:
    def test_spike_fires_burn_alert_with_bundle_and_prometheus(
        self, engine, tmp_path
    ):
        """The ISSUE acceptance scenario at test scale.

        A scripted serving run with an injected latency spike must
        produce (a) a fired burn-rate alert, (b) a postmortem bundle
        whose slowest-request exemplar trace names the offending span,
        and (c) an exhausted-budget line in the Prometheus export.
        """
        threshold = 0.02
        spike = 0.06
        registry = MetricsRegistry()
        tracer = Tracer()
        monitor = QualityMonitor()
        tracker = SLOTracker(
            [
                SLO.latency(
                    "serving-latency", threshold, objective=0.9,
                    window=32, fast_window=8, min_events=8,
                ),
            ],
            evaluate_every=0,
        )
        recorder = FlightRecorder(
            capacity=64, tail_exemplars=8, postmortem_dir=tmp_path,
            dump_debounce=8,
        )

        original_ingest = engine.store.ingest

        def slow_ingest(events, columns=None):
            with maybe_span("inject.latency"):
                time.sleep(spike)
            return original_ingest(events, columns=columns)

        n = len(engine.catalogue)
        with use_registry(registry), use_tracer(tracer), \
                use_monitor(monitor), use_slo_tracker(tracker), \
                use_flight_recorder(recorder):
            for batch in range(12):
                if batch == 4:
                    engine.store.ingest = slow_ingest
                events = _views(batch % n, 3) + _views((batch + 1) % n, 2)
                engine.ingest(events)
                engine.refresh()
                engine.top_k(3)
            tracker.evaluate()
        engine.store.ingest = original_ingest

        # (a) the multi-window burn-rate rule fired.
        fired = [alert.rule for alert in tracker.alerts.fired]
        assert "slo-burn:serving-latency" in fired

        # (b) a bundle landed; its slowest exemplar blames the spike.
        # (The quality monitor's own divergence alert may dump first, so
        # pick the bundle the SLO alert triggered by its reason.)
        assert recorder.dumps
        slo_bundles = [
            path for path in recorder.dumps
            if load_bundle(path)["meta"]["reason"].startswith("alert-slo-")
        ]
        assert slo_bundles
        bundle = load_bundle(slo_bundles[0])
        slowest = recorder.slowest_requests(1)[0]
        assert slowest.hottest_span() == "engine.ingest/inject.latency"
        # The bundle names its own slowest-at-dump-time exemplar; that
        # request's span tree must blame the injected span too.
        dumped = {r["trace_id"]: r for r in bundle["requests"]}
        bundle_slowest = dumped[bundle["meta"]["slowest_trace_id"]]
        spans = {s["path"] for s in bundle_slowest["spans"]}
        assert "engine.ingest/inject.latency" in spans

        # (c) the Prometheus export carries the exhausted budget.
        assert "serving-latency" in tracker.exhausted()
        prom = registry.to_prometheus_text()
        budget_lines = [
            line for line in prom.splitlines()
            if line.startswith("slo_serving_latency_budget_remaining")
        ]
        assert budget_lines, prom
        assert float(budget_lines[0].split()[-1]) <= 0.0
