"""Span/Tracer timing semantics."""

import time

import pytest

from repro.obs import Tracer, get_active_tracer, maybe_span, use_tracer


class TestTracer:
    def test_span_records_calls_and_time(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("work"):
                time.sleep(0.001)
        stats = tracer.stats("work")
        assert stats.calls == 3
        assert stats.total_seconds >= 0.003
        assert stats.min_seconds <= stats.max_seconds

    def test_nested_spans_build_paths(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert sorted(tracer.report()) == ["outer", "outer/inner"]

    def test_nested_timing_monotonic(self):
        """A parent span's wall clock dominates the sum of its children."""
        tracer = Tracer()
        with tracer.span("parent"):
            for _ in range(4):
                with tracer.span("child"):
                    time.sleep(0.001)
        parent = tracer.stats("parent")
        child = tracer.stats("parent/child")
        assert child.calls == 4
        assert parent.total_seconds >= child.total_seconds

    def test_sibling_spans_share_parent_path(self):
        tracer = Tracer()
        with tracer.span("p"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        assert sorted(tracer.report()) == ["p", "p/a", "p/b"]

    def test_span_name_validation(self):
        with pytest.raises(ValueError):
            Tracer().span("a/b")
        with pytest.raises(ValueError):
            Tracer().span("")

    def test_records_and_text(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        records = list(tracer.iter_records())
        assert records[0]["path"] == "x" and records[0]["calls"] == 1
        assert "x" in tracer.to_text()


class TestActiveTracer:
    def test_maybe_span_noop_without_tracer(self):
        assert get_active_tracer() is None
        with maybe_span("anything"):
            pass  # must not raise and must not record anywhere

    def test_maybe_span_records_on_active_tracer(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with maybe_span("tick"):
                pass
        assert tracer.stats("tick").calls == 1


class TestSelfTime:
    def test_parent_self_time_excludes_children(self):
        tracer = Tracer()
        with tracer.span("outer"):
            time.sleep(0.005)
            with tracer.span("inner"):
                time.sleep(0.01)
        outer = tracer.stats("outer")
        inner = tracer.stats("outer/inner")
        assert outer.child_seconds == pytest.approx(inner.total_seconds)
        assert outer.self_seconds == pytest.approx(
            outer.total_seconds - inner.total_seconds
        )
        assert outer.self_seconds < outer.total_seconds
        # Leaf spans: self time equals total time.
        assert inner.self_seconds == pytest.approx(inner.total_seconds)

    def test_only_direct_children_subtracted(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    time.sleep(0.005)
        a = tracer.stats("a")
        b = tracer.stats("a/b")
        c = tracer.stats("a/b/c")
        # a's children time is b's total (not b + c).
        assert a.child_seconds == pytest.approx(b.total_seconds)
        assert b.child_seconds == pytest.approx(c.total_seconds)

    def test_self_seconds_in_records_and_text(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        records = {r["path"]: r for r in tracer.iter_records()}
        assert "self_seconds" in records["outer"]
        assert records["outer"]["self_seconds"] <= records["outer"]["total_seconds"]
        assert "self=" in tracer.to_text()


class TestDroppedEvents:
    def test_overflow_counts_drops_and_keeps_stats(self):
        tracer = Tracer(max_events=2)
        for _ in range(5):
            with tracer.span("tick"):
                pass
        assert tracer.dropped_events == 3
        assert len(tracer.chrome_trace_events()) == 2
        # Aggregated stats are unaffected by the event cap.
        assert tracer.stats("tick").calls == 5

    def test_dropped_line_in_text_report(self):
        tracer = Tracer(max_events=1)
        for _ in range(3):
            with tracer.span("tick"):
                pass
        text = tracer.to_text()
        assert "events dropped: 2" in text
        assert "max_events=1" in text
        # No dropped line when nothing was dropped.
        assert "events dropped" not in Tracer().to_text()

    def test_chrome_trace_metadata_reports_drops(self):
        import json

        tracer = Tracer(max_events=1)
        for _ in range(3):
            with tracer.span("tick"):
                pass
        payload = json.loads(tracer.to_chrome_trace())
        assert payload["metadata"]["events_dropped"] == 2
        assert payload["metadata"]["events_recorded"] == 1
        assert payload["metadata"]["max_events"] == 1

    def test_registry_counter_mirrors_drops(self):
        from repro.obs import MetricsRegistry, use_registry

        registry = MetricsRegistry()
        tracer = Tracer(max_events=1)
        with use_registry(registry):
            for _ in range(4):
                with tracer.span("tick"):
                    pass
        assert registry.counter("tracer.events_dropped").value == 3


class TestTraceIdOnEvents:
    def test_events_carry_trace_id_inside_request_scope(self):
        from repro.obs.context import request_scope

        tracer = Tracer()
        with tracer.span("outside"):
            pass
        with request_scope("req") as ctx:
            with tracer.span("inside"):
                pass
        events = tracer.chrome_trace_events()
        by_name = {event["name"]: event for event in events}
        assert "trace_id" not in by_name["outside"]["args"]
        assert by_name["inside"]["args"]["trace_id"] == ctx.trace_id
