"""Span/Tracer timing semantics."""

import time

import pytest

from repro.obs import Tracer, get_active_tracer, maybe_span, use_tracer


class TestTracer:
    def test_span_records_calls_and_time(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("work"):
                time.sleep(0.001)
        stats = tracer.stats("work")
        assert stats.calls == 3
        assert stats.total_seconds >= 0.003
        assert stats.min_seconds <= stats.max_seconds

    def test_nested_spans_build_paths(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert sorted(tracer.report()) == ["outer", "outer/inner"]

    def test_nested_timing_monotonic(self):
        """A parent span's wall clock dominates the sum of its children."""
        tracer = Tracer()
        with tracer.span("parent"):
            for _ in range(4):
                with tracer.span("child"):
                    time.sleep(0.001)
        parent = tracer.stats("parent")
        child = tracer.stats("parent/child")
        assert child.calls == 4
        assert parent.total_seconds >= child.total_seconds

    def test_sibling_spans_share_parent_path(self):
        tracer = Tracer()
        with tracer.span("p"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        assert sorted(tracer.report()) == ["p", "p/a", "p/b"]

    def test_span_name_validation(self):
        with pytest.raises(ValueError):
            Tracer().span("a/b")
        with pytest.raises(ValueError):
            Tracer().span("")

    def test_records_and_text(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        records = list(tracer.iter_records())
        assert records[0]["path"] == "x" and records[0]["calls"] == 1
        assert "x" in tracer.to_text()


class TestActiveTracer:
    def test_maybe_span_noop_without_tracer(self):
        assert get_active_tracer() is None
        with maybe_span("anything"):
            pass  # must not raise and must not record anywhere

    def test_maybe_span_records_on_active_tracer(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with maybe_span("tick"):
                pass
        assert tracer.stats("tick").calls == 1
