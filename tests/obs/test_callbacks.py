"""Trainer callback interface and the telemetry metrics adapter."""

import numpy as np
import pytest

from repro.core import ATNNTrainer, TwoTowerModel, TwoTowerTrainer, ATNN
from repro.data import train_test_split
from repro.obs import (
    BatchStats,
    MetricsRegistry,
    TelemetryCallback,
    TrainerCallback,
    global_callbacks,
    register_global_callback,
    unregister_global_callback,
    use_registry,
)


@pytest.fixture
def tiny_train(tiny_tmall_world):
    rng = np.random.default_rng(0)
    train, _ = train_test_split(tiny_tmall_world.interactions, 0.2, rng)
    return train.subset(np.arange(2000))


def _batch(step, path, losses, lr=1e-3, grad_norm=1.0):
    return BatchStats(
        step=step,
        path=path,
        losses=losses,
        grad_norm=grad_norm,
        grad_norms={"item_tower": grad_norm},
        lr=lr,
    )


class _Recorder(TrainerCallback):
    def __init__(self):
        self.events = []

    def on_train_begin(self, trainer, model):
        self.events.append("begin")

    def on_batch_end(self, stats):
        self.events.append(("batch", stats.path, sorted(stats.losses)))

    def on_epoch_end(self, epoch, record):
        self.events.append(("epoch", epoch))

    def on_train_end(self, history):
        self.events.append("end")


class TestTrainerIntegration:
    def test_direct_callback_receives_full_lifecycle(
        self, tiny_tmall_world, tiny_tower_config, tiny_train
    ):
        recorder = _Recorder()
        model = TwoTowerModel(
            tiny_tmall_world.schema, tiny_tower_config,
            rng=np.random.default_rng(1),
        )
        TwoTowerTrainer(
            epochs=1, batch_size=512, lr=1e-3, callbacks=[recorder]
        ).fit(model, tiny_train)
        assert recorder.events[0] == "begin"
        assert recorder.events[-1] == "end"
        assert ("epoch", 0) in recorder.events
        batch_events = [e for e in recorder.events if e[0] == "batch"]
        assert batch_events and all(e[1] == "encoder" for e in batch_events)

    def test_atnn_reports_both_paths_with_grad_norms(
        self, tiny_tmall_world, tiny_tower_config, tiny_train
    ):
        seen = []

        class _Paths(TrainerCallback):
            def on_batch_end(self, stats):
                seen.append(stats)

        model = ATNN(
            tiny_tmall_world.schema, tiny_tower_config,
            rng=np.random.default_rng(2),
        )
        ATNNTrainer(
            epochs=1, batch_size=512, lr=1e-3, callbacks=[_Paths()]
        ).fit(model, tiny_train)
        paths = {stats.path for stats in seen}
        assert paths == {"encoder", "generator"}
        encoder = next(s for s in seen if s.path == "encoder")
        assert "loss_i" in encoder.losses
        assert encoder.grad_norm > 0
        assert "item_encoder" in encoder.grad_norms
        generator = next(s for s in seen if s.path == "generator")
        assert set(generator.losses) == {"loss_g", "loss_s"}

    def test_global_callback_attached_and_detached(
        self, tiny_tmall_world, tiny_tower_config, tiny_train
    ):
        recorder = _Recorder()
        register_global_callback(recorder)
        try:
            assert recorder in global_callbacks()
            model = TwoTowerModel(
                tiny_tmall_world.schema, tiny_tower_config,
                rng=np.random.default_rng(1),
            )
            TwoTowerTrainer(epochs=1, batch_size=512, lr=1e-3).fit(
                model, tiny_train
            )
        finally:
            unregister_global_callback(recorder)
        assert recorder.events[0] == "begin" and recorder.events[-1] == "end"
        assert recorder not in global_callbacks()

    def test_unregister_absent_callback_is_noop(self):
        unregister_global_callback(_Recorder())


class TestTelemetryCallback:
    def test_metrics_emitted(self):
        registry = MetricsRegistry()
        callback = TelemetryCallback(registry)
        callback.on_batch_end(_batch(1, "encoder", {"loss_i": 0.7}))
        callback.on_epoch_end(0, {"loss_i": 0.7})
        assert registry.counter("trainer.batches").value == 1
        assert registry.histogram("trainer.loss_i").count == 1
        assert registry.histogram("trainer.grad_norm").count == 1
        assert registry.histogram("trainer.grad_norm.item_tower").count == 1
        assert registry.gauge("trainer.lr").value == 1e-3
        assert callback.epochs == [{"loss_i": 0.7}]

    def test_resolves_active_registry_when_unbound(self):
        registry = MetricsRegistry()
        callback = TelemetryCallback()
        with use_registry(registry):
            callback.on_batch_end(_batch(1, "encoder", {"loss": 0.5}))
        assert registry.counter("trainer.batches").value == 1

    def test_divergence_counter_on_ratio_drift(self):
        registry = MetricsRegistry()
        callback = TelemetryCallback(
            registry, drift_factor=2.0, warmup_batches=5, ema_decay=0.9
        )
        step = 0
        for _ in range(10):  # stable alternation: ratio 1.0
            step += 1
            callback.on_batch_end(_batch(step, "encoder", {"loss_i": 0.5}))
            step += 1
            callback.on_batch_end(_batch(step, "generator", {"loss_g": 0.5}))
        assert registry.counter("trainer.divergence_warning").value == 0
        # Generator loss explodes: ratio jumps 10x past the drift factor.
        step += 1
        callback.on_batch_end(_batch(step, "encoder", {"loss_i": 0.5}))
        step += 1
        callback.on_batch_end(_batch(step, "generator", {"loss_g": 5.0}))
        assert registry.counter("trainer.divergence_warning").value == 1

    def test_non_finite_loss_counts_as_divergence(self):
        registry = MetricsRegistry()
        callback = TelemetryCallback(registry)
        callback.on_batch_end(_batch(1, "encoder", {"loss_i": float("nan")}))
        assert registry.counter("trainer.divergence_warning").value == 1

    def test_no_warning_during_warmup(self):
        registry = MetricsRegistry()
        callback = TelemetryCallback(
            registry, drift_factor=2.0, warmup_batches=50, ema_decay=0.9
        )
        callback.on_batch_end(_batch(1, "encoder", {"loss_i": 0.5}))
        callback.on_batch_end(_batch(2, "generator", {"loss_g": 0.5}))
        callback.on_batch_end(_batch(3, "encoder", {"loss_i": 0.5}))
        callback.on_batch_end(_batch(4, "generator", {"loss_g": 50.0}))
        assert registry.counter("trainer.divergence_warning").value == 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TelemetryCallback(drift_factor=1.0)
        with pytest.raises(ValueError):
            TelemetryCallback(ema_decay=1.0)
