"""End-to-end fleet aggregation: real worker processes through the
shipper → spool → collector path, plus the session-level wiring that
the CLI's ``--spool-dir`` flag drives."""

import json

import pytest

from repro.obs import TelemetryCollector, TelemetrySession, get_shard_label
from repro.experiments.agg_smoke import run_agg_smoke


class TestSessionShipperLifecycle:
    def test_spool_dir_builds_a_bound_shipper(self, tmp_path):
        session = TelemetrySession(
            profile_autograd=False,
            spool_dir=tmp_path / "spool",
            shard_label="shard-7",
        )
        assert session.shipper is not None
        assert session.shipper.process_label == "shard-7"
        assert session.shipper.spool_path.name == "shard-7.jsonl"

    def test_stop_ships_a_final_frame_with_session_state(self, tmp_path):
        spool = tmp_path / "spool"
        with TelemetrySession(
            profile_autograd=False, spool_dir=spool, shard_label="w"
        ) as session:
            session.registry.counter("work.done").inc(4)
        collector = TelemetryCollector(spool)
        summary = collector.collect()
        assert summary["processes"] == 1
        assert collector.registry.counter("work.done").value == 4.0
        assert collector.processes["w"]["shard"] == "w"

    def test_shard_label_is_scoped_to_the_session(self, tmp_path):
        assert get_shard_label() is None
        with TelemetrySession(
            profile_autograd=False,
            spool_dir=tmp_path / "spool",
            shard_label="shard-3",
        ):
            assert get_shard_label() == "shard-3"
        assert get_shard_label() is None

    def test_session_without_spool_dir_has_no_shipper(self):
        session = TelemetrySession(profile_autograd=False)
        assert session.shipper is None


class TestAggSmokeEndToEnd:
    """Four real processes (router + three shard workers, one spiked)
    merged by the collector: the full acceptance path, scaled down for
    CI friendliness."""

    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        output_dir = tmp_path_factory.mktemp("agg-smoke")
        # 3 workers with only the last spiked keeps the fleet p50 well
        # inside the clean-latency region (a 50/50 clean/spike mix puts
        # the median on the mixture boundary, where nearest-rank truth
        # and histogram interpolation legitimately disagree).
        return (
            run_agg_smoke(
                n_workers=3, events_per_worker=16, output_dir=output_dir
            ),
            output_dir,
        )

    def test_result_passes_every_gate(self, result):
        smoke, _ = result
        assert smoke.counters_exact, smoke.render()
        assert smoke.quantiles_ok, smoke.render()
        assert smoke.stitched_ok, smoke.render()
        assert smoke.alert_fired, smoke.render()
        assert smoke.passed

    def test_merged_counters_sum_across_workers(self, result):
        smoke, _ = result
        assert smoke.merged_requests == 3 * 16
        assert smoke.expected_requests == 3 * 16

    def test_router_and_workers_render_as_one_stitched_trace(self, result):
        smoke, output_dir = result
        assert smoke.stitched_traces >= 1
        trace = json.loads((output_dir / "merged_trace.json").read_text())
        pids = {
            event["pid"]
            for event in trace["traceEvents"]
            if event.get("cat") == "request"
        }
        assert len(pids) >= 2  # router + at least one worker process

    def test_fleet_alert_fired_on_the_merged_view_only(self, result):
        smoke, _ = result
        assert any("slo-burn" in rule for rule in smoke.fleet_alerts)

    def test_artifacts_are_written(self, result):
        _, output_dir = result
        for name in ("fleet.txt", "fleet.jsonl", "merged_trace.json"):
            assert (output_dir / name).is_file()
