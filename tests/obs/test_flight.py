"""Flight recorder: ring buffer, tail exemplars, postmortems, replay."""

import json

import pytest

from repro.obs import MetricsRegistry, use_registry
from repro.obs.alerts import Alert
from repro.obs.context import RequestRecord, request_scope
from repro.obs.flight import (
    FlightRecorder,
    get_active_flight_recorder,
    load_bundle,
    main,
    render_bundle,
    use_flight_recorder,
)
from repro.obs.quality import QualityMonitor, use_monitor
from repro.obs.slo import SLO, SLOTracker, use_slo_tracker


def _record(trace_id, duration=0.01, status="ok", started_perf=None, spans=()):
    return RequestRecord(
        trace_id=trace_id,
        kind="ingest",
        started_unix=1000.0,
        started_perf=started_perf if started_perf is not None else 0.0,
        duration_seconds=duration,
        status=status,
        error="RuntimeError('x')" if status == "error" else None,
        spans=list(spans),
    )


class TestRingAndExemplars:
    def test_ring_keeps_most_recent(self):
        recorder = FlightRecorder(capacity=3, tail_exemplars=0)
        for index in range(5):
            recorder.on_request(_record(f"t-{index}", started_perf=float(index)))
        assert [r.trace_id for r in recorder.recent()] == ["t-2", "t-3", "t-4"]
        assert recorder.requests_recorded == 5

    def test_tail_exemplars_survive_ring_wrap(self):
        recorder = FlightRecorder(capacity=2, tail_exemplars=2)
        recorder.on_request(_record("slowest", duration=9.0, started_perf=0.0))
        for index in range(10):
            recorder.on_request(
                _record(f"fast-{index}", duration=0.001,
                        started_perf=1.0 + index)
            )
        slowest = recorder.slowest_requests()
        assert slowest[0].trace_id == "slowest"
        # retained() unions ring and exemplars without duplicates.
        retained_ids = [r.trace_id for r in recorder.retained()]
        assert "slowest" in retained_ids
        assert len(retained_ids) == len(set(retained_ids))

    def test_slowest_ordering_and_limit(self):
        recorder = FlightRecorder(capacity=10, tail_exemplars=3)
        for index, duration in enumerate((0.3, 0.1, 0.5, 0.2)):
            recorder.on_request(
                _record(f"t-{index}", duration=duration,
                        started_perf=float(index))
            )
        assert [r.trace_id for r in recorder.slowest_requests()] == [
            "t-2", "t-0", "t-3",
        ]
        assert len(recorder.slowest_requests(1)) == 1

    def test_registry_counters(self):
        registry = MetricsRegistry()
        recorder = FlightRecorder(capacity=4, auto_dump=False)
        with use_registry(registry):
            recorder.on_request(_record("ok"))
            recorder.on_request(_record("bad", status="error"))
        assert registry.counter("flight.requests_recorded").value == 2
        assert registry.counter("flight.requests_failed").value == 1

    def test_iter_records_flags_exemplars(self):
        recorder = FlightRecorder(capacity=1, tail_exemplars=1)
        recorder.on_request(_record("slow", duration=5.0, started_perf=0.0))
        recorder.on_request(_record("recent", duration=0.01, started_perf=1.0))
        records = {r["trace_id"]: r for r in recorder.iter_records()}
        assert records["slow"]["tail_exemplar"] is True
        assert records["slow"]["type"] == "request"


class TestPostmortemBundles:
    def _spanned_record(self, trace_id, duration=0.5):
        return _record(
            trace_id,
            duration=duration,
            spans=[
                ("engine.ingest/inject.latency", 0.001, duration - 0.002),
                ("engine.ingest", 0.0, duration - 0.001),
            ],
        )

    def test_dump_writes_all_artifacts(self, tmp_path):
        recorder = FlightRecorder(capacity=8, postmortem_dir=tmp_path)
        recorder.on_request(self._spanned_record("t-slow"))
        bundle = recorder.dump_postmortem("manual")
        assert bundle.is_dir()
        meta = json.loads((bundle / "META.json").read_text())
        assert meta["reason"] == "manual"
        assert meta["slowest_trace_id"] == "t-slow"
        requests = [
            json.loads(line)
            for line in (bundle / "requests.jsonl").read_text().splitlines()
        ]
        assert requests[0]["trace_id"] == "t-slow"
        trace = json.loads((bundle / "trace.json").read_text())
        names = {event["name"] for event in trace["traceEvents"]}
        assert "request:ingest" in names
        assert "inject.latency" in names
        assert (bundle / "snapshot.json").exists()

    def test_snapshot_carries_monitor_slo_and_registry_state(self, tmp_path):
        recorder = FlightRecorder(capacity=8, postmortem_dir=tmp_path)
        recorder.on_request(_record("t-1"))
        registry = MetricsRegistry()
        monitor = QualityMonitor()
        tracker = SLOTracker(
            [SLO.availability("a", min_events=1)], evaluate_every=0
        )
        with use_registry(registry), use_monitor(monitor), \
                use_slo_tracker(tracker):
            registry.counter("engine.refreshes").inc()
            bundle = recorder.dump_postmortem("manual")
        snapshot = json.loads((bundle / "snapshot.json").read_text())
        assert "quality" in snapshot
        assert snapshot["slo"][0]["name"] == "a"
        assert "engine.refreshes" in snapshot["metrics"]

    def test_auto_dump_on_error_request(self, tmp_path):
        recorder = FlightRecorder(capacity=8, postmortem_dir=tmp_path)
        recorder.on_request(_record("bad", status="error"))
        assert len(recorder.dumps) == 1
        meta = json.loads((recorder.dumps[0] / "META.json").read_text())
        assert meta["reason"].startswith("exception-")
        assert "RuntimeError" in meta["error"]

    def test_auto_dump_on_fired_alert_with_debounce(self, tmp_path):
        recorder = FlightRecorder(
            capacity=8, postmortem_dir=tmp_path, dump_debounce=4
        )
        alert = Alert(
            rule="slo-burn:lat", metric="slo.lat.burn_rate", value=3.0,
            threshold=2.0, severity="warning", kind="fired",
        )
        recorder.on_request(_record("t-1"))
        recorder.on_alert(alert)
        recorder.on_alert(alert)  # debounced: same traffic window
        assert len(recorder.dumps) == 1
        for index in range(4):
            recorder.on_request(_record(f"t-{index + 2}"))
        recorder.on_alert(alert)
        assert len(recorder.dumps) == 2

    def test_max_dumps_cap(self, tmp_path):
        recorder = FlightRecorder(
            capacity=8, postmortem_dir=tmp_path, dump_debounce=0, max_dumps=2
        )
        for index in range(5):
            recorder.on_request(_record(f"bad-{index}", status="error"))
        assert len(recorder.dumps) == 2

    def test_no_auto_dump_without_directory(self):
        recorder = FlightRecorder(capacity=4)
        recorder.on_request(_record("bad", status="error"))
        assert recorder.dumps == []
        with pytest.raises(ValueError, match="postmortem_dir"):
            recorder.dump_postmortem("manual")


class TestReplay:
    def test_load_and_render_bundle(self, tmp_path):
        recorder = FlightRecorder(capacity=8, postmortem_dir=tmp_path)
        recorder.on_request(
            _record(
                "t-slow",
                duration=0.5,
                spans=[
                    ("engine.ingest/inject.latency", 0.001, 0.45),
                    ("engine.ingest", 0.0, 0.49),
                ],
            )
        )
        path = recorder.dump_postmortem("manual")
        bundle = load_bundle(path)
        text = render_bundle(bundle)
        assert "t-slow" in text
        assert "hottest span (self time): engine.ingest/inject.latency" in text

    def test_main_exit_codes(self, tmp_path, capsys):
        recorder = FlightRecorder(capacity=4, postmortem_dir=tmp_path)
        recorder.on_request(_record("t-1"))
        path = recorder.dump_postmortem("manual")
        assert main([str(path)]) == 0
        assert "postmortem bundle" in capsys.readouterr().out
        assert main([str(tmp_path / "missing")]) == 2


class TestActiveRecorder:
    def test_scoped_activation_feeds_requests_and_alerts(self, tmp_path):
        recorder = FlightRecorder(
            capacity=8, postmortem_dir=tmp_path, dump_debounce=0
        )
        tracker = SLOTracker(
            [SLO.availability("a", objective=0.9, window=10, fast_window=5,
                              min_events=5)],
            evaluate_every=1,
        )
        assert get_active_flight_recorder() is None
        with use_flight_recorder(recorder), use_slo_tracker(tracker):
            assert get_active_flight_recorder() is recorder
            for _ in range(10):
                with pytest.raises(RuntimeError):
                    with request_scope("ingest"):
                        raise RuntimeError("down")
        assert get_active_flight_recorder() is None
        assert recorder.requests_recorded == 10
        assert recorder.requests_failed == 10
        # Both the error requests and the availability burn alert dumped.
        assert recorder.dumps
        reasons = [
            json.loads((path / "META.json").read_text())["reason"]
            for path in recorder.dumps
        ]
        assert any(reason.startswith("exception-") for reason in reasons)
        # Deactivated: no further deliveries.
        with request_scope("ingest"):
            pass
        assert recorder.requests_recorded == 10
