"""Alert rules: thresholds, hysteresis, debouncing and sinks."""

import json

import pytest

from repro.obs import (
    Alert,
    AlertEngine,
    AlertRule,
    CallbackSink,
    JsonlSink,
    MetricsRegistry,
    Severity,
    use_registry,
)


def _engine(*rules, sinks=()):
    return AlertEngine(rules, sinks=sinks or [CallbackSink(lambda a: None)])


class TestAlertRule:
    def test_direction_above(self):
        rule = AlertRule("r", "m", 0.5, direction="above")
        assert rule.breaches(0.5) and rule.breaches(0.9)
        assert not rule.breaches(0.4)
        assert rule.clears(0.4) and not rule.clears(0.5)

    def test_direction_below(self):
        rule = AlertRule("r", "m", 0.5, direction="below")
        assert rule.breaches(0.5) and rule.breaches(0.1)
        assert rule.clears(0.6) and not rule.clears(0.5)

    def test_clear_threshold_must_be_on_healthy_side(self):
        AlertRule("ok", "m", 0.5, direction="above", clear_threshold=0.4)
        with pytest.raises(ValueError):
            AlertRule("bad", "m", 0.5, direction="above", clear_threshold=0.6)
        with pytest.raises(ValueError):
            AlertRule("bad", "m", 0.5, direction="below", clear_threshold=0.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            AlertRule("r", "m", 0.5, direction="sideways")
        with pytest.raises(ValueError):
            AlertRule("r", "m", 0.5, consecutive=0)
        with pytest.raises(ValueError):
            AlertRule("r", "m", 0.5, severity="panic")


class TestAlertEngine:
    def test_fires_and_resolves(self):
        engine = _engine(AlertRule("hot", "temp", 100.0))
        assert engine.evaluate({"temp": 50.0}) == []
        fired = engine.evaluate({"temp": 120.0})
        assert len(fired) == 1 and fired[0].kind == "fired"
        # Still hot: no new transition.
        assert engine.evaluate({"temp": 130.0}) == []
        resolved = engine.evaluate({"temp": 90.0})
        assert len(resolved) == 1 and resolved[0].kind == "resolved"
        assert engine.active_alerts() == []

    def test_consecutive_debounces_single_spike(self):
        engine = _engine(AlertRule("spiky", "m", 1.0, consecutive=3))
        assert engine.evaluate({"m": 2.0}) == []
        assert engine.evaluate({"m": 0.0}) == []  # streak broken
        assert engine.evaluate({"m": 2.0}) == []
        assert engine.evaluate({"m": 2.0}) == []
        assert len(engine.evaluate({"m": 2.0})) == 1  # third in a row

    def test_hysteresis_prevents_flapping(self):
        engine = _engine(
            AlertRule("flap", "m", 1.0, clear_threshold=0.5)
        )
        engine.evaluate({"m": 1.5})
        assert engine.active_alerts() == ["flap"]
        # Back under the firing threshold but above clear: stays active.
        assert engine.evaluate({"m": 0.9}) == []
        assert engine.active_alerts() == ["flap"]
        resolved = engine.evaluate({"m": 0.4})
        assert resolved[0].kind == "resolved"

    def test_missing_and_non_finite_leave_state_untouched(self):
        engine = _engine(AlertRule("r", "m", 1.0, consecutive=2))
        engine.evaluate({"m": 2.0})  # streak 1
        engine.evaluate({})  # missing: untouched
        engine.evaluate({"m": None})  # None: untouched
        engine.evaluate({"m": float("nan")})  # non-finite: untouched
        fired = engine.evaluate({"m": 2.0})  # streak 2 -> fires
        assert len(fired) == 1

    def test_duplicate_rule_names_rejected(self):
        with pytest.raises(ValueError):
            AlertEngine([AlertRule("x", "a", 1.0), AlertRule("x", "b", 1.0)])

    def test_fired_counter_in_registry(self):
        registry = MetricsRegistry()
        engine = _engine(
            AlertRule("crit", "m", 1.0, severity=Severity.CRITICAL)
        )
        with use_registry(registry):
            engine.evaluate({"m": 5.0})
        assert registry.counter("alerts.fired").value == 1.0
        assert registry.counter("alerts.fired.critical").value == 1.0

    def test_history_and_records(self):
        engine = _engine(AlertRule("r", "m", 1.0))
        engine.evaluate({"m": 2.0})
        engine.evaluate({"m": 0.0})
        records = list(engine.iter_records())
        assert [r["kind"] for r in records] == ["fired", "resolved"]
        assert len(engine.fired) == 1


class TestSinks:
    def test_callback_sink_receives_alerts(self):
        received = []
        engine = AlertEngine(
            [AlertRule("r", "m", 1.0)], sinks=[CallbackSink(received.append)]
        )
        engine.evaluate({"m": 2.0})
        assert len(received) == 1
        assert isinstance(received[0], Alert)
        assert received[0].as_dict()["rule"] == "r"

    def test_jsonl_sink_appends(self, tmp_path):
        path = tmp_path / "alerts.jsonl"
        engine = AlertEngine(
            [AlertRule("r", "m", 1.0)], sinks=[JsonlSink(path)]
        )
        engine.evaluate({"m": 2.0})
        engine.evaluate({"m": 0.0})
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["kind"] == "fired"
        assert json.loads(lines[1])["kind"] == "resolved"
