"""Streaming quality estimators and the QualityMonitor façade."""

import numpy as np
import pytest

from repro.metrics.auc import roc_auc
from repro.metrics.classification import calibration_error
from repro.obs import (
    AlertRule,
    CohortCTR,
    ColdStartTracker,
    MetricsRegistry,
    QualityMonitor,
    SlidingBlocks,
    StreamingAUC,
    WindowedECE,
    default_quality_rules,
    get_active_monitor,
    use_monitor,
    use_registry,
)
from repro.serving.events import Event, EventKind, join_click_outcomes


def _outcome_stream(n, rng, signal=0.2):
    labels = rng.integers(0, 2, n).astype(float)
    scores = np.clip(rng.normal(0.4 + signal * labels, 0.15), 0.0, 1.0)
    return labels, scores


class TestSlidingBlocks:
    def test_cumulative_mode_keeps_everything(self):
        blocks = SlidingBlocks((4,))
        for _ in range(100):
            blocks.add(10, np.ones(4))
        assert blocks.count == 1000
        (total,) = blocks.totals()
        assert total.tolist() == [100.0] * 4

    def test_window_evicts_old_blocks(self):
        blocks = SlidingBlocks((2,), window=100, block_size=10)
        for _ in range(50):
            blocks.add(10, np.array([1.0, 0.0]))
        # Retained span stays within [window, window + block).
        assert 100 <= blocks.count < 110
        assert blocks.total_seen == 500

    def test_totals_are_fresh_copies(self):
        blocks = SlidingBlocks((2,))
        blocks.add(1, np.array([1.0, 2.0]))
        (first,) = blocks.totals()
        first += 100
        (second,) = blocks.totals()
        assert second.tolist() == [1.0, 2.0]


class TestStreamingAUC:
    def test_matches_exact_auc_on_50k_stream(self):
        rng = np.random.default_rng(7)
        labels, scores = _outcome_stream(50_000, rng)
        estimator = StreamingAUC()
        for start in range(0, labels.size, 1000):
            estimator.update(
                labels[start : start + 1000], scores[start : start + 1000]
            )
        exact = roc_auc(labels, scores)
        assert estimator.value == pytest.approx(exact, abs=0.01)
        # With 512 bins it should actually be far tighter than the contract.
        assert abs(estimator.value - exact) < 1e-3

    def test_single_class_returns_none(self):
        estimator = StreamingAUC()
        estimator.update([1.0, 1.0], [0.5, 0.7])
        assert estimator.value is None
        estimator.update([0.0], [0.2])
        assert estimator.value is not None

    def test_windowed_forgets_old_regime(self):
        rng = np.random.default_rng(3)
        estimator = StreamingAUC(window=5000)
        # First regime: anti-correlated scores (AUC < 0.5).
        labels, scores = _outcome_stream(10_000, rng, signal=-0.2)
        estimator.update(labels, scores)
        assert estimator.value < 0.5
        # Second regime fills the whole window: good scores.
        labels, scores = _outcome_stream(10_000, rng, signal=0.2)
        estimator.update(labels, scores)
        assert estimator.value > 0.7

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            StreamingAUC().update([1.0, 0.0], [0.5])


class TestWindowedECE:
    def test_matches_exact_calibration_error_on_full_window(self):
        rng = np.random.default_rng(11)
        labels, scores = _outcome_stream(20_000, rng)
        estimator = WindowedECE(n_bins=10)
        for start in range(0, labels.size, 512):
            estimator.update(
                labels[start : start + 512], scores[start : start + 512]
            )
        exact = calibration_error(labels, scores, n_bins=10)
        assert estimator.value == pytest.approx(exact, abs=1e-12)

    def test_empty_returns_none(self):
        assert WindowedECE().value is None

    def test_perfectly_calibrated_is_near_zero(self):
        rng = np.random.default_rng(5)
        probabilities = rng.uniform(0.0, 1.0, 30_000)
        labels = (rng.uniform(size=probabilities.size) < probabilities).astype(
            float
        )
        estimator = WindowedECE()
        estimator.update(labels, probabilities)
        assert estimator.value < 0.02


class TestCohortCTR:
    def test_per_cohort_rates(self):
        ctr = CohortCTR()
        ctr.record("cold", 100, 10)
        ctr.record("warm", 200, 50)
        ctr.record("cold", 100, 30)
        assert ctr.ctr("cold") == pytest.approx(0.2)
        assert ctr.ctr("warm") == pytest.approx(0.25)
        assert ctr.ctr("unknown") is None
        snapshot = ctr.snapshot()
        assert snapshot["cold"]["impressions"] == 200
        assert snapshot["cold"]["clicks"] == 40

    def test_windowed_rotation(self):
        ctr = CohortCTR(window=100, block_size=50)
        ctr.record("a", 100, 0)
        ctr.record("a", 100, 100)
        ctr.record("a", 100, 100)
        # The zero-click era has rotated out.
        assert ctr.ctr("a") > 0.5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CohortCTR().record("a", -1, 0)


class TestColdStartTracker:
    def test_lifecycle_accounting(self):
        tracker = ColdStartTracker(n_slots=5, warm_view_threshold=3)
        tracker.note_release(0, 10.0)
        items = np.array([0, 0, 0, 1])
        times = np.array([12.0, 13.0, 14.0, 20.0])
        assert tracker.cold_mask(items).all()
        tracker.observe_impressions(items, times)
        assert tracker.items_seen == 2
        assert tracker.warm_items == 1  # slot 0 crossed threshold 3
        assert not tracker.cold_mask(np.array([0]))[0]
        assert tracker.cold_mask(np.array([1]))[0]
        summary = tracker.summary()
        assert summary["time_to_first_impression"]["mean"] >= 0
        assert summary["impressions_until_warm"]["mean"] == pytest.approx(3.0)

    def test_first_impression_not_overwritten(self):
        tracker = ColdStartTracker(n_slots=2, warm_view_threshold=10)
        tracker.observe_impressions(np.array([0]), np.array([5.0]))
        tracker.observe_impressions(np.array([0]), np.array([50.0]))
        assert tracker.summary()["time_to_first_impression"]["mean"] == 5.0

    def test_divergence_summary(self):
        tracker = ColdStartTracker(n_slots=4)
        tracker.observe_divergence(np.array([0, 1]), np.array([0.1, 0.3]))
        assert tracker.divergence_mean() == pytest.approx(0.2)
        stats = tracker.summary()["vector_divergence"]
        assert stats["max"] == pytest.approx(0.3)


class TestQualityMonitor:
    def _batch(self, item, user, t, clicked):
        events = [Event(EventKind.VIEW, item, user, t)]
        if clicked:
            events.append(Event(EventKind.CLICK, item, user, t + 1.0))
        return events

    def test_observe_serving_batch_updates_everything(self):
        monitor = QualityMonitor(min_outcomes=1)
        monitor.attach_catalogue(10, warm_view_threshold=2)
        scores = np.linspace(0.05, 0.95, 10)
        rng = np.random.default_rng(0)
        events = []
        for i in range(500):
            item = int(rng.integers(0, 10))
            clicked = rng.uniform() < scores[item]
            events.extend(self._batch(item, i, float(i), clicked))
        monitor.observe_serving_batch(events, scores=scores)
        snapshot = monitor.snapshot()
        assert snapshot["quality.streaming_auc"] > 0.6
        assert snapshot["quality.impressions"] == 500.0
        assert "quality.ctr.cold" in snapshot or "quality.ctr.warm" in snapshot
        assert monitor.cold_start.items_seen == 10

    def test_streaming_matches_exact_through_event_pipeline(self):
        # The same (outcome, score) joining the monitor uses, done offline.
        monitor = QualityMonitor(min_outcomes=1)
        monitor.attach_catalogue(50, warm_view_threshold=10_000)
        scores = np.linspace(0.02, 0.98, 50)
        rng = np.random.default_rng(42)
        all_events = []
        for batch_index in range(20):
            events = []
            for i in range(500):
                item = int(rng.integers(0, 50))
                clicked = bool(rng.uniform() < scores[item])
                events.extend(
                    self._batch(item, batch_index * 500 + i, float(i), clicked)
                )
            monitor.observe_serving_batch(events, scores=scores)
            all_events.extend(events)
        items, _, _, clicked = join_click_outcomes(all_events)
        exact = roc_auc(clicked.astype(float), scores[items])
        assert monitor.snapshot()["quality.streaming_auc"] == pytest.approx(
            exact, abs=0.01
        )

    def test_release_events_set_release_time(self):
        monitor = QualityMonitor()
        monitor.observe_serving_batch(
            [
                Event(EventKind.RELEASE, 3, None, 7.0),
                Event(EventKind.VIEW, 3, 1, 9.0),
            ]
        )
        summary = monitor.cold_start.summary()
        assert summary["time_to_first_impression"]["mean"] == pytest.approx(2.0)

    def test_observe_divergence_cosine(self):
        monitor = QualityMonitor()
        monitor.attach_catalogue(4)
        generated = np.array([[1.0, 0.0], [0.0, 1.0]])
        encoded = np.array([[1.0, 0.0], [1.0, 0.0]])
        monitor.observe_divergence(np.array([0, 1]), generated, encoded)
        assert monitor.cold_start.divergence_mean() == pytest.approx(0.5)

    def test_validation_records(self):
        monitor = QualityMonitor()
        labels = np.array([1.0, 0.0, 1.0, 0.0])
        scores = np.array([0.9, 0.1, 0.8, 0.3])
        monitor.observe_validation("encoder", labels, scores)
        snapshot = monitor.snapshot()
        assert snapshot["quality.validation.encoder.auc"] == pytest.approx(1.0)
        assert "quality.validation.encoder.ece" in snapshot

    def test_evaluate_pushes_gauges_and_alerts(self):
        registry = MetricsRegistry()
        rules = (
            AlertRule(
                "low-auc",
                "quality.streaming_auc",
                1.0,  # breaches at <= 1.0, i.e. always once AUC reports
                direction="below",
                consecutive=1,
            ),
        )
        monitor = QualityMonitor(min_outcomes=1, rules=rules, sinks=())
        monitor.attach_catalogue(4)
        monitor.observe_serving_batch(
            [
                Event(EventKind.VIEW, 0, 1, 0.0),
                Event(EventKind.CLICK, 0, 1, 1.0),
                Event(EventKind.VIEW, 1, 2, 2.0),
            ],
            scores=np.array([0.9, 0.1, 0.5, 0.5]),
        )
        with use_registry(registry):
            transitions = monitor.evaluate()
        assert [t.rule for t in transitions] == ["low-auc"]
        assert registry.gauge("quality.streaming_auc").value == pytest.approx(1.0)
        assert registry.counter("alerts.fired").value == 1.0

    def test_min_outcomes_warmup_hides_auc(self):
        monitor = QualityMonitor(min_outcomes=1000)
        monitor.attach_catalogue(4)
        monitor.observe_serving_batch(
            [
                Event(EventKind.VIEW, 0, 1, 0.0),
                Event(EventKind.CLICK, 0, 1, 1.0),
                Event(EventKind.VIEW, 1, 2, 2.0),
            ],
            scores=np.array([0.9, 0.1, 0.5, 0.5]),
        )
        snapshot = monitor.snapshot()
        assert snapshot["quality.streaming_auc"] is None
        assert snapshot["quality.ece"] is None

    def test_iter_records_are_typed(self):
        monitor = QualityMonitor()
        monitor.attach_catalogue(4)
        types = {record["type"] for record in monitor.iter_records()}
        assert {"quality", "drift", "coldstart"} <= types

    def test_default_rules_have_unique_names(self):
        rules = default_quality_rules()
        assert len({rule.name for rule in rules}) == len(rules)


class TestUseMonitor:
    def test_scoped_activation(self):
        assert get_active_monitor() is None
        monitor = QualityMonitor()
        with use_monitor(monitor):
            assert get_active_monitor() is monitor
            inner = QualityMonitor()
            with use_monitor(inner):
                assert get_active_monitor() is inner
            assert get_active_monitor() is monitor
        assert get_active_monitor() is None
