"""Synthetic movie world and transfer-experiment tests."""

import numpy as np
import pytest

from repro.data import GROUP_ITEM_STAT
from repro.data.synthetic import MovieConfig, MovieWorld, generate_movie_world
from repro.experiments import run_transfer


@pytest.fixture(scope="module")
def tiny_movie_world():
    return generate_movie_world(
        MovieConfig(
            n_users=300,
            n_movies=400,
            n_new_movies=120,
            n_interactions=8_000,
            seed=4,
        )
    )


class TestMovieWorld:
    def test_entity_counts(self, tiny_movie_world):
        world = tiny_movie_world
        assert len(world.users) == 300
        assert len(world.movies) == 400
        assert len(world.new_movies) == 120
        assert len(world.interactions) == 8_000

    def test_watch_rate_plausible(self, tiny_movie_world):
        rate = tiny_movie_world.interactions.label("ctr").mean()
        assert 0.1 < rate < 0.6

    def test_new_movies_lack_statistics(self, tiny_movie_world):
        world = tiny_movie_world
        for name in world.schema.numeric_names(GROUP_ITEM_STAT):
            np.testing.assert_allclose(world.new_movies[name], 0.0)

    def test_statistics_informative(self, tiny_movie_world):
        world = tiny_movie_world
        corr = np.corrcoef(world.movies["stat_hist_ctr"], world.movie_popularity)[0, 1]
        assert corr > 0.5

    def test_popularity_is_probability(self, tiny_movie_world):
        popularity = tiny_movie_world.new_movie_popularity
        assert popularity.min() >= 0.0 and popularity.max() <= 1.0

    def test_genre_sequence_feature_present(self, tiny_movie_world):
        world = tiny_movie_world
        assert world.users["user_fav_genres"].shape == (300, world.GENRE_LIST_LEN)
        lengths = world.users["user_fav_genres__mask"].sum(axis=1)
        assert lengths.min() >= 1

    def test_quality_hidden_behind_studio_ids(self, tiny_movie_world):
        """Per-studio mean quality must vary (the embedding-learnable signal)."""
        world = tiny_movie_world
        studios = world.movies["movie_studio"]
        means = np.array(
            [
                world.movie_quality[studios == s].mean()
                for s in np.unique(studios)
                if (studios == s).sum() >= 3
            ]
        )
        assert means.std() > 0.2

    def test_deterministic_under_seed(self):
        config = MovieConfig(
            n_users=100, n_movies=120, n_new_movies=40, n_interactions=1000, seed=9
        )
        a = MovieWorld(config)
        b = MovieWorld(config)
        np.testing.assert_allclose(
            a.interactions.label("ctr"), b.interactions.label("ctr")
        )

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            MovieConfig(n_genres=0)

    def test_active_user_group(self, tiny_movie_world):
        group = tiny_movie_world.active_user_group(0.1)
        assert len(group) == 30


class TestTransferExperiment:
    @pytest.fixture(scope="class")
    def result(self, tiny_movie_world):
        return run_transfer("smoke", world=tiny_movie_world)

    def test_atnn_degrades_less(self, result):
        atnn = result.table.row("ATNN")
        baseline = result.table.row("TNN-DCN")
        assert atnn.degradation > baseline.degradation
        assert atnn.auc_profile_only > baseline.auc_profile_only

    def test_popularity_ranking_carries_signal(self, result):
        # Weak threshold at this miniature scale; the benchmark asserts
        # > 0.4 on the default preset.
        assert result.popularity_rank_corr > 0.05

    def test_render(self, result):
        assert "movie recommendation" in result.render()
