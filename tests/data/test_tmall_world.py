"""Synthetic Tmall world: structural invariants the experiments rely on."""

import numpy as np
import pytest

from repro.data import GROUP_ITEM_PROFILE, GROUP_ITEM_STAT, GROUP_USER
from repro.data.synthetic import TmallConfig, TmallWorld, generate_tmall_world


class TestGeneration:
    def test_entity_counts(self, tiny_tmall_world):
        world = tiny_tmall_world
        assert len(world.users) == world.config.n_users
        assert len(world.items) == world.config.n_items
        assert len(world.new_items) == world.config.n_new_items
        assert len(world.interactions) == world.config.n_interactions

    def test_schema_covers_all_columns(self, tiny_tmall_world):
        world = tiny_tmall_world
        names = world.schema.feature_names(
            GROUP_USER, GROUP_ITEM_PROFILE, GROUP_ITEM_STAT
        )
        for name in names:
            assert name in world.items or name in world.users

    def test_categorical_ids_within_vocab(self, tiny_tmall_world):
        world = tiny_tmall_world
        for feature in world.schema.categorical:
            table = world.users if feature.group == GROUP_USER else world.items
            values = table[feature.name]
            assert values.min() >= 0
            assert values.max() < feature.vocab_size

    def test_deterministic_under_seed(self):
        config = TmallConfig(
            n_users=100, n_items=120, n_new_items=40, n_interactions=1000, seed=42
        )
        a = TmallWorld(config)
        b = TmallWorld(config)
        np.testing.assert_array_equal(
            a.interactions.label("ctr"), b.interactions.label("ctr")
        )
        np.testing.assert_allclose(a.new_item_popularity, b.new_item_popularity)

    def test_different_seeds_differ(self):
        base = dict(n_users=100, n_items=120, n_new_items=40, n_interactions=1000)
        a = TmallWorld(TmallConfig(seed=1, **base))
        b = TmallWorld(TmallConfig(seed=2, **base))
        assert not np.array_equal(
            a.interactions.label("ctr"), b.interactions.label("ctr")
        )

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            TmallConfig(n_users=0)


class TestStructuralProperties:
    def test_ctr_in_plausible_band(self, tiny_tmall_world):
        ctr = tiny_tmall_world.interactions.label("ctr").mean()
        assert 0.1 < ctr < 0.6

    def test_popularity_is_probability(self, tiny_tmall_world):
        popularity = tiny_tmall_world.new_item_popularity
        assert popularity.min() >= 0.0 and popularity.max() <= 1.0

    def test_statistics_informative_of_quality(self, tiny_tmall_world):
        """Item statistics must be a strong quality signal (Table I lever)."""
        world = tiny_tmall_world
        corr = np.corrcoef(world.items["stat_hist_ctr"], world.item_quality)[0, 1]
        assert corr > 0.5

    def test_new_items_have_zero_statistics(self, tiny_tmall_world):
        world = tiny_tmall_world
        for name in world.schema.numeric_names(GROUP_ITEM_STAT):
            np.testing.assert_allclose(world.new_items[name], 0.0)

    def test_released_items_have_nonzero_statistics(self, tiny_tmall_world):
        world = tiny_tmall_world
        assert np.abs(world.items["stat_log_pv"]).sum() > 0

    def test_quality_reachable_from_profiles(self, tiny_tmall_world):
        """Brand tier x seller reputation (hidden) dominates quality, so the
        per-brand mean quality must vary — the signal embeddings learn."""
        world = tiny_tmall_world
        brands = world.items["item_brand"]
        means = np.array(
            [world.item_quality[brands == b].mean()
             for b in np.unique(brands) if (brands == b).sum() >= 3]
        )
        assert means.std() > 0.2

    def test_labels_follow_click_probabilities(self, tiny_tmall_world):
        world = tiny_tmall_world
        probabilities = world.click_probability(
            world.interaction_user_indices,
            world.interaction_item_indices,
            world.item_latents,
            world.item_quality,
        )
        labels = world.interactions.label("ctr")
        # Binned calibration: higher predicted probability -> higher CTR.
        order = np.argsort(probabilities)
        n = len(order) // 3
        low = labels[order[:n]].mean()
        high = labels[order[-n:]].mean()
        assert high > low + 0.2

    def test_interaction_features_match_entity_tables(self, tiny_tmall_world):
        world = tiny_tmall_world
        row = 17
        user = world.interaction_user_indices[row]
        item = world.interaction_item_indices[row]
        assert world.interactions.features["user_id"][row] == user
        assert (
            world.interactions.features["item_brand"][row]
            == world.items["item_brand"][item]
        )


class TestActiveUserGroup:
    def test_size(self, tiny_tmall_world):
        group = tiny_tmall_world.active_user_group(0.1)
        assert len(group) == round(tiny_tmall_world.config.n_users * 0.1)

    def test_selects_most_active(self, tiny_tmall_world):
        world = tiny_tmall_world
        group = world.active_user_group(0.1)
        threshold = np.sort(world.user_activity)[::-1][len(group) - 1]
        chosen_activity = world.user_activity[group["user_id"]]
        assert chosen_activity.min() >= threshold

    def test_invalid_fraction_rejected(self, tiny_tmall_world):
        with pytest.raises(ValueError):
            tiny_tmall_world.active_user_group(0.0)
