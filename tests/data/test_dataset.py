"""FeatureTable, Batch and InteractionDataset tests."""

import numpy as np
import pytest

from repro.data import (
    GROUP_ITEM_PROFILE,
    GROUP_ITEM_STAT,
    GROUP_USER,
    CategoricalFeature,
    FeatureSchema,
    FeatureTable,
    InteractionDataset,
    NumericFeature,
    train_test_split,
    zero_statistics,
)
from repro.data.splits import split_indices


def _schema():
    return FeatureSchema(
        categorical=[
            CategoricalFeature("uid", 10, 4, GROUP_USER),
            CategoricalFeature("cat", 5, 2, GROUP_ITEM_PROFILE),
        ],
        numeric=[
            NumericFeature("age", GROUP_USER),
            NumericFeature("pv", GROUP_ITEM_STAT),
        ],
    )


def _dataset(n=20, rng=None):
    rng = rng or np.random.default_rng(0)
    features = {
        "uid": rng.integers(0, 10, size=n),
        "cat": rng.integers(0, 5, size=n),
        "age": rng.normal(size=n),
        "pv": rng.normal(size=n),
    }
    labels = {"ctr": (rng.random(n) < 0.4).astype(float)}
    return InteractionDataset(_schema(), features, labels)


class TestFeatureTable:
    def test_length_consistency_enforced(self):
        with pytest.raises(ValueError):
            FeatureTable({"a": np.zeros(3), "b": np.zeros(4)})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FeatureTable({})

    def test_getitem_unknown_column(self):
        table = FeatureTable({"a": np.zeros(3)})
        with pytest.raises(KeyError):
            table["b"]

    def test_contains(self):
        table = FeatureTable({"a": np.zeros(3)})
        assert "a" in table and "b" not in table

    def test_subset(self):
        table = FeatureTable({"a": np.arange(5)})
        sub = table.subset(np.array([0, 2]))
        np.testing.assert_array_equal(sub["a"], [0, 2])

    def test_to_matrix_casts_to_float(self):
        table = FeatureTable({"a": np.arange(3), "b": np.ones(3)})
        matrix = table.to_matrix(["a", "b"])
        assert matrix.dtype == np.float64
        assert matrix.shape == (3, 2)

    def test_to_matrix_empty_names_rejected(self):
        with pytest.raises(ValueError):
            FeatureTable({"a": np.zeros(2)}).to_matrix([])

    def test_select(self):
        table = FeatureTable({"a": np.arange(3), "b": np.ones(3)})
        assert set(table.select(["a"])) == {"a"}


class TestInteractionDataset:
    def test_missing_schema_columns_rejected(self):
        with pytest.raises(ValueError):
            InteractionDataset(
                _schema(), {"uid": np.zeros(3, dtype=int)}, {"ctr": np.zeros(3)}
            )

    def test_label_shape_enforced(self):
        features = {
            "uid": np.zeros(3, dtype=int),
            "cat": np.zeros(3, dtype=int),
            "age": np.zeros(3),
            "pv": np.zeros(3),
        }
        with pytest.raises(ValueError):
            InteractionDataset(_schema(), features, {"ctr": np.zeros(4)})

    def test_empty_labels_rejected(self):
        features = {
            "uid": np.zeros(3, dtype=int),
            "cat": np.zeros(3, dtype=int),
            "age": np.zeros(3),
            "pv": np.zeros(3),
        }
        with pytest.raises(ValueError):
            InteractionDataset(_schema(), features, {})

    def test_unknown_label_rejected(self):
        dataset = _dataset()
        with pytest.raises(KeyError):
            dataset.label("gmv")

    def test_subset_preserves_alignment(self):
        dataset = _dataset()
        sub = dataset.subset(np.array([3, 7]))
        assert len(sub) == 2
        np.testing.assert_array_equal(sub.label("ctr"), dataset.label("ctr")[[3, 7]])

    def test_feature_matrix_column_order(self):
        dataset = _dataset()
        matrix = dataset.feature_matrix([GROUP_USER])
        np.testing.assert_allclose(matrix[:, 0], dataset.features["uid"])
        np.testing.assert_allclose(matrix[:, 1], dataset.features["age"])


class TestBatching:
    def test_batches_cover_all_rows(self):
        dataset = _dataset(n=23)
        sizes = [b.size for b in dataset.iter_batches(5)]
        assert sum(sizes) == 23
        assert sizes[-1] == 3

    def test_drop_last(self):
        dataset = _dataset(n=23)
        sizes = [b.size for b in dataset.iter_batches(5, drop_last=True)]
        assert sizes == [5, 5, 5, 5]

    def test_shuffle_changes_order(self):
        dataset = _dataset(n=50)
        first = next(iter(dataset.iter_batches(50, rng=np.random.default_rng(1))))
        assert not np.array_equal(first.features["uid"], dataset.features["uid"])

    def test_no_rng_preserves_order(self):
        dataset = _dataset(n=10)
        batch = next(iter(dataset.iter_batches(10)))
        np.testing.assert_array_equal(batch.features["uid"], dataset.features["uid"])

    def test_labels_stay_aligned_under_shuffle(self):
        dataset = _dataset(n=40)
        # Tag each row: label equals uid parity so alignment is checkable.
        dataset.labels["ctr"] = (dataset.features["uid"] % 2).astype(float)
        for batch in dataset.iter_batches(7, rng=np.random.default_rng(2)):
            np.testing.assert_allclose(
                batch.label("ctr"), batch.features["uid"] % 2
            )

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError):
            list(_dataset().iter_batches(0))

    def test_batch_unknown_label_rejected(self):
        batch = next(iter(_dataset().iter_batches(4)))
        with pytest.raises(KeyError):
            batch.label("vppv")

    def test_shuffled_epoch_matches_per_batch_gather_reference(self):
        """The epoch-level gather must reproduce the legacy per-batch
        gather exactly, including the RNG stream (one shuffle per epoch)."""
        dataset = _dataset(n=23)
        batches = list(dataset.iter_batches(5, rng=np.random.default_rng(9)))
        order = np.arange(23)
        np.random.default_rng(9).shuffle(order)
        for position, batch in enumerate(batches):
            index = order[position * 5 : (position + 1) * 5]
            for name, column in dataset.features.items():
                np.testing.assert_array_equal(batch.features[name], column[index])
            np.testing.assert_array_equal(batch.label("ctr"),
                                          dataset.label("ctr")[index])

    def test_unshuffled_batches_are_views(self):
        dataset = _dataset(n=12)
        batch = next(iter(dataset.iter_batches(4)))
        assert batch.features["uid"].base is dataset.features["uid"]

    def test_shuffled_drop_last(self):
        dataset = _dataset(n=23)
        sizes = [
            b.size
            for b in dataset.iter_batches(
                5, rng=np.random.default_rng(0), drop_last=True
            )
        ]
        assert sizes == [5, 5, 5, 5]


class TestSplits:
    def test_split_proportions(self):
        train_idx, test_idx = split_indices(100, 0.2, np.random.default_rng(0))
        assert len(test_idx) == 20 and len(train_idx) == 80

    def test_split_disjoint_and_complete(self):
        train_idx, test_idx = split_indices(50, 0.3, np.random.default_rng(0))
        combined = np.sort(np.concatenate([train_idx, test_idx]))
        np.testing.assert_array_equal(combined, np.arange(50))

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            split_indices(10, 0.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            split_indices(10, 1.0, np.random.default_rng(0))

    def test_too_few_rows_rejected(self):
        with pytest.raises(ValueError):
            split_indices(1, 0.5, np.random.default_rng(0))

    def test_dataset_split(self):
        dataset = _dataset(n=30)
        train, test = train_test_split(dataset, 0.2, np.random.default_rng(0))
        assert len(train) == 24 and len(test) == 6

    def test_split_deterministic_under_seed(self):
        dataset = _dataset(n=30)
        a, _ = train_test_split(dataset, 0.2, np.random.default_rng(9))
        b, _ = train_test_split(dataset, 0.2, np.random.default_rng(9))
        np.testing.assert_array_equal(a.features["uid"], b.features["uid"])


class TestZeroStatistics:
    def test_stats_zeroed_profiles_kept(self):
        dataset = _dataset()
        cold = zero_statistics(dataset.schema, dataset.features)
        np.testing.assert_allclose(cold["pv"], 0.0)
        np.testing.assert_array_equal(cold["uid"], dataset.features["uid"])

    def test_original_not_mutated(self):
        dataset = _dataset()
        original = dataset.features["pv"].copy()
        zero_statistics(dataset.schema, dataset.features)
        np.testing.assert_array_equal(dataset.features["pv"], original)
