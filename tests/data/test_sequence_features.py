"""Sequence (multi-valued categorical) feature tests."""

import numpy as np
import pytest

from repro.core import Tower, TowerConfig
from repro.data import (
    GROUP_USER,
    CategoricalFeature,
    FeatureSchema,
    NumericFeature,
    SequenceFeature,
)


class TestSequenceFeatureSpec:
    def test_mask_name_convention(self):
        feature = SequenceFeature("prefs", 10, 4, 3, GROUP_USER)
        assert feature.mask_name == "prefs__mask"

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            SequenceFeature("x", 0, 4, 3, GROUP_USER)
        with pytest.raises(ValueError):
            SequenceFeature("x", 10, 0, 3, GROUP_USER)
        with pytest.raises(ValueError):
            SequenceFeature("x", 10, 4, 0, GROUP_USER)
        with pytest.raises(ValueError):
            SequenceFeature("x", 10, 4, 3, "nowhere")


class TestSchemaIntegration:
    def _schema(self):
        return FeatureSchema(
            categorical=[CategoricalFeature("uid", 10, 4, GROUP_USER)],
            numeric=[NumericFeature("age", GROUP_USER)],
            sequence=[SequenceFeature("prefs", 6, 5, 3, GROUP_USER)],
        )

    def test_input_width_includes_pooled_dim(self):
        assert self._schema().input_width(GROUP_USER) == 4 + 5 + 1

    def test_feature_names_exclude_sequences(self):
        assert self._schema().feature_names(GROUP_USER) == ["uid", "age"]

    def test_all_column_names_include_mask(self):
        names = self._schema().all_column_names(GROUP_USER)
        assert "prefs" in names and "prefs__mask" in names

    def test_duplicate_names_across_kinds_rejected(self):
        with pytest.raises(ValueError):
            FeatureSchema(
                categorical=[CategoricalFeature("prefs", 10, 4, GROUP_USER)],
                numeric=[],
                sequence=[SequenceFeature("prefs", 6, 5, 3, GROUP_USER)],
            )


class TestTowerWithSequences:
    def _inputs(self, n=7):
        rng = np.random.default_rng(0)
        return {
            "uid": rng.integers(0, 10, size=n),
            "age": rng.normal(size=n),
            "prefs": rng.integers(0, 6, size=(n, 3)),
            "prefs__mask": (rng.random((n, 3)) < 0.7).astype(float),
        }

    def _schema(self):
        return FeatureSchema(
            categorical=[CategoricalFeature("uid", 10, 4, GROUP_USER)],
            numeric=[NumericFeature("age", GROUP_USER)],
            sequence=[SequenceFeature("prefs", 6, 5, 3, GROUP_USER)],
        )

    def test_forward_shape(self):
        tower = Tower(
            self._schema(), (GROUP_USER,),
            TowerConfig(vector_dim=8, deep_dims=(16,), head_dims=(8,)),
            rng=np.random.default_rng(1),
        )
        out = tower(self._inputs())
        assert out.shape == (7, 8)

    def test_missing_mask_rejected(self):
        tower = Tower(
            self._schema(), (GROUP_USER,),
            TowerConfig(vector_dim=8, deep_dims=(16,), head_dims=(8,)),
            rng=np.random.default_rng(1),
        )
        inputs = self._inputs()
        del inputs["prefs__mask"]
        with pytest.raises(KeyError):
            tower(inputs)

    def test_masked_entries_have_no_influence(self):
        tower = Tower(
            self._schema(), (GROUP_USER,),
            TowerConfig(vector_dim=8, deep_dims=(16,), head_dims=(8,)),
            rng=np.random.default_rng(1),
        )
        inputs = self._inputs()
        inputs["prefs__mask"] = np.zeros_like(inputs["prefs__mask"])
        base = tower(inputs).data
        inputs_changed = dict(inputs)
        inputs_changed["prefs"] = (inputs["prefs"] + 1) % 6
        np.testing.assert_allclose(tower(inputs_changed).data, base)

    def test_gradients_reach_bag_embeddings(self):
        tower = Tower(
            self._schema(), (GROUP_USER,),
            TowerConfig(vector_dim=8, deep_dims=(16,), head_dims=(8,)),
            rng=np.random.default_rng(1),
        )
        inputs = self._inputs()
        out = tower(inputs)
        out.sum().backward()
        bag = tower._sequence_bags["prefs"]
        assert bag.embedding.weight.grad is not None
        assert np.abs(bag.embedding.weight.grad).sum() > 0


class TestWorldSequenceColumns:
    def test_world_emits_sequence_columns(self, tiny_tmall_world):
        world = tiny_tmall_world
        prefs = world.users["user_pref_categories"]
        mask = world.users["user_pref_categories__mask"]
        assert prefs.shape == (world.config.n_users, world.PREF_LIST_LEN)
        assert mask.shape == prefs.shape
        assert prefs.max() < world.config.n_categories

    def test_mask_lengths_between_two_and_max(self, tiny_tmall_world):
        lengths = tiny_tmall_world.users["user_pref_categories__mask"].sum(axis=1)
        assert lengths.min() >= 2
        assert lengths.max() <= tiny_tmall_world.PREF_LIST_LEN

    def test_first_pref_matches_top_category(self, tiny_tmall_world):
        world = tiny_tmall_world
        np.testing.assert_array_equal(
            world.users["user_pref_categories"][:, 0],
            world.users["user_pref_category"],
        )

    def test_interactions_carry_sequence_columns(self, tiny_tmall_world):
        features = tiny_tmall_world.interactions.features
        assert "user_pref_categories" in features
        assert features["user_pref_categories"].ndim == 2
