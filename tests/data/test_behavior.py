"""Post-release behaviour simulator tests."""

import numpy as np
import pytest

from repro.data.synthetic import BehaviorConfig, simulate_behavior


def _panel(rng, n=200, config=BehaviorConfig()):
    popularity = rng.uniform(0.05, 0.9, size=n)
    prices = rng.lognormal(3.0, 0.5, size=n)
    return simulate_behavior(popularity, prices, rng, config), popularity, prices


class TestSimulation:
    def test_shapes(self, rng):
        panel, popularity, _ = _panel(rng)
        assert panel.ipv.shape == (200, 30)
        assert panel.first_k_day.shape == (200,)

    def test_counts_nonnegative_integers(self, rng):
        panel, _, _ = _panel(rng)
        assert panel.ipv.min() >= 0
        assert panel.atf.min() >= 0
        assert np.issubdtype(panel.ipv.dtype, np.integer)

    def test_thinning_bounds(self, rng):
        """Favourites and purchases can never exceed page views."""
        panel, _, _ = _panel(rng)
        assert np.all(panel.atf <= panel.ipv)
        assert np.all(panel.purchases <= panel.ipv)

    def test_gmv_is_purchases_times_price(self, rng):
        panel, _, prices = _panel(rng)
        np.testing.assert_allclose(panel.gmv, panel.purchases * prices[:, None])

    def test_popular_items_earn_more(self, rng):
        panel, popularity, _ = _panel(rng, n=500)
        ipv30 = panel.cumulative("ipv", 30)
        corr = np.corrcoef(ipv30, popularity)[0, 1]
        assert corr > 0.5

    def test_novelty_decay(self, rng):
        """Early days have higher expected traffic than late days."""
        panel, _, _ = _panel(rng, n=2000)
        early = panel.ipv[:, :5].mean()
        late = panel.ipv[:, 25:].mean()
        assert early > late

    def test_cumulative_monotone_in_day(self, rng):
        panel, _, _ = _panel(rng)
        assert np.all(
            panel.cumulative("ipv", 14) >= panel.cumulative("ipv", 7)
        )

    def test_first_k_day_consistent_with_purchases(self, rng):
        panel, _, _ = _panel(rng)
        k = BehaviorConfig().first_k_transactions
        for item in range(0, 50):
            day = panel.first_k_day[item]
            if day <= panel.horizon_days:
                assert panel.purchases[item, :day].sum() >= k
                if day > 1:
                    assert panel.purchases[item, : day - 1].sum() < k

    def test_censored_items_marked(self, rng):
        popularity = np.full(20, 1e-4)  # essentially never purchased
        prices = np.ones(20)
        panel = simulate_behavior(popularity, prices, rng)
        assert np.all(panel.first_k_day == panel.horizon_days + 1)

    def test_deterministic_under_seed(self):
        popularity = np.linspace(0.1, 0.9, 30)
        prices = np.ones(30)
        a = simulate_behavior(popularity, prices, np.random.default_rng(5))
        b = simulate_behavior(popularity, prices, np.random.default_rng(5))
        np.testing.assert_array_equal(a.ipv, b.ipv)


class TestValidation:
    def test_popularity_out_of_range_rejected(self, rng):
        with pytest.raises(ValueError):
            simulate_behavior(np.array([1.5]), np.array([1.0]), rng)

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            simulate_behavior(np.array([0.5, 0.5]), np.array([1.0]), rng)

    def test_cumulative_day_out_of_range_rejected(self, rng):
        panel, _, _ = _panel(rng, n=10)
        with pytest.raises(ValueError):
            panel.cumulative("ipv", 31)
        with pytest.raises(ValueError):
            panel.cumulative("ipv", 0)

    def test_cumulative_unknown_metric_rejected(self, rng):
        panel, _, _ = _panel(rng, n=10)
        with pytest.raises(ValueError):
            panel.cumulative("clicks", 7)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            BehaviorConfig(horizon_days=0)
        with pytest.raises(ValueError):
            BehaviorConfig(atf_rate=1.5)
