"""Tests for the shared synthetic-world helpers."""

import numpy as np
import pytest

from repro.data.synthetic import noisy, sigmoid, standardize
from repro.data.synthetic.common import segment_latents


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_symmetry(self, rng):
        x = rng.normal(size=20)
        np.testing.assert_allclose(sigmoid(x) + sigmoid(-x), 1.0, atol=1e-12)

    def test_extreme_stability(self):
        out = sigmoid(np.array([-1e6, 1e6]))
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out, [0.0, 1.0], atol=1e-12)

    def test_monotone(self, rng):
        x = np.sort(rng.normal(size=50))
        assert np.all(np.diff(sigmoid(x)) >= 0)


class TestStandardize:
    def test_zero_mean_unit_std(self, rng):
        out = standardize(rng.normal(5.0, 3.0, size=1000))
        assert out.mean() == pytest.approx(0.0, abs=1e-12)
        assert out.std() == pytest.approx(1.0, abs=1e-12)

    def test_constant_input_centred(self):
        out = standardize(np.full(10, 7.0))
        np.testing.assert_allclose(out, 0.0)

    def test_preserves_ordering(self, rng):
        x = rng.normal(size=30)
        np.testing.assert_array_equal(np.argsort(x), np.argsort(standardize(x)))


class TestNoisy:
    def test_zero_noise_is_copy(self, rng):
        x = rng.normal(size=10)
        out = noisy(x, 0.0, rng)
        np.testing.assert_array_equal(out, x)
        assert out is not x  # defensive copy

    def test_noise_magnitude(self, rng):
        x = np.zeros(20_000)
        out = noisy(x, 0.5, rng)
        assert out.std() == pytest.approx(0.5, rel=0.05)

    def test_negative_noise_rejected(self, rng):
        with pytest.raises(ValueError):
            noisy(np.zeros(3), -0.1, rng)


class TestSegmentLatents:
    def test_shapes(self, rng):
        segments, latents = segment_latents(100, 4, 6, rng)
        assert segments.shape == (100,)
        assert latents.shape == (100, 6)
        assert segments.max() < 4

    def test_within_segment_tighter_than_across(self, rng):
        segments, latents = segment_latents(
            600, 3, 4, rng, segment_spread=3.0, within_spread=0.3
        )
        within = []
        across = []
        centroids = np.array(
            [latents[segments == s].mean(axis=0) for s in range(3)]
        )
        for s in range(3):
            members = latents[segments == s]
            within.append(
                np.linalg.norm(members - centroids[s], axis=1).mean()
            )
        for a in range(3):
            for b in range(a + 1, 3):
                across.append(np.linalg.norm(centroids[a] - centroids[b]))
        assert np.mean(within) < np.mean(across)

    def test_invalid_sizes_rejected(self, rng):
        with pytest.raises(ValueError):
            segment_latents(0, 3, 4, rng)
        with pytest.raises(ValueError):
            segment_latents(10, 0, 4, rng)
