"""Feature schema tests."""

import pytest

from repro.data import (
    GROUP_ITEM_PROFILE,
    GROUP_ITEM_STAT,
    GROUP_USER,
    CategoricalFeature,
    FeatureSchema,
    NumericFeature,
)


def _schema():
    return FeatureSchema(
        categorical=[
            CategoricalFeature("uid", 10, 4, GROUP_USER),
            CategoricalFeature("cat", 5, 2, GROUP_ITEM_PROFILE),
            CategoricalFeature("brand", 8, 3, GROUP_ITEM_PROFILE),
        ],
        numeric=[
            NumericFeature("age", GROUP_USER),
            NumericFeature("price", GROUP_ITEM_PROFILE),
            NumericFeature("pv", GROUP_ITEM_STAT),
        ],
    )


class TestFeatureSpecs:
    def test_invalid_group_rejected(self):
        with pytest.raises(ValueError):
            CategoricalFeature("x", 5, 2, "weird")
        with pytest.raises(ValueError):
            NumericFeature("x", "weird")

    def test_invalid_vocab_rejected(self):
        with pytest.raises(ValueError):
            CategoricalFeature("x", 0, 2, GROUP_USER)

    def test_invalid_dim_rejected(self):
        with pytest.raises(ValueError):
            CategoricalFeature("x", 5, 0, GROUP_USER)

    def test_frozen(self):
        feature = CategoricalFeature("x", 5, 2, GROUP_USER)
        with pytest.raises(Exception):
            feature.vocab_size = 10


class TestFeatureSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            FeatureSchema(
                [CategoricalFeature("x", 5, 2, GROUP_USER)],
                [NumericFeature("x", GROUP_USER)],
            )

    def test_group_views(self):
        schema = _schema()
        assert [f.name for f in schema.categorical_in(GROUP_USER)] == ["uid"]
        assert [f.name for f in schema.categorical_in(GROUP_ITEM_PROFILE)] == [
            "cat",
            "brand",
        ]
        assert schema.numeric_names(GROUP_ITEM_STAT) == ["pv"]

    def test_multi_group_view_preserves_order(self):
        schema = _schema()
        names = schema.feature_names(GROUP_ITEM_PROFILE, GROUP_ITEM_STAT)
        assert names == ["cat", "brand", "price", "pv"]

    def test_vocab_and_dims(self):
        schema = _schema()
        assert schema.vocab_sizes(GROUP_ITEM_PROFILE) == {"cat": 5, "brand": 8}
        assert schema.embedding_dims(GROUP_ITEM_PROFILE) == {"cat": 2, "brand": 3}

    def test_input_width(self):
        schema = _schema()
        assert schema.input_width(GROUP_USER) == 4 + 1
        assert schema.input_width(GROUP_ITEM_PROFILE, GROUP_ITEM_STAT) == 2 + 3 + 1 + 1

    def test_unknown_group_rejected(self):
        with pytest.raises(ValueError):
            _schema().vocab_sizes("nope")

    def test_repr(self):
        assert "categorical=3" in repr(_schema())
