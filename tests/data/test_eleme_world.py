"""Synthetic Ele.me world: structural invariants for Tables IV / V."""

import numpy as np
import pytest

from repro.data import GROUP_ITEM_PROFILE, GROUP_ITEM_STAT, GROUP_USER
from repro.data.synthetic import ElemeConfig, ElemeWorld, generate_eleme_world


class TestGeneration:
    def test_entity_counts(self, tiny_eleme_world):
        world = tiny_eleme_world
        assert len(world.restaurants) == world.config.n_restaurants
        assert len(world.new_restaurants) == world.config.n_new_restaurants
        assert len(world.user_groups) == world.config.n_zones
        expected = world.config.n_restaurants * world.config.samples_per_restaurant
        assert len(world.samples) == expected

    def test_two_label_columns(self, tiny_eleme_world):
        labels = tiny_eleme_world.samples.labels
        assert set(labels) == {"vppv", "gmv"}

    def test_deterministic_under_seed(self):
        config = ElemeConfig(
            n_restaurants=80, n_new_restaurants=30, samples_per_restaurant=3, seed=9
        )
        a = ElemeWorld(config)
        b = ElemeWorld(config)
        np.testing.assert_allclose(a.samples.label("gmv"), b.samples.label("gmv"))

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            ElemeConfig(n_zones=0)


class TestStructuralProperties:
    def test_vppv_near_paper_scale(self, tiny_eleme_world):
        """The paper reports VpPV around 0.26."""
        vppv = tiny_eleme_world.samples.label("vppv")
        assert 0.1 < vppv.mean() < 0.45
        assert vppv.min() >= 0.0

    def test_gmv_label_is_log_scale(self, tiny_eleme_world):
        gmv = tiny_eleme_world.samples.label("gmv")
        assert 3.0 < gmv.mean() < 7.0

    def test_new_restaurants_lack_statistics(self, tiny_eleme_world):
        world = tiny_eleme_world
        for name in world.schema.numeric_names(GROUP_ITEM_STAT):
            np.testing.assert_allclose(world.new_restaurants[name], 0.0)

    def test_statistics_informative(self, tiny_eleme_world):
        world = tiny_eleme_world
        corr = np.corrcoef(
            world.restaurants["stat_overall_vppv"], world.restaurant_attractiveness
        )[0, 1]
        assert corr > 0.4

    def test_labels_track_attractiveness(self, tiny_eleme_world):
        """Restaurants' mean VpPV must increase with attractiveness."""
        world = tiny_eleme_world
        rng = np.random.default_rng(0)
        att = world.new_restaurant_attractiveness
        vppv, gmv = world.realized_outcomes(np.arange(len(att)), rng)
        assert np.corrcoef(vppv, att)[0, 1] > 0.5
        assert np.corrcoef(gmv, att)[0, 1] > 0.3

    def test_realized_gmv_near_paper_scale(self, tiny_eleme_world):
        """The paper reports per-restaurant GMV around 190-220."""
        world = tiny_eleme_world
        _, gmv = world.realized_outcomes(
            np.arange(len(world.new_restaurants)), np.random.default_rng(0)
        )
        assert 50 < gmv.mean() < 800

    def test_zone_ids_within_vocab(self, tiny_eleme_world):
        world = tiny_eleme_world
        assert world.new_restaurant_zone.max() < world.config.n_zones

    def test_own_zone_labels_higher_than_remote(self, tiny_eleme_world):
        """Delivery radius: a restaurant scores higher with its own zone."""
        world = tiny_eleme_world
        rng = np.random.default_rng(1)
        att = world.restaurant_attractiveness[:50]
        zone = np.zeros(50, dtype=int)
        own_vppv, _ = world.labels_for(att, zone, zone, rng)
        remote_vppv, _ = world.labels_for(att, zone, zone + 1, rng)
        assert own_vppv.mean() > remote_vppv.mean()
