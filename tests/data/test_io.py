"""Dataset persistence tests."""

import numpy as np
import pytest

from repro.data import (
    load_feature_table,
    load_interactions,
    save_feature_table,
    save_interactions,
)


class TestFeatureTableIO:
    def test_roundtrip(self, tiny_tmall_world, tmp_path):
        path = tmp_path / "items.npz"
        save_feature_table(tiny_tmall_world.items, path)
        loaded = load_feature_table(path)
        assert set(loaded.columns) == set(tiny_tmall_world.items.columns)
        np.testing.assert_array_equal(
            loaded["item_brand"], tiny_tmall_world.items["item_brand"]
        )

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_feature_table(tmp_path / "nope.npz")

    def test_creates_parent_dirs(self, tiny_tmall_world, tmp_path):
        path = tmp_path / "deep" / "dir" / "items.npz"
        save_feature_table(tiny_tmall_world.users, path)
        assert path.exists()


class TestInteractionsIO:
    def test_roundtrip(self, tiny_tmall_world, tmp_path):
        path = tmp_path / "interactions.npz"
        dataset = tiny_tmall_world.interactions
        save_interactions(dataset, path)
        loaded = load_interactions(path, tiny_tmall_world.schema)
        assert len(loaded) == len(dataset)
        np.testing.assert_array_equal(loaded.label("ctr"), dataset.label("ctr"))
        np.testing.assert_array_equal(
            loaded.features["user_id"], dataset.features["user_id"]
        )

    def test_multi_label_roundtrip(self, tiny_eleme_world, tmp_path):
        path = tmp_path / "samples.npz"
        save_interactions(tiny_eleme_world.samples, path)
        loaded = load_interactions(path, tiny_eleme_world.schema)
        assert set(loaded.labels) == {"vppv", "gmv"}

    def test_schema_validated_on_load(self, tiny_tmall_world, tiny_eleme_world, tmp_path):
        path = tmp_path / "interactions.npz"
        save_interactions(tiny_tmall_world.interactions, path)
        with pytest.raises(ValueError):
            load_interactions(path, tiny_eleme_world.schema)

    def test_missing_file_rejected(self, tmp_path, tiny_tmall_world):
        with pytest.raises(FileNotFoundError):
            load_interactions(tmp_path / "nope.npz", tiny_tmall_world.schema)
