"""Vocabulary, hashing and scaling encoder tests."""

import numpy as np
import pytest

from repro.data import HashEncoder, StandardScaler, VocabEncoder


class TestVocabEncoder:
    def test_ids_contiguous_from_one(self):
        encoder = VocabEncoder().fit(["a", "b", "a", "c"])
        np.testing.assert_array_equal(
            encoder.transform(["a", "b", "c"]), [1, 2, 3]
        )

    def test_oov_maps_to_zero(self):
        encoder = VocabEncoder().fit(["a"])
        assert encoder.transform(["unknown"])[0] == VocabEncoder.OOV_ID

    def test_vocab_size_includes_oov(self):
        encoder = VocabEncoder().fit(["a", "b"])
        assert encoder.vocab_size == 3

    def test_fit_transform(self):
        encoder = VocabEncoder()
        np.testing.assert_array_equal(encoder.fit_transform(["x", "y", "x"]), [1, 2, 1])

    def test_incremental_fit(self):
        encoder = VocabEncoder().fit(["a"])
        encoder.fit(["b"])
        assert encoder.transform(["b"])[0] == 2

    def test_inverse(self):
        encoder = VocabEncoder().fit(["a", "b"])
        assert encoder.inverse(np.array([1, 0])) == ["a", None]


class TestHashEncoder:
    def test_range(self):
        encoder = HashEncoder(num_buckets=16)
        codes = encoder.transform([f"item{i}" for i in range(200)])
        assert codes.min() >= 0 and codes.max() < 16

    def test_deterministic(self):
        encoder = HashEncoder(num_buckets=64, salt=1)
        a = encoder.transform(["x", "y"])
        b = encoder.transform(["x", "y"])
        np.testing.assert_array_equal(a, b)

    def test_salt_changes_assignment(self):
        values = [f"item{i}" for i in range(100)]
        a = HashEncoder(64, salt=1).transform(values)
        b = HashEncoder(64, salt=2).transform(values)
        assert not np.array_equal(a, b)

    def test_invalid_buckets_rejected(self):
        with pytest.raises(ValueError):
            HashEncoder(0)


class TestStandardScaler:
    def test_zero_mean_unit_variance(self, rng):
        scaler = StandardScaler()
        out = scaler.fit_transform(rng.normal(3.0, 2.0, size=(500, 2)))
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-10)

    def test_constant_column_not_scaled(self):
        out = StandardScaler().fit_transform(np.ones((10, 1)))
        np.testing.assert_allclose(out, 0.0)

    def test_transform_before_fit_rejected(self, rng):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(rng.normal(size=(5, 2)))

    def test_column_count_mismatch_rejected(self, rng):
        scaler = StandardScaler().fit(rng.normal(size=(5, 2)))
        with pytest.raises(ValueError):
            scaler.transform(rng.normal(size=(5, 3)))

    def test_uses_train_statistics(self, rng):
        train = rng.normal(0.0, 1.0, size=(100, 1))
        scaler = StandardScaler().fit(train)
        shifted = scaler.transform(train + 10.0)
        assert shifted.mean() == pytest.approx(10.0 / train.std(), rel=1e-6)
