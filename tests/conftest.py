"""Shared fixtures for the ATNN reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TowerConfig
from repro.data.synthetic import (
    ElemeConfig,
    TmallConfig,
    generate_eleme_world,
    generate_tmall_world,
)


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_tmall_world():
    """A very small Tmall world shared (read-only) across tests."""
    return generate_tmall_world(
        TmallConfig(
            n_users=300,
            n_items=400,
            n_new_items=150,
            n_interactions=8_000,
            n_categories=8,
            n_subcategories=16,
            n_brands=40,
            n_sellers=60,
            seed=3,
        )
    )


@pytest.fixture(scope="session")
def tiny_eleme_world():
    """A very small Ele.me world shared (read-only) across tests."""
    return generate_eleme_world(
        ElemeConfig(
            n_restaurants=300,
            n_new_restaurants=120,
            n_zones=10,
            n_brands=30,
            samples_per_restaurant=5,
            seed=5,
        )
    )


@pytest.fixture(scope="session")
def tiny_tower_config() -> TowerConfig:
    """A tower small enough for per-test training."""
    return TowerConfig(
        vector_dim=8, deep_dims=(16, 8), head_dims=(16,), num_cross_layers=1
    )
