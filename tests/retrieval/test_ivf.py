"""IVF index tests: exactness envelope, recall floor, inserts, maintenance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry, use_registry
from repro.retrieval import BruteForceIndex, IVFIndex, recall_at_k


def _clustered(rng, n, dim, n_clusters=10, spread=0.15):
    """Gaussian-mixture vectors — the shape two-tower embeddings take."""
    centers = rng.normal(size=(n_clusters, dim))
    assignment = rng.integers(0, n_clusters, size=n)
    return centers[assignment] + spread * rng.normal(size=(n, dim))


class TestExactnessEnvelope:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), nlist=st.integers(1, 12))
    def test_full_probe_matches_brute_force(self, seed, nlist):
        """Property: nprobe == nlist recovers the exact top-k set."""
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(120, 6))
        queries = rng.normal(size=(4, 6))

        brute = BruteForceIndex(6)
        brute.add(data)
        ivf = IVFIndex(6, nlist=nlist, nprobe=nlist, train_floor=2, seed=seed)
        ivf.rebuild(data)

        bid, _ = brute.search(queries, 9)
        iid, _ = ivf.search(queries, 9)
        for row in range(queries.shape[0]):
            assert set(bid[row].tolist()) == set(iid[row].tolist())

    def test_untrained_index_is_exact(self, rng):
        data = rng.normal(size=(60, 5))
        ivf = IVFIndex(5, nlist=8, nprobe=1, train_floor=1_000)
        ivf.add(data)
        assert not ivf.trained
        brute = BruteForceIndex(5)
        brute.add(data)
        queries = rng.normal(size=(3, 5))
        np.testing.assert_array_equal(
            ivf.search(queries, 10)[0], brute.search(queries, 10)[0]
        )

    def test_single_partition_nlist_1(self, rng):
        data = rng.normal(size=(50, 5))
        ivf = IVFIndex(5, nlist=1, nprobe=1, train_floor=2)
        ivf.rebuild(data)
        brute = BruteForceIndex(5)
        brute.add(data)
        q = rng.normal(size=5)
        assert set(ivf.search(q, 8)[0]) == set(brute.search(q, 8)[0])


class TestRecallFloor:
    def test_recall_at_fixed_nprobe(self, rng):
        """On clustered data, nprobe = nlist/4 keeps recall@10 high."""
        data = _clustered(rng, 4_000, 16)
        queries = _clustered(rng, 50, 16)
        brute = BruteForceIndex(16)
        brute.add(data)
        ivf = IVFIndex(16, nlist=32, nprobe=8, seed=0)
        ivf.rebuild(data)
        assert ivf.trained

        reference, _ = brute.search(queries, 10)
        candidates, _ = ivf.search(queries, 10)
        recall = recall_at_k(reference, candidates)
        assert recall >= 0.8, f"recall@10 collapsed to {recall:.3f}"

    def test_more_probes_never_lower_measured_recall_much(self, rng):
        data = _clustered(rng, 2_000, 8)
        queries = _clustered(rng, 30, 8)
        brute = BruteForceIndex(8)
        brute.add(data)
        ivf = IVFIndex(8, nlist=16, nprobe=2, seed=0)
        ivf.rebuild(data)
        reference, _ = brute.search(queries, 10)
        low = recall_at_k(reference, ivf.search(queries, 10)[0])
        ivf.nprobe = 16
        high = recall_at_k(reference, ivf.search(queries, 10)[0])
        assert high == 1.0 and high >= low


class TestIncrementalInserts:
    def test_inserted_vector_retrievable_before_any_rebuild(self, rng):
        """The cold-start contract: insert → immediately searchable.

        The inserted vectors are mutually orthogonal spikes with norms far
        above the corpus, so each is provably its own top-1 by inner
        product (a vector is NOT its own MIPS neighbour in general).
        """
        data = _clustered(rng, 1_000, 8)
        ivf = IVFIndex(8, nlist=8, nprobe=8, seed=0)
        ivf.rebuild(data)
        builds_before = ivf.repartitions

        fresh = 50.0 * np.eye(8, dtype=np.float64)[:5]
        ids = ivf.add(fresh)
        np.testing.assert_array_equal(ids, np.arange(1_000, 1_005))
        for row in range(5):
            found, _ = ivf.search(fresh[row], 1)
            assert found[0] == ids[row]
        assert ivf.repartitions == builds_before  # no rebuild happened

    def test_inserts_preserve_existing_ids(self, rng):
        data = rng.normal(size=(200, 4))
        spike = np.zeros(4)
        spike[0] = 40.0
        data[17] = spike  # dominant along e0: top-1 for query e0
        ivf = IVFIndex(4, nlist=4, nprobe=4, seed=1)
        ivf.rebuild(data)
        probe = np.eye(4)[0]
        before, _ = ivf.search(probe, 1)
        ivf.add(rng.normal(size=(50, 4)))
        after, _ = ivf.search(probe, 1)
        assert before[0] == after[0] == 17

    def test_add_crossing_train_floor_trains_quantizer(self, rng):
        ivf = IVFIndex(4, nlist=4, nprobe=4, train_floor=64, seed=0)
        ivf.add(rng.normal(size=(32, 4)))
        assert not ivf.trained
        ivf.add(rng.normal(size=(40, 4)))
        assert ivf.trained
        assert ivf.partition_sizes.sum() == 72

    def test_update_migrates_partitions(self, rng):
        data = _clustered(rng, 500, 6)
        ivf = IVFIndex(6, nlist=8, nprobe=1, seed=0)
        ivf.rebuild(data)
        # Move row 3 into a distant region; with nprobe=1 it is only
        # findable if it physically migrated to the right partition.
        target = rng.normal(size=6) + 12.0
        ivf.update(np.array([3]), target[None, :])
        found, _ = ivf.search(target, 1)
        assert found[0] == 3
        assert ivf.partition_sizes.sum() == 500  # nothing lost

    def test_update_in_place_without_migration(self, rng):
        """A tiny nudge keeps the same nearest centroid: no migration,
        the partition row is overwritten where it sits."""
        data = rng.normal(size=(100, 4))
        ivf = IVFIndex(4, nlist=2, nprobe=2, seed=0)
        ivf.rebuild(data)
        part = int(ivf._id_part[5])
        pos = int(ivf._id_pos[5])
        nudged = (data[5] + 1e-6).astype(ivf.dtype)
        ivf.update(np.array([5]), nudged[None, :])
        assert int(ivf._id_part[5]) == part and int(ivf._id_pos[5]) == pos
        np.testing.assert_allclose(
            ivf._part_vectors[part][pos], nudged, rtol=0, atol=1e-12
        )


class TestRepartition:
    def test_imbalance_triggers_repartition(self, rng):
        ivf = IVFIndex(
            2, nlist=8, nprobe=8, imbalance_factor=2.0, train_floor=16, seed=0
        )
        ivf.rebuild(rng.normal(size=(200, 2)))
        assert ivf.trained and ivf.repartitions == 0
        corner = 0.01 * rng.normal(size=(400, 2)) + 50.0
        registry = MetricsRegistry()
        with use_registry(registry):
            ivf.add(corner)
        assert ivf.repartitions >= 1
        assert registry.counter("index.repartitions").value >= 1
        # All 600 vectors still present and exactly retrievable.
        assert ivf.partition_sizes.sum() == 600
        q = rng.normal(size=(3, 2))
        brute = BruteForceIndex(2)
        ids, vectors = ivf._gather_all()
        brute.add(vectors[np.argsort(ids)])
        for row in range(3):
            assert set(ivf.search(q[row], 15)[0]) == set(
                brute.search(q[row], 15)[0]
            )

    def test_disabled_maintenance_never_repartitions(self, rng):
        ivf = IVFIndex(
            2, nlist=8, nprobe=8, imbalance_factor=None, train_floor=16, seed=0
        )
        ivf.rebuild(rng.normal(size=(200, 2)))
        ivf.add(0.01 * rng.normal(size=(400, 2)) + 50.0)
        assert ivf.repartitions == 0
        assert ivf.imbalance() > 2.0

    def test_manual_repartition_preserves_ids(self, rng):
        data = rng.normal(size=(300, 4))
        spike = np.zeros(4)
        spike[2] = 30.0
        data[42] = spike
        ivf = IVFIndex(4, nlist=6, nprobe=6, seed=0)
        ivf.rebuild(data)
        probe = np.eye(4)[2]
        before, _ = ivf.search(probe, 1)
        ivf.repartition()
        after, _ = ivf.search(probe, 1)
        assert before[0] == after[0] == 42
        assert ivf.repartitions == 1


class TestObservability:
    def test_search_and_insert_counters(self, rng):
        data = _clustered(rng, 1_000, 8)
        registry = MetricsRegistry()
        ivf = IVFIndex(8, nlist=10, nprobe=3, seed=0)
        ivf.rebuild(data)
        with use_registry(registry):
            ivf.search(rng.normal(size=(4, 8)), 5)
            ivf.add(rng.normal(size=(7, 8)))
        assert registry.counter("index.searches").value == 4
        # Each query probes >= nprobe partitions (more only if it must
        # widen to find k candidates).
        assert registry.counter("index.probe_partitions").value >= 4 * 3
        assert registry.counter("index.inserts").value == 7

    def test_probe_widening_guarantees_k_results(self, rng):
        """A tiny probe set over tiny partitions must widen, not truncate."""
        data = rng.normal(size=(64, 4))
        ivf = IVFIndex(4, nlist=16, nprobe=1, train_floor=2, seed=0)
        ivf.rebuild(data)
        ids, _ = ivf.search(rng.normal(size=4), 32)
        assert np.unique(ids).size == 32


class TestValidation:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            IVFIndex(4, nlist=0)
        with pytest.raises(ValueError):
            IVFIndex(4, nprobe=0)
        with pytest.raises(ValueError):
            IVFIndex(4, imbalance_factor=1.0)
        with pytest.raises(ValueError):
            IVFIndex(4, nlist=100, train_sample=50)

    def test_empty_index_rejects_search(self, rng):
        with pytest.raises(ValueError):
            IVFIndex(4).search(rng.normal(size=4), 1)
