"""MIPS index interface + brute-force oracle tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.tensor import default_dtype
from repro.retrieval import BruteForceIndex, IVFIndex, make_index, recall_at_k


def _naive_top_k(data: np.ndarray, query: np.ndarray, k: int) -> np.ndarray:
    """Reference: full argsort by descending inner product."""
    return np.argsort(data @ query)[::-1][:k]


class TestBruteForceParity:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(2, 300),
        dim=st.integers(1, 24),
    )
    def test_search_matches_naive_argsort(self, seed, n, dim):
        """Property: the oracle's top-k set and score order are exact."""
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(n, dim))
        query = rng.normal(size=dim)
        k = int(rng.integers(1, n + 1))

        index = BruteForceIndex(dim)
        index.add(data)
        ids, scores = index.search(query, k)

        reference = _naive_top_k(data, query, k)
        exact = data @ query
        # Score sequences must match exactly (tie order may differ).
        np.testing.assert_allclose(scores, exact[reference])
        np.testing.assert_allclose(exact[ids], exact[reference])
        # Away from ties the id sets agree.
        if np.unique(exact).size == exact.size:
            assert set(ids.tolist()) == set(reference.tolist())

    def test_batch_queries_match_single_queries(self, rng):
        data = rng.normal(size=(100, 8))
        queries = rng.normal(size=(5, 8))
        index = BruteForceIndex(8)
        index.add(data)
        batch_ids, batch_scores = index.search(queries, 7)
        assert batch_ids.shape == (5, 7) and batch_scores.shape == (5, 7)
        for row in range(5):
            one_ids, one_scores = index.search(queries[row], 7)
            np.testing.assert_array_equal(one_ids, batch_ids[row])
            np.testing.assert_allclose(one_scores, batch_scores[row])


class TestIndexContract:
    def test_ids_assigned_densely_across_adds(self, rng):
        index = BruteForceIndex(4)
        first = index.add(rng.normal(size=(3, 4)))
        second = index.add(rng.normal(size=(5, 4)))
        np.testing.assert_array_equal(first, [0, 1, 2])
        np.testing.assert_array_equal(second, [3, 4, 5, 6, 7])
        assert len(index) == 8

    def test_update_overwrites_in_place(self, rng):
        index = BruteForceIndex(4)
        index.add(rng.normal(size=(10, 4)))
        spike = np.full((1, 4), 50.0)
        index.update(np.array([7]), spike)
        ids, _ = index.search(spike[0], 1)
        assert ids[0] == 7

    def test_rebuild_resets_contents(self, rng):
        index = BruteForceIndex(4)
        index.add(rng.normal(size=(10, 4)))
        index.rebuild(rng.normal(size=(3, 4)))
        assert len(index) == 3

    def test_validation_errors(self, rng):
        index = BruteForceIndex(4)
        with pytest.raises(ValueError):
            index.add(rng.normal(size=(3, 5)))  # wrong dim
        index.add(rng.normal(size=(3, 4)))
        with pytest.raises(ValueError):
            index.search(rng.normal(size=4), 0)  # k too small
        with pytest.raises(ValueError):
            index.search(rng.normal(size=4), 4)  # k > ntotal
        with pytest.raises(ValueError):
            index.search(rng.normal(size=5), 1)  # query dim mismatch
        with pytest.raises(IndexError):
            index.update(np.array([3]), rng.normal(size=(1, 4)))
        with pytest.raises(ValueError):
            index.update(np.array([0, 1]), rng.normal(size=(1, 4)))
        with pytest.raises(ValueError):
            BruteForceIndex(0)

    def test_empty_index_rejects_search(self, rng):
        with pytest.raises(ValueError):
            BruteForceIndex(4).search(rng.normal(size=4), 1)

    def test_single_row_index(self, rng):
        index = BruteForceIndex(4)
        index.add(rng.normal(size=(1, 4)))
        ids, scores = index.search(rng.normal(size=4), 1)
        assert ids.shape == (1,) and ids[0] == 0


class TestDtype:
    """The ATN002-class invariant: no silent float64 promotion."""

    def test_storage_honors_default_dtype(self, rng):
        with default_dtype(np.float32):
            index = BruteForceIndex(4)
            index.add(rng.normal(size=(6, 4)))  # float64 input is cast
            assert index.dtype == np.float32
            assert index.vectors.dtype == np.float32
            _, scores = index.search(rng.normal(size=4), 3)
            assert scores.dtype == np.float32

    def test_ivf_storage_honors_default_dtype(self, rng):
        with default_dtype(np.float32):
            index = IVFIndex(4, nlist=2, nprobe=2, train_floor=4)
            index.add(rng.normal(size=(32, 4)))
            assert index.trained
            assert index._centroids.dtype == np.float32
            for part in index._part_vectors:
                assert part.dtype == np.float32
            _, scores = index.search(rng.normal(size=4), 3)
            assert scores.dtype == np.float32

    def test_explicit_dtype_overrides_default(self, rng):
        index = BruteForceIndex(4, dtype=np.float32)
        index.add(rng.normal(size=(6, 4)))
        assert index.vectors.dtype == np.float32


class TestFactory:
    def test_bruteforce_kind(self):
        assert isinstance(make_index("bruteforce", 8), BruteForceIndex)

    def test_ivf_kind_auto_nlist(self):
        index = make_index("ivf", 8, expected_size=10_000)
        assert isinstance(index, IVFIndex)
        assert index.nlist == 100  # ~sqrt(expected_size)

    def test_ivf_kind_explicit_nlist(self):
        assert make_index("ivf", 8, nlist=17).nlist == 17

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_index("annoy", 8)

    def test_nlist_rejected_for_bruteforce(self):
        with pytest.raises(ValueError):
            make_index("bruteforce", 8, nlist=4)


class TestRecallAtK:
    def test_perfect_and_partial_recall(self):
        reference = np.array([[1, 2, 3], [4, 5, 6]])
        assert recall_at_k(reference, reference) == 1.0
        half = np.array([[1, 2, 9], [4, 5, 9]])
        assert recall_at_k(reference, half) == pytest.approx(4 / 6)

    def test_single_query_vectors(self):
        assert recall_at_k(np.array([1, 2]), np.array([2, 3])) == 0.5

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            recall_at_k(np.array([[1, 2]]), np.array([[1, 2, 3]]))


def test_retrieval_package_is_dtype_lint_scoped_and_clean():
    """The new package sits inside ATN002's scope and lints clean."""
    from pathlib import Path

    from repro.analysis.lint import run_lint
    from repro.analysis.lint.rules import Float64LiteralRule

    rule = Float64LiteralRule()
    assert rule.applies_to("src/repro/retrieval/index.py")
    assert rule.applies_to("src/repro/retrieval/ivf.py")

    repo_root = Path(__file__).resolve().parents[2]
    diagnostics = run_lint(
        [str(repo_root / "src" / "repro" / "retrieval")], root=repo_root
    )
    assert diagnostics == [], "\n".join(d.format() for d in diagnostics)
