"""CLI surface tests (no heavy experiments run here)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.experiment == "table1"
        assert args.preset == "default"
        assert args.output is None

    def test_preset_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--preset", "huge"])

    def test_output_path(self, tmp_path):
        args = build_parser().parse_args(["table1", "--output", str(tmp_path)])
        assert args.output == tmp_path


class TestMain:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "complexity" in out

    def test_unknown_experiment_exit_code(self, capsys):
        assert main(["definitely-not-real"]) == 2
        assert "error" in capsys.readouterr().err
