"""CLI glue tests with a stubbed experiment (no training)."""

import json

import pytest

import repro.cli as cli


class _FakeResult:
    def render(self) -> str:
        return "FAKE TABLE"

    def as_dict(self):
        return {"metric": 1.5}


class TestMainWithStub:
    def test_runs_and_prints(self, monkeypatch, capsys):
        monkeypatch.setattr(cli, "run_experiment", lambda name, preset: _FakeResult())
        assert cli.main(["table1", "--preset", "smoke"]) == 0
        assert "FAKE TABLE" in capsys.readouterr().out

    def test_json_output_written(self, monkeypatch, tmp_path, capsys):
        monkeypatch.setattr(cli, "run_experiment", lambda name, preset: _FakeResult())
        assert cli.main(["table1", "--output", str(tmp_path)]) == 0
        payload = json.loads((tmp_path / "table1.json").read_text())
        assert payload == {"metric": 1.5}

    def test_result_without_as_dict_skips_json(self, monkeypatch, tmp_path):
        class _Plain:
            def render(self):
                return "PLAIN"

        monkeypatch.setattr(cli, "run_experiment", lambda name, preset: _Plain())
        assert cli.main(["complexity", "--output", str(tmp_path)]) == 0
        assert not (tmp_path / "complexity.json").exists()

    def test_telemetry_report_written(self, monkeypatch, tmp_path, capsys):
        monkeypatch.setattr(cli, "run_experiment", lambda name, preset: _FakeResult())
        report = tmp_path / "run.jsonl"
        assert cli.main(["table1", "--preset", "smoke", "--telemetry", str(report)]) == 0
        records = [json.loads(line) for line in report.read_text().splitlines()]
        meta = records[0]
        assert meta["type"] == "meta"
        assert meta["label"] == "table1:smoke"
        # Serving/trainer counters are pre-registered in every report.
        counter_names = {r["name"] for r in records if r["type"] == "counter"}
        assert {"engine.refreshes", "trainer.divergence_warning"} <= counter_names
        assert "telemetry report written" in capsys.readouterr().out

    def test_telemetry_written_even_when_experiment_fails(
        self, monkeypatch, tmp_path
    ):
        def boom(name, preset):
            raise ValueError("unknown experiment")

        monkeypatch.setattr(cli, "run_experiment", boom)
        report = tmp_path / "run.jsonl"
        assert cli.main(["nope", "--telemetry", str(report)]) == 2
        assert report.exists()

    def test_no_telemetry_flag_writes_nothing(self, monkeypatch, tmp_path):
        monkeypatch.setattr(cli, "run_experiment", lambda name, preset: _FakeResult())
        assert cli.main(["table1"]) == 0
        assert not list(tmp_path.iterdir())

    def test_log_level_flag_accepted(self, monkeypatch):
        monkeypatch.setattr(cli, "run_experiment", lambda name, preset: _FakeResult())
        assert cli.main(["table1", "--log-level", "debug"]) == 0

    def test_preset_forwarded(self, monkeypatch):
        captured = {}

        def fake_run(name, preset):
            captured["name"] = name
            captured["preset"] = preset
            return _FakeResult()

        monkeypatch.setattr(cli, "run_experiment", fake_run)
        cli.main(["table2", "--preset", "smoke"])
        assert captured == {"name": "table2", "preset": "smoke"}
