"""CLI glue tests with a stubbed experiment (no training)."""

import json

import pytest

import repro.cli as cli


class _FakeResult:
    def render(self) -> str:
        return "FAKE TABLE"

    def as_dict(self):
        return {"metric": 1.5}


class TestMainWithStub:
    def test_runs_and_prints(self, monkeypatch, capsys):
        monkeypatch.setattr(cli, "run_experiment", lambda name, preset: _FakeResult())
        assert cli.main(["table1", "--preset", "smoke"]) == 0
        assert "FAKE TABLE" in capsys.readouterr().out

    def test_json_output_written(self, monkeypatch, tmp_path, capsys):
        monkeypatch.setattr(cli, "run_experiment", lambda name, preset: _FakeResult())
        assert cli.main(["table1", "--output", str(tmp_path)]) == 0
        payload = json.loads((tmp_path / "table1.json").read_text())
        assert payload == {"metric": 1.5}

    def test_result_without_as_dict_skips_json(self, monkeypatch, tmp_path):
        class _Plain:
            def render(self):
                return "PLAIN"

        monkeypatch.setattr(cli, "run_experiment", lambda name, preset: _Plain())
        assert cli.main(["complexity", "--output", str(tmp_path)]) == 0
        assert not (tmp_path / "complexity.json").exists()

    def test_preset_forwarded(self, monkeypatch):
        captured = {}

        def fake_run(name, preset):
            captured["name"] = name
            captured["preset"] = preset
            return _FakeResult()

        monkeypatch.setattr(cli, "run_experiment", fake_run)
        cli.main(["table2", "--preset", "smoke"])
        assert captured == {"name": "table2", "preset": "smoke"}
