"""Tests for the supplementary experiments (serving, curves, extended)."""

import numpy as np
import pytest

from repro.experiments import (
    build_tmall_artifacts,
    run_extended_baselines,
    run_serving_eval,
    run_training_curves,
)


@pytest.fixture(scope="module")
def artifacts():
    return build_tmall_artifacts("smoke")


class TestServingEval:
    @pytest.fixture(scope="class")
    def result(self, artifacts):
        return run_serving_eval(
            "smoke", artifacts=artifacts, event_batches=(0, 5_000)
        )

    def test_stage_count(self, result):
        assert len(result.stages) == 2

    def test_cold_stage_has_no_warm_items(self, result):
        assert result.stages[0].warm_items == 0
        assert result.stages[0].events_total == 0

    def test_events_accumulate(self, result):
        assert result.stages[1].events_total >= 5_000

    def test_quality_improves_with_events(self, result):
        assert result.warm_quality > result.cold_quality

    def test_render(self, result):
        assert "Serving warm-up" in result.render()


class TestTrainingCurves:
    @pytest.fixture(scope="class")
    def curves(self, artifacts):
        return run_training_curves("smoke", world=artifacts.world, epochs=2)

    def test_series_lengths_match(self, curves):
        assert curves.n_epochs == 2
        assert len(curves.auc_encoder) == 2
        assert len(curves.loss_s) == 2

    def test_similarity_loss_decreases(self, curves):
        assert curves.loss_s[-1] < curves.loss_s[0]

    def test_render_has_epoch_rows(self, curves):
        rendered = curves.render()
        assert "Epoch" in rendered and "L_s" in rendered


class TestExtendedBaselines:
    def test_subset_run(self, artifacts):
        result = run_extended_baselines(
            "smoke", world=artifacts.world, models=["LR"], include_atnn=False
        )
        assert [row.model for row in result.rows] == ["LR"]
        assert 0.5 < result.row("LR").auc_complete < 0.9

    def test_unknown_model_rejected(self, artifacts):
        with pytest.raises(ValueError):
            run_extended_baselines(
                "smoke", world=artifacts.world, models=["SVM"], include_atnn=False
            )
