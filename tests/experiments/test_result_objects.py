"""Unit tests of experiment result objects (no training involved)."""

import numpy as np
import pytest

from repro.experiments import (
    AblationResult,
    AblationRow,
    ComplexityResult,
    ComplexityRow,
    RetrievalResult,
    ServingEvalResult,
    ServingStage,
    SweepPoint,
    SweepResult,
    Table1Result,
    Table1Row,
    Table3Result,
    Table4Result,
    Table5Result,
    TrainingCurves,
)


class TestTable1Objects:
    def test_degradation_property(self):
        row = Table1Row("X", auc_profile_only=0.6, auc_complete=0.8)
        assert row.degradation == pytest.approx(-0.25)

    def test_row_lookup_and_missing(self):
        result = Table1Result(rows=[Table1Row("A", 0.6, 0.7)], preset="smoke")
        assert result.row("A").auc_complete == 0.7
        with pytest.raises(KeyError):
            result.row("B")

    def test_custom_title_rendered(self):
        result = Table1Result(
            rows=[Table1Row("A", 0.6, 0.7)], preset="smoke", title="Custom"
        )
        assert result.render().startswith("Custom")

    def test_as_dict(self):
        result = Table1Result(rows=[Table1Row("A", 0.6, 0.8)], preset="smoke")
        data = result.as_dict()
        assert data["A"]["degradation"] == pytest.approx(-0.25)


class TestABResults:
    def test_table3_improvement(self):
        result = Table3Result(
            expert_days=10.0, atnn_days=9.0, n_selected=100, preset="smoke"
        )
        assert result.improvement == pytest.approx(0.1)
        assert "Improvement" in result.render()

    def test_table4_improvements(self):
        result = Table4Result(
            tnn_dcn_vppv_mae=0.08,
            tnn_dcn_gmv_mae=1.0,
            atnn_vppv_mae=0.06,
            atnn_gmv_mae=0.8,
            preset="smoke",
        )
        assert result.vppv_improvement == pytest.approx(0.25)
        assert result.gmv_improvement == pytest.approx(0.2)
        assert result.as_dict()["vppv_improvement"] == pytest.approx(0.25)

    def test_table5_improvements(self):
        result = Table5Result(
            expert_vppv=0.25,
            expert_gmv=200.0,
            atnn_vppv=0.30,
            atnn_gmv=220.0,
            n_selected=50,
            preset="smoke",
        )
        assert result.vppv_improvement == pytest.approx(0.2)
        assert result.gmv_improvement == pytest.approx(0.1)
        assert "ATNN" in result.render()


class TestComplexityObjects:
    def test_speedup(self):
        row = ComplexityRow(
            n_users=100,
            mean_vector_seconds_per_item=1e-6,
            pairwise_seconds_per_item=1e-4,
        )
        assert row.speedup == pytest.approx(100.0)

    def test_speedup_zero_denominator(self):
        row = ComplexityRow(100, 0.0, 1e-4)
        assert row.speedup == float("inf")

    def test_render_contains_agreement(self):
        result = ComplexityResult(
            rows=[ComplexityRow(100, 1e-6, 1e-4)],
            rank_agreement=0.99,
            n_items=10,
            preset="smoke",
        )
        assert "0.9900" in result.render()


class TestAblationObjects:
    def test_best_by_generator_auc(self):
        result = AblationResult(
            name="x",
            rows=[
                AblationRow("a", auc_generator=0.6, auc_encoder=0.7),
                AblationRow("b", auc_generator=0.65, auc_encoder=0.6),
            ],
            preset="smoke",
        )
        assert result.best().setting == "b"
        assert "Ablation: x" in result.render()


class TestSweepObjects:
    def _result(self):
        return SweepResult(
            points=[
                SweepPoint({"lr": 0.01}, auc_generator=0.6, auc_encoder=0.61),
                SweepPoint({"lr": 0.1}, auc_generator=0.7, auc_encoder=0.69),
            ],
            preset="smoke",
        )

    def test_best(self):
        assert self._result().best().settings == {"lr": 0.1}
        assert self._result().best(by="auc_encoder").settings == {"lr": 0.1}

    def test_best_unknown_criterion(self):
        with pytest.raises(ValueError):
            self._result().best(by="loss")

    def test_render_sorted_best_first(self):
        rendered = self._result().render()
        assert rendered.index("lr=0.1") < rendered.index("lr=0.01")


class TestServingAndCurves:
    def test_serving_result_properties(self):
        result = ServingEvalResult(
            stages=[
                ServingStage(0, 0, 0.5),
                ServingStage(1000, 10, 0.7),
            ],
            preset="smoke",
        )
        assert result.cold_quality == 0.5
        assert result.warm_quality == 0.7
        assert "Serving warm-up" in result.render()

    def test_training_curves_render(self):
        curves = TrainingCurves(
            loss_i=[0.6, 0.5],
            loss_g=[0.65, 0.55],
            loss_s=[0.2, 0.1],
            auc_encoder=[0.6, 0.65],
            auc_generator=[0.58, 0.64],
            preset="smoke",
        )
        assert curves.n_epochs == 2
        rendered = curves.render()
        assert "L_s" in rendered and "0.1000" in rendered


class TestRetrievalResultObject:
    def test_metric_lookup(self):
        result = RetrievalResult(
            reports={
                "A": {"hit_rate": 0.9, "recall": 0.5, "ndcg": 0.6,
                      "mrr": 0.7, "n_users": 10.0}
            },
            k=5,
            preset="smoke",
        )
        assert result.metric("A", "ndcg") == 0.6
        assert "NDCG@5" in result.render()
