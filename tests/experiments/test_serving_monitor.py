"""Monitored serving: streaming estimates vs exact, alerts, telemetry."""

import numpy as np
import pytest

from repro.core.trainer import ATNNTrainer
from repro.experiments import build_tmall_artifacts, run_monitored_serving
from repro.obs import QualityMonitor, TelemetrySession, use_monitor


@pytest.fixture(scope="module")
def artifacts():
    return build_tmall_artifacts("smoke")


class TestRunMonitoredServing:
    @pytest.fixture(scope="class")
    def result(self, artifacts):
        return run_monitored_serving("smoke", artifacts=artifacts)

    def test_streaming_auc_within_tolerance_of_exact(self, result):
        assert result.exact_auc is not None
        assert result.streaming_auc is not None
        assert abs(result.exact_auc - result.streaming_auc) <= 0.01

    def test_quality_snapshot_populated(self, result):
        assert result.quality["quality.streaming_auc"] is not None
        assert result.quality["quality.ece"] is not None
        assert result.quality["quality.impressions"] > 0
        assert "quality.ctr.cold" in result.quality
        assert "quality.ctr.warm" in result.quality

    def test_cold_start_cohort_tracked(self, result):
        assert result.cold_start["items_seen"] > 0
        assert result.cold_start["warm_items"] > 0
        assert result.cold_start["vector_divergence"] is not None

    def test_no_spurious_alerts_on_healthy_run(self, result):
        fired = [a for a in result.alerts if a["kind"] == "fired"]
        assert fired == []

    def test_render_and_as_dict(self, result):
        text = result.render()
        assert "Monitored serving" in text
        assert "auc check" in text
        payload = result.as_dict()
        assert payload["exact_auc"] == result.exact_auc
        assert "quality" in payload and "alerts" in payload

    def test_warmup_trajectory_recorded(self, result):
        assert len(result.stages) == 3
        assert result.stages[-1].warm_items > 0


class TestSessionIntegration:
    def test_monitor_session_collects_gauges(self, artifacts):
        with TelemetrySession(profile_autograd=False, monitor=True) as session:
            run_monitored_serving(
                "smoke", artifacts=artifacts, monitor=session.monitor
            )
        assert "quality.streaming_auc" in session.registry
        record_types = {record["type"] for record in session.iter_records()}
        assert {"quality", "drift", "coldstart"} <= record_types

    def test_trainer_validation_routes_to_monitor(self, artifacts):
        from repro.data.splits import train_test_split

        rng = np.random.default_rng(0)
        train, valid = train_test_split(
            artifacts.world.interactions, 0.2, rng
        )
        monitor = QualityMonitor()
        with TelemetrySession(profile_autograd=False, monitor=monitor):
            trainer = ATNNTrainer(epochs=1, batch_size=256, seed=0)
            trainer.fit(artifacts.model, train, valid=valid)
        assert "encoder" in monitor.validation
        assert "generator" in monitor.validation
        snapshot = monitor.snapshot()
        assert 0.0 <= snapshot["quality.validation.encoder.auc"] <= 1.0
        assert "quality.validation.generator.auc" in snapshot

    def test_passing_explicit_monitor_reuses_it(self, artifacts):
        monitor = QualityMonitor()
        result = run_monitored_serving(
            "smoke",
            artifacts=artifacts,
            event_batches=(0, 2_000),
            monitor=monitor,
        )
        assert monitor.impressions_seen > 0
        assert result.quality["quality.impressions"] == float(
            monitor.impressions_seen
        )
