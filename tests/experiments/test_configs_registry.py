"""Experiment preset and registry tests."""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    PRESETS,
    available_experiments,
    get_preset,
    run_experiment,
)


class TestPresets:
    def test_all_presets_resolvable(self):
        for name in ("smoke", "default", "paper"):
            preset = get_preset(name)
            assert preset.name == name

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError):
            get_preset("gigantic")

    def test_sizes_ordered(self):
        smoke = get_preset("smoke")
        default = get_preset("default")
        paper = get_preset("paper")
        assert (
            smoke.tmall.n_interactions
            < default.tmall.n_interactions
            < paper.tmall.n_interactions
        )

    def test_paper_preset_uses_paper_tower(self):
        paper = get_preset("paper")
        assert paper.tower.vector_dim == 128
        assert paper.tower.deep_dims == (512, 256, 128)

    def test_presets_mapping_consistent(self):
        assert set(PRESETS) == {"smoke", "default", "paper"}


class TestRegistry:
    def test_all_tables_registered(self):
        names = available_experiments()
        for table in ("table1", "table2", "table3", "table4", "table5"):
            assert table in names
        assert "complexity" in names

    def test_registry_matches_available(self):
        assert sorted(EXPERIMENTS) == available_experiments()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError):
            run_experiment("table99")
