"""Tests for the max reduction, log-softmax and in-batch softmax loss."""

import numpy as np
import pytest

from repro.nn import Tensor, check_gradients
from repro.nn.losses import in_batch_softmax_loss, log_softmax


class TestMaxReduction:
    def test_values(self, rng):
        a = rng.normal(size=(3, 4))
        np.testing.assert_allclose(Tensor(a).max().item(), a.max())
        np.testing.assert_allclose(Tensor(a).max(axis=1).data, a.max(axis=1))

    def test_keepdims(self, rng):
        a = rng.normal(size=(3, 4))
        out = Tensor(a).max(axis=1, keepdims=True)
        assert out.shape == (3, 1)

    def test_gradient_flows_to_argmax(self):
        a = Tensor(np.array([[1.0, 5.0, 2.0]]), requires_grad=True)
        a.max(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.0, 1.0, 0.0]])

    def test_gradient_split_across_ties(self):
        a = Tensor(np.array([[3.0, 3.0, 1.0]]), requires_grad=True)
        a.max(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.5, 0.5, 0.0]])

    def test_gradcheck(self, rng):
        # Distinct values avoid non-differentiable tie points.
        a = Tensor(rng.permutation(12).astype(float).reshape(3, 4), requires_grad=True)
        check_gradients(lambda: (a.max(axis=1) ** 2).sum(), [a])

    def test_global_max_gradcheck(self, rng):
        a = Tensor(rng.permutation(9).astype(float).reshape(3, 3), requires_grad=True)
        check_gradients(lambda: a.max() * 2.0, [a])


class TestLogSoftmax:
    def test_matches_direct_computation(self, rng):
        logits = rng.normal(size=(4, 6))
        out = log_softmax(Tensor(logits)).data
        expected = logits - np.log(np.exp(logits).sum(axis=-1, keepdims=True))
        np.testing.assert_allclose(out, expected, rtol=1e-10)

    def test_rows_normalise(self, rng):
        out = log_softmax(Tensor(rng.normal(size=(5, 7)))).data
        np.testing.assert_allclose(np.exp(out).sum(axis=-1), 1.0, rtol=1e-10)

    def test_stable_for_large_logits(self):
        out = log_softmax(Tensor(np.array([[1000.0, 999.0]]))).data
        assert np.isfinite(out).all()

    def test_shift_invariance(self, rng):
        logits = rng.normal(size=(3, 4))
        a = log_softmax(Tensor(logits)).data
        b = log_softmax(Tensor(logits + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-9)

    def test_gradcheck(self, rng):
        logits = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        check_gradients(
            lambda: (log_softmax(logits) ** 2).mean(), [logits],
            rtol=1e-3, atol=1e-6,
        )


class TestInBatchSoftmaxLoss:
    def test_perfect_alignment_low_loss(self, rng):
        vectors = np.eye(4) * 10.0
        loss = in_batch_softmax_loss(
            Tensor(vectors), Tensor(vectors), temperature=1.0
        )
        assert loss.item() < 0.01

    def test_adversarial_alignment_high_loss(self):
        users = np.eye(3) * 10.0
        items = np.roll(users, 1, axis=0)  # each user matches the wrong item
        loss = in_batch_softmax_loss(Tensor(users), Tensor(items))
        assert loss.item() > 1.0

    def test_loss_at_least_uniform_entropy_bound(self, rng):
        users = Tensor(rng.normal(size=(8, 4)))
        items = Tensor(rng.normal(size=(8, 4)))
        loss = in_batch_softmax_loss(users, items)
        assert loss.item() > 0.0

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            in_batch_softmax_loss(
                Tensor(np.zeros((3, 4))), Tensor(np.zeros((4, 4)))
            )

    def test_invalid_temperature_rejected(self, rng):
        with pytest.raises(ValueError):
            in_batch_softmax_loss(
                Tensor(np.zeros((3, 4))), Tensor(np.zeros((3, 4))),
                temperature=0.0,
            )

    def test_gradcheck(self, rng):
        users = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        items = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        check_gradients(
            lambda: in_batch_softmax_loss(users, items),
            [users, items],
            rtol=1e-3,
            atol=1e-6,
        )

    def test_descent_improves_alignment(self, rng):
        users = Tensor(rng.normal(size=(6, 4)), requires_grad=True)
        items = Tensor(rng.normal(size=(6, 4)), requires_grad=True)
        first = in_batch_softmax_loss(users, items).item()
        for _ in range(50):
            users.zero_grad()
            items.zero_grad()
            loss = in_batch_softmax_loss(users, items)
            loss.backward()
            users.data -= 0.5 * users.grad  # repro-lint: disable=ATN001 -- hand-rolled descent loop; each iteration rebuilds the graph from scratch
            items.data -= 0.5 * items.grad  # repro-lint: disable=ATN001 -- hand-rolled descent loop; each iteration rebuilds the graph from scratch
        assert loss.item() < first
