"""Loss function tests, including the paper's similarity loss L_s."""

import numpy as np
import pytest

from repro.nn import Tensor, check_gradients
from repro.nn.losses import (
    binary_cross_entropy,
    binary_cross_entropy_with_logits,
    cosine_similarity,
    mean_absolute_error,
    mean_squared_error,
    similarity_loss,
)


class TestBinaryCrossEntropy:
    def test_matches_formula(self, rng):
        p = rng.uniform(0.05, 0.95, size=8)
        y = (rng.random(8) < 0.5).astype(float)
        expected = -np.mean(y * np.log(p) + (1 - y) * np.log(1 - p))
        assert binary_cross_entropy(Tensor(p), y).item() == pytest.approx(expected)

    def test_perfect_prediction_near_zero(self):
        loss = binary_cross_entropy(Tensor([1.0, 0.0]), np.array([1.0, 0.0]))
        assert loss.item() < 1e-6

    def test_extreme_probabilities_finite(self):
        loss = binary_cross_entropy(Tensor([0.0, 1.0]), np.array([1.0, 0.0]))
        assert np.isfinite(loss.item())

    def test_gradients(self, rng):
        logits = Tensor(rng.normal(size=6), requires_grad=True)
        y = (rng.random(6) < 0.5).astype(float)
        check_gradients(
            lambda: binary_cross_entropy(logits.sigmoid(), y), [logits]
        )

    def test_with_logits_matches_probability_version(self, rng):
        z = rng.normal(size=10)
        y = (rng.random(10) < 0.5).astype(float)
        via_logits = binary_cross_entropy_with_logits(Tensor(z), y).item()
        via_probs = binary_cross_entropy(Tensor(z).sigmoid(), y).item()
        assert via_logits == pytest.approx(via_probs, rel=1e-8)

    def test_with_logits_stable_for_huge_logits(self):
        loss = binary_cross_entropy_with_logits(
            Tensor([1000.0, -1000.0]), np.array([1.0, 0.0])
        )
        assert loss.item() == pytest.approx(0.0, abs=1e-9)

    def test_with_logits_gradients(self, rng):
        z = Tensor(rng.normal(size=6), requires_grad=True)
        y = (rng.random(6) < 0.5).astype(float)
        check_gradients(lambda: binary_cross_entropy_with_logits(z, y), [z])


class TestRegressionLosses:
    def test_mse_matches_numpy(self, rng):
        p, y = rng.normal(size=8), rng.normal(size=8)
        assert mean_squared_error(Tensor(p), y).item() == pytest.approx(
            np.mean((p - y) ** 2)
        )

    def test_mae_matches_numpy(self, rng):
        p, y = rng.normal(size=8), rng.normal(size=8)
        assert mean_absolute_error(Tensor(p), y).item() == pytest.approx(
            np.mean(np.abs(p - y))
        )

    def test_mse_gradients(self, rng):
        p = Tensor(rng.normal(size=6), requires_grad=True)
        y = rng.normal(size=6)
        check_gradients(lambda: mean_squared_error(p, y), [p])

    def test_mse_zero_at_target(self, rng):
        y = rng.normal(size=4)
        assert mean_squared_error(Tensor(y.copy()), y).item() == 0.0


class TestCosineSimilarity:
    def test_identical_vectors(self, rng):
        a = Tensor(rng.normal(size=(3, 4)))
        np.testing.assert_allclose(cosine_similarity(a, a).data, 1.0, atol=1e-6)

    def test_opposite_vectors(self, rng):
        a = Tensor(rng.normal(size=(3, 4)))
        b = Tensor(-a.data)
        np.testing.assert_allclose(cosine_similarity(a, b).data, -1.0, atol=1e-6)

    def test_orthogonal_vectors(self):
        a = Tensor(np.array([[1.0, 0.0]]))
        b = Tensor(np.array([[0.0, 1.0]]))
        np.testing.assert_allclose(cosine_similarity(a, b).data, 0.0, atol=1e-6)

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            cosine_similarity(Tensor(np.zeros((2, 3))), Tensor(np.zeros((2, 4))))


class TestSimilarityLoss:
    def test_zero_when_identical(self, rng):
        a = Tensor(rng.normal(size=(4, 8)))
        assert similarity_loss(a, a).item() == pytest.approx(0.0, abs=1e-10)

    def test_maximal_when_opposite(self, rng):
        a = Tensor(rng.normal(size=(4, 8)))
        b = Tensor(-a.data)
        assert similarity_loss(a, b).item() == pytest.approx(4.0, rel=1e-5)

    def test_no_gradient_into_encoder_target(self, rng):
        generated = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        encoded = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        similarity_loss(generated, encoded).backward()
        assert generated.grad is not None
        assert encoded.grad is None

    def test_gradient_pulls_generator_toward_encoder(self, rng):
        generated = Tensor(rng.normal(size=(1, 4)), requires_grad=True)
        encoded = Tensor(rng.normal(size=(1, 4)))
        before = similarity_loss(generated, encoded).item()
        similarity_loss(generated, encoded).backward()
        generated.data -= 0.1 * generated.grad  # repro-lint: disable=ATN001 -- hand-rolled gradient step; a fresh graph is built right after, so no saved buffer can go stale
        after = similarity_loss(generated, encoded).item()
        assert after < before

    def test_gradients_match_finite_differences(self, rng):
        generated = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        encoded = Tensor(rng.normal(size=(3, 4)))
        check_gradients(lambda: similarity_loss(generated, encoded), [generated])
