"""Autograd graph mechanics: accumulation, reuse, detach, no_grad."""

import numpy as np
import pytest

from repro.nn import Tensor, is_grad_enabled, no_grad


class TestBackwardBasics:
    def test_scalar_backward_default_grad(self):
        a = Tensor([[2.0]], requires_grad=True)
        (a * 3.0).sum().backward()
        np.testing.assert_allclose(a.grad, [[3.0]])

    def test_non_scalar_backward_requires_grad_arg(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (a * 2.0).backward()

    def test_explicit_gradient(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (a * 2.0).backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(a.grad, [2.0, 20.0])

    def test_gradient_shape_mismatch_rejected(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (a * 2.0).backward(np.array([1.0]))

    def test_no_grad_without_requires_grad(self):
        a = Tensor([1.0, 2.0])
        out = (a * 2.0).sum()
        out.backward()
        assert a.grad is None


class TestGraphStructure:
    def test_diamond_graph_accumulates(self):
        # y = a*a + a*a uses `a` through two paths.
        a = Tensor([3.0], requires_grad=True)
        b = a * a
        c = a * a
        (b + c).sum().backward()
        np.testing.assert_allclose(a.grad, [12.0])

    def test_tensor_reused_in_same_op(self):
        a = Tensor([2.0], requires_grad=True)
        (a * a).sum().backward()
        np.testing.assert_allclose(a.grad, [4.0])

    def test_grad_accumulates_across_backward_calls(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2.0).sum().backward()
        (a * 3.0).sum().backward()
        np.testing.assert_allclose(a.grad, [5.0])

    def test_zero_grad_clears(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2.0).sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_deep_chain(self):
        a = Tensor([1.0], requires_grad=True)
        out = a
        for _ in range(200):
            out = out * 1.01
        out.sum().backward()
        assert a.grad[0] == pytest.approx(1.01 ** 200, rel=1e-9)

    def test_intermediate_grad_populated(self):
        a = Tensor([2.0], requires_grad=True)
        b = a * 3.0
        b.sum().backward()
        np.testing.assert_allclose(b.grad, [1.0])


class TestDetachAndNoGrad:
    def test_detach_blocks_gradient(self):
        a = Tensor([2.0], requires_grad=True)
        (a.detach() * 5.0).sum().backward()
        assert a.grad is None

    def test_detach_shares_data(self):
        a = Tensor([2.0], requires_grad=True)
        assert a.detach().data is a.data

    def test_no_grad_context_disables_recording(self):
        a = Tensor([2.0], requires_grad=True)
        with no_grad():
            out = a * 3.0
        assert not out.requires_grad
        assert out._backward_fn is None

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_nested(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        try:
            with no_grad():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert is_grad_enabled()


class TestTensorBasics:
    def test_repr_includes_shape(self):
        assert "shape=(2,)" in repr(Tensor([1.0, 2.0]))

    def test_repr_includes_name(self):
        assert "weights" in repr(Tensor([1.0], name="weights"))

    def test_len(self):
        assert len(Tensor([[1.0], [2.0], [3.0]])) == 3

    def test_item_scalar(self):
        assert Tensor([[5.0]]).item() == 5.0

    def test_item_non_scalar_rejected(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]).item()

    def test_numpy_returns_underlying(self):
        a = Tensor([1.0])
        assert a.numpy() is a.data

    def test_dtype_coercion(self):
        assert Tensor(np.array([1, 2], dtype=np.int32)).dtype == np.float64

    def test_shape_ndim_size(self):
        a = Tensor(np.zeros((2, 3)))
        assert a.shape == (2, 3)
        assert a.ndim == 2
        assert a.size == 6
