"""Lazy (row-sparse) optimizer updates vs the dense reference.

Each optimizer's sparse path must match its dense path exactly on the rows
the batches touch, provided every batch touches the same rows (so lazy
moment freezing never kicks in).  AdaGrad and FTRL are exactly equivalent
on touched rows regardless; see the class docstrings for the documented
divergences on skipped rows.
"""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam, AdaGrad, FTRL
from repro.nn.sparse import SparseGrad


def _make_optimizer(factory, param):
    name, kwargs = factory
    cls = {"sgd": SGD, "sgd_momentum": SGD, "adam": Adam,
           "adam_wd": Adam, "adagrad": AdaGrad, "ftrl": FTRL}[name]
    return cls([param], **kwargs)


OPTIMIZERS = [
    ("sgd", {"lr": 0.1}),
    ("sgd_momentum", {"lr": 0.1, "momentum": 0.9, "nesterov": True}),
    ("adam", {"lr": 0.05}),
    ("adam_wd", {"lr": 0.05, "weight_decay": 0.01}),
    ("adagrad", {"lr": 0.1}),
    ("ftrl", {"lr": 0.5, "l1": 0.01, "l2": 0.1}),
]


@pytest.mark.parametrize("factory", OPTIMIZERS, ids=[f[0] for f in OPTIMIZERS])
def test_lazy_matches_dense_on_touched_rows(factory, rng):
    """Multi-step parity when every step touches the same row set."""
    shape = (12, 4)
    initial = rng.normal(size=shape)
    touched = np.array([1, 4, 7])
    step_rows = [rng.normal(size=(touched.size, shape[1])) for _ in range(4)]

    dense_param = Parameter(initial.copy())
    dense_optimizer = _make_optimizer(factory, dense_param)
    lazy_param = Parameter(initial.copy())
    lazy_optimizer = _make_optimizer(factory, lazy_param)

    for rows in step_rows:
        dense = np.zeros(shape)
        dense[touched] = rows
        dense_param.grad = dense
        dense_optimizer.step()

        lazy_param.grad = SparseGrad.from_rows(touched, rows.copy(), shape)
        lazy_optimizer.step()

        np.testing.assert_allclose(
            lazy_param.data[touched], dense_param.data[touched],
            rtol=1e-10, atol=1e-12,
        )


@pytest.mark.parametrize(
    "factory", [("sgd", {"lr": 0.1}), ("adagrad", {"lr": 0.1})],
    ids=["sgd", "adagrad"],
)
def test_untouched_rows_never_move(factory, rng):
    shape = (10, 3)
    initial = rng.normal(size=shape)
    param = Parameter(initial.copy())
    optimizer = _make_optimizer(factory, param)
    param.grad = SparseGrad.from_rows(
        np.array([2, 5]), rng.normal(size=(2, 3)), shape
    )
    optimizer.step()
    untouched = np.array([0, 1, 3, 4, 6, 7, 8, 9])
    np.testing.assert_array_equal(param.data[untouched], initial[untouched])


def test_repeated_ids_in_one_step_sum(rng):
    """A row hit twice in one batch gets one update with the summed grad."""
    shape = (6, 2)
    initial = rng.normal(size=shape)
    rows = rng.normal(size=(3, 2))

    lazy = Parameter(initial.copy())
    SGD([lazy], lr=0.5)._update_sparse(
        lazy, SparseGrad.from_rows(np.array([4, 4, 1]), rows, shape, dedup=False)
    )
    dense = Parameter(initial.copy())
    grad = np.zeros(shape)
    np.add.at(grad, np.array([4, 4, 1]), rows)  # repro-lint: disable=ATN003 -- builds the dense reference the lazy sparse update is checked against
    dense.grad = grad
    SGD([dense], lr=0.5).step()
    np.testing.assert_allclose(lazy.data, dense.data)


def test_empty_sparse_grad_is_a_noop(rng):
    shape = (5, 3)
    initial = rng.normal(size=shape)
    param = Parameter(initial.copy())
    optimizer = Adam([param], lr=0.1)
    param.grad = SparseGrad.from_rows(
        np.array([], dtype=np.int64), np.zeros((0, 3)), shape
    )
    optimizer.step()
    np.testing.assert_array_equal(param.data, initial)


def test_weight_decay_zero_returns_grad_unchanged(rng):
    param = Parameter(rng.normal(size=(4, 2)))
    param.grad = rng.normal(size=(4, 2))
    optimizer = SGD([param], lr=0.1)
    assert optimizer._decayed_grad(param, 0.0) is param.grad


def test_weight_decay_buffer_reused_across_steps(rng):
    param = Parameter(rng.normal(size=(4, 2)))
    optimizer = SGD([param], lr=0.1, weight_decay=0.05)
    param.grad = rng.normal(size=(4, 2))
    first = optimizer._decayed_grad(param, 0.05)
    np.testing.assert_allclose(first, param.grad + 0.05 * param.data)
    param.grad = rng.normal(size=(4, 2))
    second = optimizer._decayed_grad(param, 0.05)
    assert second is first  # same scratch buffer
    np.testing.assert_allclose(second, param.grad + 0.05 * param.data)
