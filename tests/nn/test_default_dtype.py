"""The configurable default dtype and float32 training mode."""

import numpy as np
import pytest

from repro.core import TwoTowerModel, TwoTowerTrainer
from repro.data import train_test_split
from repro.nn import (
    Tensor,
    default_dtype,
    get_default_dtype,
    init,
    set_default_dtype,
)
from repro.nn.layers.embedding import EmbeddingBag
from repro.nn.layers.linear import Linear
from repro.nn.losses import binary_cross_entropy, mean_squared_error
from repro.nn.module import Module, Parameter


@pytest.fixture(autouse=True)
def _restore_default_dtype():
    previous = get_default_dtype()
    yield
    set_default_dtype(previous)


class TestDefaultDtypeSwitch:
    def test_default_is_float64(self):
        assert get_default_dtype() == np.float64
        assert Tensor([1.0, 2.0]).data.dtype == np.float64

    def test_set_and_restore(self):
        previous = set_default_dtype(np.float32)
        assert previous == np.float64
        assert Tensor([1.0]).data.dtype == np.float32
        set_default_dtype(previous)
        assert Tensor([1.0]).data.dtype == np.float64

    def test_context_manager(self):
        with default_dtype(np.float32):
            assert get_default_dtype() == np.float32
        assert get_default_dtype() == np.float64

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(ValueError):
            set_default_dtype(np.int64)

    def test_initializers_follow_default(self):
        rng = np.random.default_rng(0)
        with default_dtype(np.float32):
            assert init.normal(rng, (3, 2)).dtype == np.float32
            assert init.zeros((3,)).dtype == np.float32
            assert init.ones((3,)).dtype == np.float32
        assert init.xavier_uniform(rng, (3, 2)).dtype == np.float64

    def test_initializer_explicit_dtype_wins(self):
        rng = np.random.default_rng(0)
        assert init.he_normal(rng, (2, 2), dtype=np.float32).dtype == np.float32

    def test_initializer_draws_match_across_dtypes(self):
        high = init.normal(np.random.default_rng(7), (4, 3))
        low = init.normal(np.random.default_rng(7), (4, 3), dtype=np.float32)
        np.testing.assert_allclose(low, high, rtol=1e-6)


class TestFloat32Compute:
    def test_forward_backward_preserve_dtype(self):
        rng = np.random.default_rng(0)
        with default_dtype(np.float32):
            layer = Linear(4, 3, rng=rng)
            x = Tensor(rng.normal(size=(5, 4)))
            assert x.data.dtype == np.float32
            out = layer(x).relu()
            assert out.data.dtype == np.float32
            out.sum().backward()
        assert layer.weight.grad.dtype == np.float32

    def test_losses_follow_prediction_dtype(self):
        with default_dtype(np.float32):
            predictions = Tensor(np.full(8, 0.3))
            loss = binary_cross_entropy(predictions, np.zeros(8))
            assert loss.data.dtype == np.float32
            mse = mean_squared_error(Tensor(np.ones(4)), np.zeros(4))
            assert mse.data.dtype == np.float32

    def test_bce_extreme_probabilities_stay_finite(self):
        """float32 clip must be wide enough that log(1-p) never hits -inf."""
        with default_dtype(np.float32):
            predictions = Tensor(np.array([1.0, 0.0, 1.0 - 1e-9]))
            loss = binary_cross_entropy(predictions, np.array([0.0, 1.0, 0.0]))
            assert np.isfinite(loss.item())
            loss.backward()

    def test_embedding_bag_mask_follows_weight_dtype(self):
        rng = np.random.default_rng(0)
        with default_dtype(np.float32):
            bag = EmbeddingBag(6, 3, rng=rng)
            out = bag(np.array([[0, 1]]), np.array([[1, 1]]))
            assert out.data.dtype == np.float32


class TestModuleToDtype:
    def test_casts_parameters_and_clears_grads(self):
        rng = np.random.default_rng(0)

        class Net(Module):
            def __init__(self):
                super().__init__()
                self.layer = Linear(3, 2, rng=rng)
                self.scale = Parameter(np.ones(2))

        net = Net()
        net.layer.weight.grad = np.zeros_like(net.layer.weight.data)
        net.to_dtype(np.float32)
        for param in net.parameters():
            assert param.data.dtype == np.float32
            assert param.grad is None
        net.to_dtype(np.float64)
        assert net.scale.data.dtype == np.float64


class TestFloat32Trainer:
    def test_two_tower_float32_fit(self, tiny_tmall_world, tiny_tower_config):
        rng = np.random.default_rng(0)
        train, _ = train_test_split(tiny_tmall_world.interactions, 0.2, rng)
        train = train.subset(np.arange(1500))
        model = TwoTowerModel(
            tiny_tmall_world.schema, tiny_tower_config,
            rng=np.random.default_rng(1),
        )
        trainer = TwoTowerTrainer(
            epochs=2, batch_size=256, lr=3e-3, dtype=np.float32
        )
        history = trainer.fit(model, train)
        assert history.series("loss")[-1] < history.series("loss")[0]
        assert all(p.data.dtype == np.float32 for p in model.parameters())
        # The global default is restored once fit returns.
        assert get_default_dtype() == np.float64
