"""Multi-process data-parallel training: parity, determinism, failure paths.

The pool's headline contract is that parallelism never changes the math:
``n_workers=1`` reproduces the in-process trainer bit for bit, and
``n_workers=N`` is deterministic run to run under fixed seeds.  The rest
pins the plumbing — worker crash surfacing, slab restore on close, spool
telemetry, and the prefetch double-buffer yielding an identical batch
sequence.
"""

import numpy as np
import pytest

from repro.core import TowerConfig, TwoTowerModel, TwoTowerTrainer
from repro.nn.parallel import (
    TwoTowerStepProgram,
    WorkerError,
    WorkerPool,
    default_start_method,
)


@pytest.fixture
def small_train(tiny_tmall_world):
    return tiny_tmall_world.interactions.subset(np.arange(2048))


def _fresh_model(tiny_tmall_world, tiny_tower_config):
    return TwoTowerModel(
        tiny_tmall_world.schema,
        tiny_tower_config,
        rng=np.random.default_rng(17),
    )


def _train(world, config, train, **trainer_kwargs):
    model = _fresh_model(world, config)
    kwargs = {"epochs": 1, "batch_size": 256, "lr": 1e-3, "seed": 0}
    kwargs.update(trainer_kwargs)
    history = TwoTowerTrainer(**kwargs).fit(model, train)
    return model.state_dict(), history


class _ExplodingProgram:
    """Step program that dies inside the worker process."""

    def paths(self):
        return ("encoder",)

    def loss(self, model, batch, path):
        raise ValueError("boom in worker")


class TestParity:
    def test_one_worker_matches_in_process_bit_for_bit(
        self, tiny_tmall_world, tiny_tower_config, small_train
    ):
        in_process, _ = _train(
            tiny_tmall_world, tiny_tower_config, small_train, n_workers=0
        )
        parallel, _ = _train(
            tiny_tmall_world, tiny_tower_config, small_train, n_workers=1
        )
        assert in_process.keys() == parallel.keys()
        for key, value in in_process.items():
            np.testing.assert_array_equal(
                value, parallel[key], err_msg=f"weights diverged at {key}"
            )

    def test_two_workers_deterministic_across_runs(
        self, tiny_tmall_world, tiny_tower_config, small_train
    ):
        first, _ = _train(
            tiny_tmall_world, tiny_tower_config, small_train, n_workers=2
        )
        second, _ = _train(
            tiny_tmall_world, tiny_tower_config, small_train, n_workers=2
        )
        for key, value in first.items():
            np.testing.assert_array_equal(
                value, second[key], err_msg=f"nondeterministic at {key}"
            )

    def test_two_worker_training_descends(
        self, tiny_tmall_world, tiny_tower_config, small_train
    ):
        _, history = _train(
            tiny_tmall_world, tiny_tower_config, small_train,
            n_workers=2, epochs=3, lr=3e-3,
        )
        losses = history.series("loss")
        assert len(losses) == 3
        assert losses[-1] < losses[0]

    @pytest.mark.skipif(
        default_start_method() != "fork",
        reason="spawn is already the default path on this platform",
    )
    def test_spawn_start_method_smoke(
        self, tiny_tmall_world, tiny_tower_config, small_train
    ):
        fork_state, _ = _train(
            tiny_tmall_world, tiny_tower_config, small_train,
            n_workers=1, start_method="fork",
        )
        spawn_state, _ = _train(
            tiny_tmall_world, tiny_tower_config, small_train,
            n_workers=1, start_method="spawn",
        )
        for key, value in fork_state.items():
            np.testing.assert_array_equal(value, spawn_state[key])


class TestWorkerPool:
    def test_rejects_zero_workers(
        self, tiny_tmall_world, tiny_tower_config, small_train
    ):
        model = _fresh_model(tiny_tmall_world, tiny_tower_config)
        with pytest.raises(ValueError, match="n_workers"):
            WorkerPool(
                model, TwoTowerStepProgram(), small_train,
                n_workers=0, batch_size=64,
            )

    def test_rejects_dataset_too_small_for_sharding(
        self, tiny_tmall_world, tiny_tower_config, small_train
    ):
        model = _fresh_model(tiny_tmall_world, tiny_tower_config)
        with pytest.raises(ValueError, match="too small"):
            WorkerPool(
                model, TwoTowerStepProgram(), small_train.subset(np.arange(100)),
                n_workers=4, batch_size=64,
            )

    def test_worker_exception_surfaces_as_worker_error(
        self, tiny_tmall_world, tiny_tower_config, small_train
    ):
        model = _fresh_model(tiny_tmall_world, tiny_tower_config)
        with WorkerPool(
            model, _ExplodingProgram(), small_train,
            n_workers=1, batch_size=256,
        ) as pool:
            pool.begin_epoch()
            with pytest.raises(WorkerError, match="boom in worker"):
                pool.step("encoder", advance=True)

    def test_close_restores_private_parameter_storage(
        self, tiny_tmall_world, tiny_tower_config, small_train
    ):
        model = _fresh_model(tiny_tmall_world, tiny_tower_config)
        before = {
            key: value.copy() for key, value in model.state_dict().items()
        }
        pool = WorkerPool(
            model, TwoTowerStepProgram(), small_train,
            n_workers=1, batch_size=256,
        )
        pool.close()
        for key, value in model.state_dict().items():
            np.testing.assert_array_equal(value, before[key])
        for param in model.parameters():
            # Private storage again: writable, and not shared-memory backed.
            param.data[...] = param.data  # repro-lint: disable=ATN001 -- writability probe after slab teardown
        # The model must remain trainable in-process after teardown.
        TwoTowerTrainer(epochs=1, batch_size=256, lr=1e-3).fit(
            model, small_train.subset(np.arange(512))
        )

    def test_shards_cover_disjoint_strides(
        self, tiny_tmall_world, tiny_tower_config, small_train
    ):
        model = _fresh_model(tiny_tmall_world, tiny_tower_config)
        with WorkerPool(
            model, TwoTowerStepProgram(), small_train,
            n_workers=2, batch_size=256,
        ) as pool:
            assert pool.steps_per_epoch == len(small_train) // 2 // 256


class TestWorkerTelemetry:
    def test_workers_ship_spool_frames(
        self, tiny_tmall_world, tiny_tower_config, small_train, tmp_path
    ):
        spool = tmp_path / "spool"
        _train(
            tiny_tmall_world, tiny_tower_config, small_train,
            n_workers=2, worker_spool_dir=spool,
        )
        spools = sorted(spool.glob("*.jsonl"))
        assert len(spools) >= 2, f"expected one spool per worker, got {spools}"
        contents = "".join(path.read_text() for path in spools)
        assert "parallel.worker.steps" in contents
        assert "parallel.worker.id" in contents


class TestPrefetch:
    def _batch_signatures(self, dataset, **kwargs):
        signatures = []
        for batch in dataset.iter_batches(256, **kwargs):
            label = batch.label("ctr")
            signatures.append((len(label), float(label.sum())))
        return signatures

    def test_prefetch_preserves_batch_sequence(self, tiny_tmall_world):
        dataset = tiny_tmall_world.interactions.subset(np.arange(1500))
        plain = self._batch_signatures(
            dataset, rng=np.random.default_rng(9), prefetch=False
        )
        prefetched = self._batch_signatures(
            dataset, rng=np.random.default_rng(9), prefetch=True
        )
        assert plain == prefetched

    def test_prefetch_respects_drop_last(self, tiny_tmall_world):
        dataset = tiny_tmall_world.interactions.subset(np.arange(1500))
        prefetched = self._batch_signatures(
            dataset, drop_last=True, prefetch=True
        )
        assert [size for size, _ in prefetched] == [256] * (1500 // 256)
