"""Optimizer and scheduler tests: convergence, state handling, dedup."""

import numpy as np
import pytest

from repro.nn import Parameter, Tensor
from repro.nn.optim import (
    SGD,
    AdaGrad,
    Adam,
    CosineDecay,
    ExponentialDecay,
    FTRL,
    Optimizer,
    StepDecay,
    WarmupWrapper,
)


def _quadratic_loss(param: Parameter, target: np.ndarray) -> Tensor:
    """0.5 * ||w - target||^2 with gradient (w - target)."""
    diff = Tensor(param.data) - Tensor(target)
    loss = (diff * diff).sum() * 0.5
    param.grad = param.data - target
    return loss


def _minimize(optimizer_cls, steps=300, **kwargs):
    target = np.array([1.0, -2.0, 3.0])
    param = Parameter(np.zeros(3))
    optimizer = optimizer_cls([param], **kwargs)
    for _ in range(steps):
        param.grad = param.data - target
        optimizer.step()
        optimizer.zero_grad()
    return param.data, target


class TestConvergence:
    def test_sgd(self):
        value, target = _minimize(SGD, lr=0.1)
        np.testing.assert_allclose(value, target, atol=1e-4)

    def test_sgd_momentum(self):
        value, target = _minimize(SGD, lr=0.05, momentum=0.9)
        np.testing.assert_allclose(value, target, atol=1e-4)

    def test_sgd_nesterov(self):
        value, target = _minimize(SGD, lr=0.05, momentum=0.9, nesterov=True)
        np.testing.assert_allclose(value, target, atol=1e-4)

    def test_adam(self):
        value, target = _minimize(Adam, lr=0.1, steps=500)
        np.testing.assert_allclose(value, target, atol=1e-3)

    def test_adagrad(self):
        value, target = _minimize(AdaGrad, lr=1.0, steps=800)
        np.testing.assert_allclose(value, target, atol=1e-2)

    def test_ftrl(self):
        value, target = _minimize(FTRL, lr=1.0, steps=800)
        np.testing.assert_allclose(value, target, atol=1e-2)


class TestOptimizerMechanics:
    def test_invalid_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(2))], lr=0.0)

    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_non_parameter_rejected(self):
        with pytest.raises(TypeError):
            SGD([Tensor(np.zeros(2), requires_grad=True)], lr=0.1)

    def test_duplicate_parameters_deduplicated(self):
        param = Parameter(np.zeros(2))
        optimizer = SGD([param, param], lr=0.1)
        assert len(optimizer.parameters) == 1

    def test_shared_parameter_single_update(self):
        """A shared embedding must receive exactly one update per step."""
        param = Parameter(np.array([1.0]))
        optimizer = SGD([param, param], lr=0.1)
        param.grad = np.array([1.0])
        optimizer.step()
        np.testing.assert_allclose(param.data, [0.9])

    def test_none_grad_skipped(self):
        param = Parameter(np.array([1.0]))
        optimizer = SGD([param], lr=0.1)
        optimizer.step()
        np.testing.assert_allclose(param.data, [1.0])

    def test_zero_grad(self):
        param = Parameter(np.array([1.0]))
        param.grad = np.array([2.0])
        optimizer = SGD([param], lr=0.1)
        optimizer.zero_grad()
        assert param.grad is None

    def test_weight_decay_shrinks(self):
        param = Parameter(np.array([10.0]))
        optimizer = SGD([param], lr=0.1, weight_decay=0.5)
        param.grad = np.array([0.0])
        optimizer.step()
        assert param.data[0] < 10.0

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, nesterov=True)

    def test_adam_invalid_betas_rejected(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.1, betas=(1.0, 0.999))

    def test_ftrl_l1_induces_sparsity(self):
        param = Parameter(np.array([0.5]))
        optimizer = FTRL([param], lr=0.5, l1=10.0)
        for _ in range(20):
            param.grad = np.array([0.01])
            optimizer.step()
        np.testing.assert_allclose(param.data, [0.0])

    def test_gradient_clipping_scales(self):
        param = Parameter(np.zeros(4))
        param.grad = np.full(4, 10.0)
        norm = Optimizer.clip_gradients([param], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0)

    def test_gradient_clipping_noop_below_threshold(self):
        param = Parameter(np.zeros(2))
        param.grad = np.array([0.1, 0.1])
        Optimizer.clip_gradients([param], max_norm=10.0)
        np.testing.assert_allclose(param.grad, [0.1, 0.1])


class TestSchedulers:
    def _optimizer(self, lr=1.0):
        return SGD([Parameter(np.zeros(1))], lr=lr)

    def test_step_decay(self):
        optimizer = self._optimizer()
        scheduler = StepDecay(optimizer, step_size=2, gamma=0.1)
        rates = [scheduler.step() for _ in range(4)]
        assert rates == pytest.approx([1.0, 0.1, 0.1, 0.01])

    def test_exponential_decay(self):
        optimizer = self._optimizer()
        scheduler = ExponentialDecay(optimizer, gamma=0.5)
        assert scheduler.step() == pytest.approx(0.5)
        assert scheduler.step() == pytest.approx(0.25)

    def test_cosine_decay_endpoints(self):
        optimizer = self._optimizer()
        scheduler = CosineDecay(optimizer, total_epochs=10, min_lr=0.0)
        for _ in range(10):
            final = scheduler.step()
        assert final == pytest.approx(0.0, abs=1e-12)

    def test_cosine_decay_monotone(self):
        optimizer = self._optimizer()
        scheduler = CosineDecay(optimizer, total_epochs=10)
        rates = [scheduler.step() for _ in range(10)]
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_warmup_ramps_linearly(self):
        optimizer = self._optimizer()
        scheduler = WarmupWrapper(
            ExponentialDecay(optimizer, gamma=1.0), warmup_epochs=4
        )
        rates = [scheduler.step() for _ in range(4)]
        assert rates == pytest.approx([0.25, 0.5, 0.75, 1.0])

    def test_invalid_step_size_rejected(self):
        with pytest.raises(ValueError):
            StepDecay(self._optimizer(), step_size=0)
