"""Module/Parameter registration, state dicts, train/eval modes."""

import numpy as np
import pytest

from repro.nn import Module, ModuleList, Parameter, Tensor
from repro.nn.layers import Linear


class _Block(Module):
    def __init__(self):
        super().__init__()
        self.weight = Parameter(np.ones((2, 2)))
        self.child = Linear(2, 2, rng=np.random.default_rng(0))

    def forward(self, x):
        return self.child(x @ self.weight)


class TestRegistration:
    def test_parameters_discovered_recursively(self):
        block = _Block()
        names = dict(block.named_parameters())
        assert "weight" in names
        assert "child.weight" in names
        assert "child.bias" in names

    def test_parameters_unique_when_shared(self):
        block = _Block()
        other = _Block()
        other.child = block.child  # share the submodule
        combined = list(block.parameters()) + list(other.parameters())
        unique = {id(p) for p in combined}
        assert len(unique) < len(combined)

    def test_shared_parameter_listed_once(self):
        block = _Block()
        block.alias = block.weight  # second registration of the same tensor
        assert sum(1 for p in block.parameters() if p is block.weight) == 1

    def test_num_parameters(self):
        block = _Block()
        assert block.num_parameters() == 4 + 4 + 2

    def test_register_module_explicit(self):
        container = Module()
        layer = Linear(2, 3, rng=np.random.default_rng(0))
        container.register_module("layer0", layer)
        assert dict(container.named_parameters())["layer0.weight"] is layer.weight


class TestModes:
    def test_train_eval_recursive(self):
        block = _Block()
        block.eval()
        assert not block.training
        assert not block.child.training
        block.train()
        assert block.training
        assert block.child.training

    def test_zero_grad_clears_all(self):
        block = _Block()
        out = block(Tensor(np.ones((1, 2))))
        out.sum().backward()
        assert block.weight.grad is not None
        block.zero_grad()
        assert all(p.grad is None for p in block.parameters())

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestStateDict:
    def test_roundtrip(self):
        block = _Block()
        state = block.state_dict()
        other = _Block()
        other.load_state_dict(state)
        for (name_a, param_a), (name_b, param_b) in zip(
            block.named_parameters(), other.named_parameters()
        ):
            assert name_a == name_b
            np.testing.assert_allclose(param_a.data, param_b.data)

    def test_state_dict_copies_data(self):
        block = _Block()
        state = block.state_dict()
        block.weight.data[0, 0] = 99.0  # repro-lint: disable=ATN001 -- mutates the live buffer on purpose to prove state_dict() snapshots are copies
        assert state["weight"][0, 0] != 99.0

    def test_missing_key_rejected(self):
        block = _Block()
        state = block.state_dict()
        del state["weight"]
        with pytest.raises(KeyError):
            block.load_state_dict(state)

    def test_shape_mismatch_rejected(self):
        block = _Block()
        state = block.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            block.load_state_dict(state)


class TestModuleList:
    def test_iteration_order(self):
        rng = np.random.default_rng(0)
        layers = ModuleList(Linear(2, 2, rng=rng) for _ in range(3))
        assert len(layers) == 3
        assert list(layers)[1] is layers[1]

    def test_parameters_registered(self):
        rng = np.random.default_rng(0)
        layers = ModuleList([Linear(2, 2, rng=rng)])
        assert len(layers.parameters()) == 2

    def test_append(self):
        layers = ModuleList()
        layers.append(Linear(2, 2, rng=np.random.default_rng(0)))
        assert len(layers) == 1
