"""Layer tests: Linear, Embedding, activations, dropout, normalisation."""

import numpy as np
import pytest

from repro.nn import Tensor, check_gradients
from repro.nn.layers import (
    BatchNorm1d,
    Dropout,
    Embedding,
    EmbeddingBag,
    FeatureEmbeddings,
    LayerNorm,
    Linear,
    get_activation,
)


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(4, 3, rng=rng)
        out = layer(Tensor(rng.normal(size=(5, 4))))
        assert out.shape == (5, 3)

    def test_affine_values(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_no_bias(self, rng):
        layer = Linear(3, 2, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_wrong_input_width_rejected(self, rng):
        layer = Linear(3, 2, rng=rng)
        with pytest.raises(ValueError):
            layer(Tensor(np.zeros((2, 5))))

    def test_invalid_sizes_rejected(self, rng):
        with pytest.raises(ValueError):
            Linear(0, 2, rng=rng)

    def test_gradients(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        check_gradients(lambda: (layer(x) ** 2).sum(), [x] + layer.parameters())

    def test_repr(self, rng):
        assert "Linear(in_features=3" in repr(Linear(3, 2, rng=rng))


class TestEmbedding:
    def test_lookup_shape(self, rng):
        emb = Embedding(10, 4, rng=rng)
        out = emb(np.array([1, 2, 3]))
        assert out.shape == (3, 4)

    def test_invalid_sizes_rejected(self, rng):
        with pytest.raises(ValueError):
            Embedding(0, 4, rng=rng)

    def test_gradients_accumulate_for_repeats(self, rng):
        emb = Embedding(5, 2, rng=rng)
        out = emb(np.array([2, 2]))
        out.sum().backward()
        np.testing.assert_allclose(emb.weight.grad[2], [2.0, 2.0])

    def test_repr(self, rng):
        assert repr(Embedding(10, 4, rng=rng)) == "Embedding(10, 4)"


class TestEmbeddingBag:
    def test_mean_pooling(self, rng):
        bag = EmbeddingBag(6, 3, rng=rng)
        indices = np.array([[1, 2, 0]])
        mask = np.array([[1.0, 1.0, 0.0]])
        out = bag(indices, mask)
        table = bag.embedding.weight.data
        np.testing.assert_allclose(out.data[0], (table[1] + table[2]) / 2.0)

    def test_all_masked_safe(self, rng):
        bag = EmbeddingBag(6, 3, rng=rng)
        out = bag(np.array([[0, 0]]), np.array([[0.0, 0.0]]))
        np.testing.assert_allclose(out.data, np.zeros((1, 3)))

    def test_shape_mismatch_rejected(self, rng):
        bag = EmbeddingBag(6, 3, rng=rng)
        with pytest.raises(ValueError):
            bag(np.zeros((1, 2), dtype=int), np.zeros((1, 3)))


class TestFeatureEmbeddings:
    def test_concat_order_and_width(self, rng):
        bank = FeatureEmbeddings({"a": 5, "b": 7}, {"a": 2, "b": 3}, rng=rng)
        assert bank.output_dim == 5
        out = bank({"a": np.array([0, 1]), "b": np.array([2, 3])})
        assert out.shape == (2, 5)
        np.testing.assert_allclose(out.data[:, :2], bank.table("a").weight.data[[0, 1]])

    def test_missing_feature_rejected(self, rng):
        bank = FeatureEmbeddings({"a": 5}, {"a": 2}, rng=rng)
        with pytest.raises(KeyError):
            bank({"b": np.array([0])})

    def test_extra_features_ignored(self, rng):
        bank = FeatureEmbeddings({"a": 5}, {"a": 2}, rng=rng)
        out = bank({"a": np.array([0]), "zzz": np.array([9])})
        assert out.shape == (1, 2)

    def test_mismatched_specs_rejected(self, rng):
        with pytest.raises(ValueError):
            FeatureEmbeddings({"a": 5}, {"b": 2}, rng=rng)

    def test_single_feature_no_concat(self, rng):
        bank = FeatureEmbeddings({"a": 5}, {"a": 2}, rng=rng)
        assert bank({"a": np.array([1, 2])}).shape == (2, 2)


class TestActivations:
    @pytest.mark.parametrize("name", ["relu", "leaky_relu", "sigmoid", "tanh", "identity", "linear"])
    def test_lookup(self, name):
        act = get_activation(name)
        out = act(Tensor(np.array([-1.0, 1.0])))
        assert out.shape == (2,)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            get_activation("swishish")

    def test_identity_passthrough(self):
        x = Tensor(np.array([1.0, -2.0]))
        np.testing.assert_allclose(get_activation("identity")(x).data, x.data)


class TestDropout:
    def test_invalid_probability_rejected(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng=rng)

    def test_eval_mode_is_identity(self, rng):
        layer = Dropout(0.5, rng=rng)
        layer.eval()
        x = Tensor(rng.normal(size=(4, 4)))
        np.testing.assert_allclose(layer(x).data, x.data)

    def test_p_zero_is_identity(self, rng):
        layer = Dropout(0.0, rng=rng)
        x = Tensor(rng.normal(size=(4, 4)))
        np.testing.assert_allclose(layer(x).data, x.data)

    def test_training_zeroes_and_scales(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((200, 10)))
        out = layer(x).data
        # Surviving entries are scaled by 1/keep = 2.
        assert set(np.round(np.unique(out), 6)) <= {0.0, 2.0}
        assert abs(out.mean() - 1.0) < 0.1

    def test_mask_is_stochastic(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((10, 10)))
        assert not np.allclose(layer(x).data, layer(x).data)


class TestLayerNorm:
    def test_normalises_last_axis(self, rng):
        layer = LayerNorm(6)
        out = layer(Tensor(rng.normal(2.0, 3.0, size=(5, 6)))).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_wrong_width_rejected(self, rng):
        with pytest.raises(ValueError):
            LayerNorm(6)(Tensor(rng.normal(size=(2, 4))))

    def test_gradients(self, rng):
        layer = LayerNorm(4)
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        check_gradients(
            lambda: (layer(x) ** 2).sum(), [x] + layer.parameters(),
            rtol=1e-3, atol=1e-5,
        )


class TestBatchNorm:
    def test_training_normalises_batch(self, rng):
        layer = BatchNorm1d(3)
        out = layer(Tensor(rng.normal(5.0, 2.0, size=(64, 3)))).data
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-7)

    def test_running_stats_updated(self, rng):
        layer = BatchNorm1d(3, momentum=0.5)
        layer(Tensor(rng.normal(5.0, 2.0, size=(64, 3))))
        assert not np.allclose(layer.running_mean, 0.0)

    def test_eval_uses_running_stats(self, rng):
        layer = BatchNorm1d(3, momentum=1.0)
        x = rng.normal(5.0, 2.0, size=(64, 3))
        layer(Tensor(x))
        layer.eval()
        out = layer(Tensor(x)).data
        expected = (x - x.mean(axis=0)) / np.sqrt(x.var(axis=0) + layer.eps)
        np.testing.assert_allclose(out, expected, atol=1e-6)

    def test_wrong_shape_rejected(self, rng):
        with pytest.raises(ValueError):
            BatchNorm1d(3)(Tensor(rng.normal(size=(4, 5))))
