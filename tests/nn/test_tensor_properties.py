"""Property-based tests of the autograd engine (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import Tensor, check_gradients

finite_floats = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
)


def small_arrays(max_side=4):
    shapes = st.tuples(
        st.integers(1, max_side), st.integers(1, max_side)
    )
    return shapes.flatmap(
        lambda shape: arrays(np.float64, shape, elements=finite_floats)
    )


@settings(max_examples=30, deadline=None)
@given(small_arrays())
def test_add_commutes(a):
    left = (Tensor(a) + Tensor(a * 2)).data
    right = (Tensor(a * 2) + Tensor(a)).data
    np.testing.assert_allclose(left, right)


@settings(max_examples=30, deadline=None)
@given(small_arrays())
def test_sum_matches_numpy(a):
    np.testing.assert_allclose(Tensor(a).sum().item(), a.sum(), rtol=1e-10, atol=1e-10)


@settings(max_examples=30, deadline=None)
@given(small_arrays())
def test_sigmoid_bounded(a):
    out = Tensor(a).sigmoid().data
    assert np.all(out >= 0.0) and np.all(out <= 1.0)


@settings(max_examples=30, deadline=None)
@given(small_arrays())
def test_tanh_odd_function(a):
    np.testing.assert_allclose(
        Tensor(-a).tanh().data, -Tensor(a).tanh().data, atol=1e-12
    )


@settings(max_examples=30, deadline=None)
@given(small_arrays())
def test_relu_idempotent(a):
    once = Tensor(a).relu()
    twice = once.relu()
    np.testing.assert_allclose(once.data, twice.data)


@settings(max_examples=20, deadline=None)
@given(small_arrays(max_side=3))
def test_mul_gradient_matches_finite_differences(a):
    x = Tensor(a, requires_grad=True)
    y = Tensor(a * 0.5 + 1.0, requires_grad=True)
    check_gradients(lambda: (x * y).sum(), [x, y], rtol=1e-3, atol=1e-5)


@settings(max_examples=20, deadline=None)
@given(small_arrays(max_side=3))
def test_linear_gradient_is_input_independent_constant(a):
    # d/dx sum(3x + 1) == 3 everywhere.
    x = Tensor(a, requires_grad=True)
    (x * 3.0 + 1.0).sum().backward()
    np.testing.assert_allclose(x.grad, np.full_like(a, 3.0))


@settings(max_examples=20, deadline=None)
@given(small_arrays(max_side=3), small_arrays(max_side=3))
def test_broadcast_scalar_add_gradient_shape(a, b):
    x = Tensor(a, requires_grad=True)
    bias = Tensor(np.array([1.5]), requires_grad=True)
    (x + bias).sum().backward()
    assert x.grad.shape == a.shape
    assert bias.grad.shape == (1,)
    np.testing.assert_allclose(bias.grad, [a.size])
