"""Cross network, DCN and MLP block tests."""

import numpy as np
import pytest

from repro.nn import Tensor, check_gradients
from repro.nn.layers import DCN, MLP, CrossLayer, CrossNetwork


class TestCrossLayer:
    def test_formula(self, rng):
        layer = CrossLayer(3, rng=rng)
        x0 = rng.normal(size=(2, 3))
        x = rng.normal(size=(2, 3))
        out = layer(Tensor(x0), Tensor(x))
        projection = x @ layer.weight.data
        expected = x0 * projection + layer.bias.data + x
        np.testing.assert_allclose(out.data, expected)

    def test_wrong_width_rejected(self, rng):
        layer = CrossLayer(3, rng=rng)
        with pytest.raises(ValueError):
            layer(Tensor(np.zeros((2, 4))), Tensor(np.zeros((2, 4))))

    def test_invalid_dim_rejected(self, rng):
        with pytest.raises(ValueError):
            CrossLayer(0, rng=rng)

    def test_gradients(self, rng):
        layer = CrossLayer(3, rng=rng)
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        check_gradients(
            lambda: (layer(x, x) ** 2).sum(), [x] + layer.parameters(),
            rtol=1e-3, atol=1e-5,
        )


class TestCrossNetwork:
    def test_zero_layers_is_identity(self, rng):
        net = CrossNetwork(4, 0, rng=rng)
        x = rng.normal(size=(3, 4))
        np.testing.assert_allclose(net(Tensor(x)).data, x)

    def test_negative_layers_rejected(self, rng):
        with pytest.raises(ValueError):
            CrossNetwork(4, -1, rng=rng)

    def test_depth_counts_layers(self, rng):
        assert len(CrossNetwork(4, 3, rng=rng).layers) == 3

    def test_output_shape_preserved(self, rng):
        net = CrossNetwork(5, 2, rng=rng)
        assert net(Tensor(rng.normal(size=(7, 5)))).shape == (7, 5)

    def test_can_represent_degree2_interaction(self, rng):
        """A 1-layer cross net fits y = x0*x1 far better than a linear map."""
        from repro.nn.losses import mean_squared_error
        from repro.nn.optim import Adam

        n = 512
        X = rng.normal(size=(n, 3))
        y = X[:, 0] * X[:, 1]
        net = CrossNetwork(3, 1, rng=rng)
        readout = np.zeros(3)
        readout[0] = 1.0  # read the first coordinate

        from repro.nn.layers import Linear

        head = Linear(3, 1, rng=rng)
        params = net.parameters() + head.parameters()
        optimizer = Adam(params, lr=0.05)
        for _ in range(300):
            optimizer.zero_grad()
            out = head(net(Tensor(X))).reshape(-1)
            loss = mean_squared_error(out, y)
            loss.backward()
            optimizer.step()
        assert loss.item() < 0.1 * y.var()


class TestMLP:
    def test_output_shape(self, rng):
        mlp = MLP(4, [8, 3], rng=rng)
        assert mlp(Tensor(rng.normal(size=(5, 4)))).shape == (5, 3)

    def test_empty_dims_rejected(self, rng):
        with pytest.raises(ValueError):
            MLP(4, [], rng=rng)

    def test_identity_output_activation_allows_negatives(self, rng):
        mlp = MLP(4, [8, 2], output_activation="identity", rng=rng)
        out = mlp(Tensor(rng.normal(size=(50, 4)))).data
        assert (out < 0).any()

    def test_relu_output_activation_nonnegative(self, rng):
        mlp = MLP(4, [8, 2], activation="relu", rng=rng)
        out = mlp(Tensor(rng.normal(size=(50, 4)))).data
        assert (out >= 0).all()

    def test_gradients(self, rng):
        mlp = MLP(3, [5, 2], output_activation="identity", rng=rng)
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        check_gradients(
            lambda: (mlp(x) ** 2).sum(), [x] + mlp.parameters(),
            rtol=1e-3, atol=1e-5,
        )

    def test_dropout_only_in_training(self, rng):
        mlp = MLP(4, [8, 2], dropout=0.5, rng=rng)
        mlp.eval()
        x = Tensor(rng.normal(size=(3, 4)))
        np.testing.assert_allclose(mlp(x).data, mlp(x).data)


class TestDCN:
    def test_output_width_is_cross_plus_deep(self, rng):
        dcn = DCN(6, [8, 4], num_cross_layers=2, rng=rng)
        assert dcn.out_features == 6 + 4
        assert dcn(Tensor(rng.normal(size=(3, 6)))).shape == (3, 10)

    def test_zero_cross_layers_still_concatenates(self, rng):
        dcn = DCN(6, [4], num_cross_layers=0, rng=rng)
        x = rng.normal(size=(2, 6))
        out = dcn(Tensor(x))
        np.testing.assert_allclose(out.data[:, :6], x)

    def test_gradients(self, rng):
        dcn = DCN(4, [6, 3], num_cross_layers=1, rng=rng)
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        check_gradients(
            lambda: (dcn(x) ** 2).sum(), [x] + dcn.parameters(),
            rtol=1e-3, atol=1e-5,
        )
