"""Tests for the gradient checker itself and weight initialisers."""

import numpy as np
import pytest

from repro.nn import Tensor, check_gradients, init, numerical_gradient


class TestNumericalGradient:
    def test_quadratic(self):
        x = Tensor(np.array([2.0, -1.0]), requires_grad=True)
        numeric = numerical_gradient(lambda: (x * x).sum(), x)
        np.testing.assert_allclose(numeric, [4.0, -2.0], atol=1e-5)

    def test_detects_wrong_gradient(self):
        """A deliberately broken op must be caught by check_gradients."""

        def broken_forward():
            x = value
            out = Tensor._make(
                x.data * 2.0, (x,), lambda grad: (grad * 3.0,)  # wrong: 3 != 2
            )
            return out.sum()

        value = Tensor(np.array([1.0]), requires_grad=True)
        with pytest.raises(AssertionError):
            check_gradients(broken_forward, [value])

    def test_rejects_non_scalar(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        with pytest.raises(ValueError):
            check_gradients(lambda: x * 2.0, [x])

    def test_rejects_non_grad_tensor(self):
        x = Tensor(np.array([1.0]))
        y = Tensor(np.array([1.0]), requires_grad=True)
        with pytest.raises(ValueError):
            check_gradients(lambda: (x * y).sum(), [x])


class TestInitializers:
    def test_xavier_uniform_bounds(self, rng):
        weights = init.xavier_uniform(rng, (100, 100))
        bound = np.sqrt(6.0 / 200)
        assert np.abs(weights).max() <= bound

    def test_xavier_normal_std(self, rng):
        weights = init.xavier_normal(rng, (200, 200))
        expected = np.sqrt(2.0 / 400)
        assert weights.std() == pytest.approx(expected, rel=0.1)

    def test_he_normal_std(self, rng):
        weights = init.he_normal(rng, (400, 10))
        assert weights.std() == pytest.approx(np.sqrt(2.0 / 400), rel=0.1)

    def test_he_uniform_bounds(self, rng):
        weights = init.he_uniform(rng, (50, 50))
        assert np.abs(weights).max() <= np.sqrt(6.0 / 50)

    def test_zeros_ones(self):
        np.testing.assert_allclose(init.zeros((3,)), [0.0, 0.0, 0.0])
        np.testing.assert_allclose(init.ones((2,)), [1.0, 1.0])

    def test_uniform_range(self, rng):
        weights = init.uniform(rng, (1000,), low=-0.1, high=0.1)
        assert weights.min() >= -0.1 and weights.max() < 0.1

    def test_normal_params(self, rng):
        weights = init.normal(rng, (5000,), mean=1.0, std=0.5)
        assert weights.mean() == pytest.approx(1.0, abs=0.05)
        assert weights.std() == pytest.approx(0.5, rel=0.1)

    def test_1d_fan(self, rng):
        weights = init.xavier_uniform(rng, (10,))
        assert weights.shape == (10,)

    def test_empty_shape_rejected(self, rng):
        with pytest.raises(ValueError):
            init.xavier_uniform(rng, ())

    def test_deterministic_under_seed(self):
        a = init.xavier_uniform(np.random.default_rng(7), (4, 4))
        b = init.xavier_uniform(np.random.default_rng(7), (4, 4))
        np.testing.assert_allclose(a, b)
