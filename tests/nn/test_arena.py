"""Buffer arena: pooling floor, generation lifecycle, reuse-after-free.

The arena's contract is narrow — a rented buffer is valid until the next
``advance()`` — so these tests pin the lifecycle edges: floor bypass,
recycling across generations, the per-key cap, stamp bookkeeping, and the
sanitizer catching a buffer held across its generation boundary.
"""

import numpy as np
import pytest

from repro.analysis import GradSanitizer
from repro.analysis.sanitizer import SanitizerError
from repro.nn import Tensor, use_sparse_grads
from repro.nn.arena import (
    DEFAULT_MIN_BYTES,
    BufferArena,
    arena_empty,
    arena_zeros,
    get_active_arena,
    use_arena,
)

# Comfortably above the 32 KiB pooling floor for float64.
BIG = (256, 64)


class TestPoolingFloor:
    def test_small_rentals_bypass_the_pool(self):
        arena = BufferArena()
        buffer = arena.rent((8, 8), np.float64)
        assert buffer.shape == (8, 8)
        assert not arena.owns(buffer)
        assert arena.unpooled == 1
        assert arena.rentals == 0

    def test_floor_boundary(self):
        arena = BufferArena()
        below = (DEFAULT_MIN_BYTES // 8 - 1,)
        at = (DEFAULT_MIN_BYTES // 8,)
        assert not arena.owns(arena.rent(below, np.float64))
        assert arena.owns(arena.rent(at, np.float64))

    def test_floor_is_in_bytes_not_elements(self):
        arena = BufferArena()
        elements = (DEFAULT_MIN_BYTES // 8,)
        assert arena.owns(arena.rent(elements, np.float64))
        # Same element count in float32 is half the bytes: below floor.
        assert not arena.owns(
            arena.rent(elements, np.float32)  # repro-lint: disable=ATN002 -- floor semantics under test
        )

    def test_custom_floor(self):
        arena = BufferArena(min_bytes=0)
        assert arena.owns(arena.rent((2,), np.float64))

    def test_small_zeros_are_calloced(self):
        arena = BufferArena()
        buffer = arena.zeros((4, 4), np.float64)
        assert not buffer.any()
        assert not arena.owns(buffer)


class TestLifecycle:
    def test_reuse_across_advance(self):
        arena = BufferArena()
        first = arena.rent(BIG, np.float64)
        assert arena.fresh_allocations == 1
        arena.advance()
        second = arena.rent(BIG, np.float64)
        assert second is first
        assert arena.reuses == 1
        assert arena.rentals == 2

    def test_no_reuse_within_a_generation(self):
        arena = BufferArena()
        first = arena.rent(BIG, np.float64)
        second = arena.rent(BIG, np.float64)
        assert second is not first

    def test_distinct_keys_never_alias(self):
        arena = BufferArena()
        a = arena.rent(BIG, np.float64)
        arena.advance()
        b = arena.rent((BIG[0] * BIG[1],), np.float64)
        assert b is not a

    def test_generation_stamps(self):
        arena = BufferArena()
        buffer = arena.rent(BIG, np.float64)
        assert arena.generation_of(buffer) == 0
        arena.advance()
        reused = arena.rent(BIG, np.float64)
        assert arena.generation_of(reused) == 1
        assert arena.generation_of(np.empty(BIG)) is None

    def test_zeros_reuses_and_clears(self):
        arena = BufferArena()
        buffer = arena.rent(BIG, np.float64)
        buffer.fill(7.0)
        arena.advance()
        recycled = arena.zeros(BIG, np.float64)
        assert recycled is buffer
        assert not recycled.any()

    def test_per_key_cap_drops_overflow(self):
        arena = BufferArena(max_buffers_per_key=2, min_bytes=0)
        buffers = [arena.rent((16,), np.float64) for _ in range(5)]
        arena.advance()
        assert arena.dropped == 3
        assert arena.pooled_buffers == 2
        # Dropped buffers lose their stamp: the arena no longer owns them.
        assert sum(arena.owns(b) for b in buffers) == 2

    def test_reset_drops_everything(self):
        arena = BufferArena()
        buffer = arena.rent(BIG, np.float64)
        arena.advance()
        arena.reset()
        assert arena.pooled_buffers == 0
        assert arena.pooled_bytes == 0
        assert not arena.owns(buffer)

    def test_stats_shape(self):
        arena = BufferArena()
        arena.rent(BIG, np.float64)
        arena.rent((2, 2), np.float64)
        arena.advance()
        stats = arena.stats()
        assert stats["generation"] == 1
        assert stats["rentals"] == 1
        assert stats["fresh_allocations"] == 1
        assert stats["unpooled"] == 1
        assert stats["pooled_buffers"] == 1
        assert stats["pooled_bytes"] == 8 * BIG[0] * BIG[1]


class TestAmbientArena:
    def test_module_helpers_without_arena(self):
        assert get_active_arena() is None
        empty = arena_empty((3, 3), np.float64)
        zeros = arena_zeros((3, 3), np.float64)
        assert empty.shape == (3, 3)
        assert not zeros.any()

    def test_use_arena_installs_and_restores(self):
        arena = BufferArena()
        with use_arena(arena):
            assert get_active_arena() is arena
            rented = arena_empty(BIG, np.float64)
            assert arena.owns(rented)
        assert get_active_arena() is None

    def test_nested_scopes_restore_outer(self):
        outer, inner = BufferArena(), BufferArena()
        with use_arena(outer):
            with use_arena(inner):
                assert get_active_arena() is inner
            assert get_active_arena() is outer


class TestReuseAfterFree:
    def _training_step(self, steps=1, advance_between=True):
        """Run backward passes renting arena buffers like the optimizer does."""
        rng = np.random.default_rng(0)
        w = Tensor(rng.standard_normal(BIG), requires_grad=True)
        for _ in range(steps):
            w.zero_grad()
            (w * 2.0).sum().backward()
            if advance_between:
                get_active_arena().advance()
        return w

    def test_sanitizer_accepts_disciplined_arena_use(self):
        with use_arena(BufferArena()), GradSanitizer():
            self._training_step(steps=3)

    def test_sanitizer_flags_buffer_held_across_advance(self):
        """A saved-for-backward arena buffer must not outlive its generation."""
        arena = BufferArena()
        rng = np.random.default_rng(0)
        with use_arena(arena), use_sparse_grads(False), GradSanitizer():
            x = Tensor(arena.rent(BIG, np.float64), requires_grad=True)
            x.data[:] = rng.standard_normal(BIG)  # repro-lint: disable=ATN001 -- seeding a fresh rental, no graph yet
            loss = (x * x).sum()
            # The generation ends while ``x.data`` is still saved for the
            # pending backward: classic reuse-after-free.
            arena.advance()
            arena.rent(BIG, np.float64).fill(0.0)
            with pytest.raises(SanitizerError):
                loss.backward()

    def test_unstamped_buffers_are_exempt(self):
        """Below-floor buffers carry no stamp, so holding them is fine."""
        arena = BufferArena()
        with use_arena(arena), GradSanitizer():
            x = Tensor(arena.rent((4, 4), np.float64), requires_grad=True)
            x.data[:] = 1.0  # repro-lint: disable=ATN001 -- seeding a fresh rental, no graph yet
            loss = (x * x).sum()
            arena.advance()
            loss.backward()
