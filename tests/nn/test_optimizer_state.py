"""Optimizer state (de)serialization: resumable training."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.nn.optim import SGD, AdaGrad, Adam, FTRL


def _step(optimizer, params, grads):
    for param, grad in zip(params, grads):
        param.grad = grad.copy()
    optimizer.step()
    optimizer.zero_grad()


@pytest.mark.parametrize(
    "factory",
    [
        lambda params: SGD(params, lr=0.1, momentum=0.9),
        lambda params: Adam(params, lr=0.05),
        lambda params: AdaGrad(params, lr=0.5),
        lambda params: FTRL(params, lr=0.5, l1=0.01),
    ],
    ids=["sgd-momentum", "adam", "adagrad", "ftrl"],
)
class TestResume:
    def test_resumed_run_matches_uninterrupted(self, factory, rng):
        """Save at step 3, restore into a fresh optimizer, continue: the
        trajectory must match an uninterrupted 6-step run exactly."""
        grads = [rng.normal(size=(4,)) for _ in range(6)]

        # Uninterrupted reference.
        ref_param = Parameter(np.ones(4))
        ref_opt = factory([ref_param])
        for grad in grads:
            _step(ref_opt, [ref_param], [grad])

        # Interrupted + resumed.
        param_a = Parameter(np.ones(4))
        opt_a = factory([param_a])
        for grad in grads[:3]:
            _step(opt_a, [param_a], [grad])
        snapshot_weights = param_a.data.copy()
        snapshot_state = opt_a.state_dict()

        param_b = Parameter(snapshot_weights)
        opt_b = factory([param_b])
        opt_b.load_state_dict(snapshot_state)
        for grad in grads[3:]:
            _step(opt_b, [param_b], [grad])

        np.testing.assert_allclose(param_b.data, ref_param.data, rtol=1e-12)

    def test_state_dict_copies_buffers(self, factory, rng):
        param = Parameter(np.ones(3))
        optimizer = factory([param])
        _step(optimizer, [param], [rng.normal(size=3)])
        state = optimizer.state_dict()
        before = {
            name: {k: (v.copy() if isinstance(v, np.ndarray) else v)
                   for k, v in buf.items()}
            for name, buf in state["buffers"].items()
        }
        _step(optimizer, [param], [rng.normal(size=3)])
        # The earlier snapshot must be unaffected by further steps.
        for name, buf in state["buffers"].items():
            for key, value in buf.items():
                if isinstance(value, np.ndarray):
                    np.testing.assert_allclose(value, before[name][key])

    def test_step_count_restored(self, factory, rng):
        param = Parameter(np.ones(2))
        optimizer = factory([param])
        for _ in range(4):
            _step(optimizer, [param], [rng.normal(size=2)])
        fresh = factory([Parameter(np.ones(2))])
        fresh.load_state_dict(optimizer.state_dict())
        assert fresh.step_count == 4


class TestValidation:
    def test_unknown_buffer_rejected(self):
        optimizer = SGD([Parameter(np.ones(2))], lr=0.1, momentum=0.9)
        with pytest.raises(KeyError):
            optimizer.load_state_dict(
                {"lr": 0.1, "step_count": 0, "buffers": {"_bogus": {}}}
            )

    def test_position_out_of_range_rejected(self):
        optimizer = SGD([Parameter(np.ones(2))], lr=0.1, momentum=0.9)
        with pytest.raises(IndexError):
            optimizer.load_state_dict(
                {
                    "lr": 0.1,
                    "step_count": 0,
                    "buffers": {"_velocity": {5: np.zeros(2)}},
                }
            )

    def test_lr_restored(self):
        optimizer = SGD([Parameter(np.ones(2))], lr=0.1)
        state = optimizer.state_dict()
        state["lr"] = 0.25
        optimizer.load_state_dict(state)
        assert optimizer.lr == 0.25
