"""Value and gradient tests for every tensor operation."""

import numpy as np
import pytest

from repro.nn import Tensor, check_gradients, concat, embedding_lookup, stack


def _t(rng, *shape):
    return Tensor(rng.normal(size=shape), requires_grad=True)


class TestArithmeticValues:
    def test_add(self, rng):
        a, b = rng.normal(size=(3, 2)), rng.normal(size=(3, 2))
        out = Tensor(a) + Tensor(b)
        np.testing.assert_allclose(out.data, a + b)

    def test_add_scalar(self):
        out = Tensor([1.0, 2.0]) + 3.0
        np.testing.assert_allclose(out.data, [4.0, 5.0])

    def test_radd(self):
        out = 3.0 + Tensor([1.0, 2.0])
        np.testing.assert_allclose(out.data, [4.0, 5.0])

    def test_sub(self):
        out = Tensor([5.0, 7.0]) - Tensor([2.0, 3.0])
        np.testing.assert_allclose(out.data, [3.0, 4.0])

    def test_rsub(self):
        out = 10.0 - Tensor([1.0, 2.0])
        np.testing.assert_allclose(out.data, [9.0, 8.0])

    def test_mul(self):
        out = Tensor([2.0, 3.0]) * Tensor([4.0, 5.0])
        np.testing.assert_allclose(out.data, [8.0, 15.0])

    def test_div(self):
        out = Tensor([8.0, 9.0]) / Tensor([2.0, 3.0])
        np.testing.assert_allclose(out.data, [4.0, 3.0])

    def test_rdiv(self):
        out = 6.0 / Tensor([2.0, 3.0])
        np.testing.assert_allclose(out.data, [3.0, 2.0])

    def test_neg(self):
        out = -Tensor([1.0, -2.0])
        np.testing.assert_allclose(out.data, [-1.0, 2.0])

    def test_pow(self):
        out = Tensor([2.0, 3.0]) ** 2
        np.testing.assert_allclose(out.data, [4.0, 9.0])

    def test_pow_tensor_exponent_rejected(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([3.0])

    def test_matmul(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4, 2))
        out = Tensor(a) @ Tensor(b)
        np.testing.assert_allclose(out.data, a @ b)

    def test_matmul_requires_2d(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]) @ Tensor([[1.0], [2.0]])

    def test_transpose(self, rng):
        a = rng.normal(size=(3, 4))
        np.testing.assert_allclose(Tensor(a).T.data, a.T)

    def test_transpose_requires_2d(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]).transpose()

    def test_reshape(self, rng):
        a = rng.normal(size=(2, 6))
        out = Tensor(a).reshape(3, 4)
        assert out.shape == (3, 4)

    def test_reshape_tuple_arg(self, rng):
        out = Tensor(rng.normal(size=(2, 6))).reshape((4, 3))
        assert out.shape == (4, 3)

    def test_getitem(self, rng):
        a = rng.normal(size=(5, 3))
        out = Tensor(a)[1:3]
        np.testing.assert_allclose(out.data, a[1:3])


class TestReductionValues:
    def test_sum_all(self, rng):
        a = rng.normal(size=(3, 4))
        assert Tensor(a).sum().item() == pytest.approx(a.sum())

    def test_sum_axis(self, rng):
        a = rng.normal(size=(3, 4))
        np.testing.assert_allclose(Tensor(a).sum(axis=0).data, a.sum(axis=0))

    def test_sum_keepdims(self, rng):
        a = rng.normal(size=(3, 4))
        out = Tensor(a).sum(axis=1, keepdims=True)
        assert out.shape == (3, 1)

    def test_mean_all(self, rng):
        a = rng.normal(size=(3, 4))
        assert Tensor(a).mean().item() == pytest.approx(a.mean())

    def test_mean_axis(self, rng):
        a = rng.normal(size=(3, 4))
        np.testing.assert_allclose(Tensor(a).mean(axis=-1).data, a.mean(axis=-1))


class TestNonlinearityValues:
    def test_exp(self):
        np.testing.assert_allclose(Tensor([0.0, 1.0]).exp().data, [1.0, np.e])

    def test_log(self):
        np.testing.assert_allclose(Tensor([1.0, np.e]).log().data, [0.0, 1.0])

    def test_sqrt(self):
        np.testing.assert_allclose(Tensor([4.0, 9.0]).sqrt().data, [2.0, 3.0])

    def test_tanh(self, rng):
        a = rng.normal(size=5)
        np.testing.assert_allclose(Tensor(a).tanh().data, np.tanh(a))

    def test_sigmoid_matches_definition(self, rng):
        a = rng.normal(size=5)
        np.testing.assert_allclose(
            Tensor(a).sigmoid().data, 1.0 / (1.0 + np.exp(-a))
        )

    def test_sigmoid_extreme_values_stable(self):
        out = Tensor([-1000.0, 1000.0]).sigmoid()
        assert np.all(np.isfinite(out.data))
        np.testing.assert_allclose(out.data, [0.0, 1.0], atol=1e-12)

    def test_relu(self):
        np.testing.assert_allclose(
            Tensor([-1.0, 0.0, 2.0]).relu().data, [0.0, 0.0, 2.0]
        )

    def test_leaky_relu(self):
        np.testing.assert_allclose(
            Tensor([-2.0, 3.0]).leaky_relu(0.1).data, [-0.2, 3.0]
        )

    def test_clip(self):
        np.testing.assert_allclose(
            Tensor([-5.0, 0.5, 5.0]).clip(0.0, 1.0).data, [0.0, 0.5, 1.0]
        )

    def test_abs(self):
        np.testing.assert_allclose(Tensor([-3.0, 2.0]).abs().data, [3.0, 2.0])


class TestGradients:
    """Every differentiable op is validated against finite differences."""

    def test_add_broadcast(self, rng):
        a, b = _t(rng, 3, 4), _t(rng, 4)
        check_gradients(lambda: (a + b).sum(), [a, b])

    def test_sub_broadcast(self, rng):
        a, b = _t(rng, 3, 4), _t(rng, 1, 4)
        check_gradients(lambda: (a - b).sum(), [a, b])

    def test_mul_broadcast(self, rng):
        a, b = _t(rng, 3, 4), _t(rng, 4)
        check_gradients(lambda: (a * b).sum(), [a, b])

    def test_div(self, rng):
        a = _t(rng, 3)
        b = Tensor(rng.uniform(1.0, 2.0, size=3), requires_grad=True)
        check_gradients(lambda: (a / b).sum(), [a, b])

    def test_pow(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, size=4), requires_grad=True)
        check_gradients(lambda: (a ** 3).sum(), [a])

    def test_matmul(self, rng):
        a, b = _t(rng, 3, 4), _t(rng, 4, 2)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_transpose(self, rng):
        a = _t(rng, 3, 4)
        check_gradients(lambda: (a.T @ a).sum(), [a])

    def test_reshape(self, rng):
        a = _t(rng, 2, 6)
        check_gradients(lambda: (a.reshape(3, 4) ** 2).sum(), [a])

    def test_getitem(self, rng):
        a = _t(rng, 5, 3)
        check_gradients(lambda: (a[1:4] ** 2).sum(), [a])

    def test_sum_axis(self, rng):
        a = _t(rng, 3, 4)
        check_gradients(lambda: (a.sum(axis=1) ** 2).sum(), [a])

    def test_sum_negative_axis_keepdims(self, rng):
        a = _t(rng, 3, 4)
        check_gradients(lambda: (a.sum(axis=-1, keepdims=True) ** 2).sum(), [a])

    def test_mean(self, rng):
        a = _t(rng, 4, 3)
        check_gradients(lambda: (a.mean(axis=0) ** 2).sum(), [a])

    def test_exp(self, rng):
        a = _t(rng, 4)
        check_gradients(lambda: a.exp().sum(), [a])

    def test_log(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, size=4), requires_grad=True)
        check_gradients(lambda: a.log().sum(), [a])

    def test_sqrt(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, size=4), requires_grad=True)
        check_gradients(lambda: a.sqrt().sum(), [a])

    def test_tanh(self, rng):
        a = _t(rng, 4)
        check_gradients(lambda: a.tanh().sum(), [a])

    def test_sigmoid(self, rng):
        a = _t(rng, 4)
        check_gradients(lambda: a.sigmoid().sum(), [a])

    def test_relu(self, rng):
        a = Tensor(rng.normal(size=6) + 0.1, requires_grad=True)
        check_gradients(lambda: a.relu().sum(), [a])

    def test_leaky_relu(self, rng):
        a = Tensor(rng.normal(size=6) + 0.1, requires_grad=True)
        check_gradients(lambda: a.leaky_relu(0.2).sum(), [a])

    def test_abs(self, rng):
        a = Tensor(rng.normal(size=6) + 2.0, requires_grad=True)
        check_gradients(lambda: a.abs().sum(), [a])

    def test_concat(self, rng):
        a, b = _t(rng, 3, 2), _t(rng, 3, 5)
        check_gradients(lambda: (concat([a, b], axis=1) ** 2).sum(), [a, b])

    def test_stack(self, rng):
        a, b = _t(rng, 3), _t(rng, 3)
        check_gradients(lambda: (stack([a, b], axis=0) ** 2).sum(), [a, b])

    def test_embedding_lookup(self, rng):
        weight = _t(rng, 6, 3)
        idx = np.array([0, 2, 2, 5])
        check_gradients(lambda: (embedding_lookup(weight, idx) ** 2).sum(), [weight])

    def test_composite_expression(self, rng):
        a, b = _t(rng, 2, 3), _t(rng, 3, 2)
        check_gradients(
            lambda: (((a @ b).sigmoid() * 2.0 - 0.5).tanh() / 1.5).mean(), [a, b]
        )


class TestConcatStack:
    def test_concat_values(self, rng):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(2, 2))
        out = concat([Tensor(a), Tensor(b)], axis=1)
        np.testing.assert_allclose(out.data, np.concatenate([a, b], axis=1))

    def test_concat_empty_rejected(self):
        with pytest.raises(ValueError):
            concat([])

    def test_concat_single(self, rng):
        a = rng.normal(size=(2, 3))
        np.testing.assert_allclose(concat([Tensor(a)]).data, a)

    def test_stack_values(self, rng):
        a, b = rng.normal(size=3), rng.normal(size=3)
        out = stack([Tensor(a), Tensor(b)], axis=0)
        np.testing.assert_allclose(out.data, np.stack([a, b]))

    def test_stack_empty_rejected(self):
        with pytest.raises(ValueError):
            stack([])


class TestEmbeddingLookup:
    def test_values(self, rng):
        weight = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        out = embedding_lookup(weight, np.array([1, 4]))
        np.testing.assert_allclose(out.data, weight.data[[1, 4]])

    def test_repeated_indices_accumulate(self, rng):
        weight = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        out = embedding_lookup(weight, np.array([1, 1, 1]))
        out.sum().backward()
        np.testing.assert_allclose(weight.grad[1], [3.0, 3.0])
        np.testing.assert_allclose(weight.grad[0], [0.0, 0.0])

    def test_out_of_range_rejected(self, rng):
        weight = Tensor(rng.normal(size=(4, 2)))
        with pytest.raises(IndexError):
            embedding_lookup(weight, np.array([4]))

    def test_negative_index_rejected(self, rng):
        weight = Tensor(rng.normal(size=(4, 2)))
        with pytest.raises(IndexError):
            embedding_lookup(weight, np.array([-1]))

    def test_float_indices_rejected(self, rng):
        weight = Tensor(rng.normal(size=(4, 2)))
        with pytest.raises(TypeError):
            embedding_lookup(weight, np.array([1.0]))

    def test_non_2d_weight_rejected(self, rng):
        weight = Tensor(rng.normal(size=4))
        with pytest.raises(ValueError):
            embedding_lookup(weight, np.array([1]))

    def test_2d_index_shape(self, rng):
        weight = Tensor(rng.normal(size=(5, 3)))
        out = embedding_lookup(weight, np.array([[0, 1], [2, 3]]))
        assert out.shape == (2, 2, 3)
