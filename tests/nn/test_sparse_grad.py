"""Tests for the row-sparse embedding-gradient fast path."""

import numpy as np
import pytest

from repro.nn import check_gradients, embedding_lookup
from repro.nn.layers.embedding import Embedding, EmbeddingBag
from repro.nn.module import Parameter
from repro.nn.optim import Optimizer
from repro.nn.sparse import SparseGrad, sparse_grads_enabled, use_sparse_grads
from repro.nn.tensor import Tensor


class TestSparseGradRepresentation:
    def test_dedup_matches_scatter_add_reference(self, rng):
        indices = rng.integers(0, 10, size=40)
        rows = rng.normal(size=(40, 3))
        grad = SparseGrad.from_rows(indices, rows, (10, 3))
        reference = np.zeros((10, 3))
        np.add.at(reference, indices, rows)  # repro-lint: disable=ATN003 -- builds the dense scatter reference the segment-sum kernel is checked against
        np.testing.assert_allclose(grad.to_dense(), reference)
        # Compacted: unique sorted ids.
        assert np.all(np.diff(grad.indices) > 0)

    def test_compact_is_idempotent(self, rng):
        grad = SparseGrad.from_rows([2, 2, 5], rng.normal(size=(3, 2)), (6, 2))
        dense = grad.to_dense()
        grad.compact()
        np.testing.assert_allclose(grad.to_dense(), dense)

    def test_empty_gradient(self):
        grad = SparseGrad.from_rows(
            np.array([], dtype=np.int64), np.zeros((0, 4)), (7, 4)
        )
        assert grad.nnz_rows == 0
        np.testing.assert_allclose(grad.to_dense(), np.zeros((7, 4)))

    def test_merge_sums_contributions(self, rng):
        a = SparseGrad.from_rows([1, 3], rng.normal(size=(2, 2)), (5, 2))
        b = SparseGrad.from_rows([3, 4], rng.normal(size=(2, 2)), (5, 2))
        merged = a.merge(b)
        np.testing.assert_allclose(merged.to_dense(), a.to_dense() + b.to_dense())

    def test_add_dense_scatter(self, rng):
        sparse = SparseGrad.from_rows([0, 2], rng.normal(size=(2, 3)), (4, 3))
        dense = rng.normal(size=(4, 3))
        np.testing.assert_allclose(sparse + dense, sparse.to_dense() + dense)
        np.testing.assert_allclose(dense + sparse, sparse.to_dense() + dense)

    def test_scalar_arithmetic_stays_sparse(self, rng):
        grad = SparseGrad.from_rows([1, 2], rng.normal(size=(2, 2)), (4, 2))
        doubled = grad * 2.0
        assert isinstance(doubled, SparseGrad)
        np.testing.assert_allclose(doubled.to_dense(), 2.0 * grad.to_dense())
        squared = grad ** 2
        assert isinstance(squared, SparseGrad)
        np.testing.assert_allclose(squared.to_dense(), grad.to_dense() ** 2)
        assert grad.sum() == pytest.approx(grad.to_dense().sum())
        grad *= 0.5
        np.testing.assert_allclose(grad.to_dense(), 0.25 * doubled.to_dense())

    def test_getitem_and_array_protocol(self, rng):
        grad = SparseGrad.from_rows([1], rng.normal(size=(1, 2)), (3, 2))
        np.testing.assert_allclose(grad[1], grad.to_dense()[1])
        np.testing.assert_allclose(np.asarray(grad), grad.to_dense())

    def test_non_scalar_multiply_rejected(self, rng):
        grad = SparseGrad.from_rows([0], rng.normal(size=(1, 2)), (2, 2))
        with pytest.raises(TypeError):
            grad * np.ones((2, 2))


class TestSparseBackward:
    def test_embedding_backward_emits_sparse(self, rng):
        weight = Parameter(rng.normal(size=(20, 4)))
        out = embedding_lookup(weight, np.array([3, 3, 7]))
        out.sum().backward()
        grad = weight.grad
        assert isinstance(grad, SparseGrad)
        assert grad.nnz_rows == 2

    def test_toggle_restores_dense_path(self, rng):
        weight = Parameter(rng.normal(size=(20, 4)))
        with use_sparse_grads(False):
            assert not sparse_grads_enabled()
            out = embedding_lookup(weight, np.array([3, 3, 7]))
            out.sum().backward()
        assert isinstance(weight.grad, np.ndarray)
        assert sparse_grads_enabled()

    def test_sparse_matches_dense_backward(self, rng):
        data = rng.normal(size=(30, 5))
        indices = rng.integers(0, 30, size=64)
        coeff = rng.normal(size=(64, 5))

        def run():
            weight = Parameter(data.copy())
            out = embedding_lookup(weight, indices)
            (out * Tensor(coeff)).sum().backward()
            return weight.grad

        sparse = run()
        with use_sparse_grads(False):
            dense = run()
        np.testing.assert_allclose(sparse.to_dense(), dense)

    def test_shared_table_two_lookups_accumulate(self, rng):
        """sparse + sparse accumulation on a table shared by two branches."""
        data = rng.normal(size=(15, 3))

        def run():
            weight = Parameter(data.copy())
            a = embedding_lookup(weight, np.array([0, 1, 1]))
            b = embedding_lookup(weight, np.array([1, 9]))
            (a.sum() + 2.0 * b.sum()).backward()
            return weight.grad

        sparse = run()
        assert isinstance(sparse, SparseGrad)
        with use_sparse_grads(False):
            dense = run()
        np.testing.assert_allclose(sparse.to_dense(), dense)

    def test_mixed_sparse_and_dense_contributions(self, rng):
        """A table used via lookup *and* a dense op accumulates correctly."""
        data = rng.normal(size=(6, 4))
        coeff = rng.normal(size=(6, 4))

        def run():
            weight = Parameter(data.copy())
            lookup = embedding_lookup(weight, np.array([2, 2, 4]))
            dense_use = (weight * Tensor(coeff)).sum()
            (lookup.sum() + dense_use).backward()
            return weight.grad

        got = run()
        with use_sparse_grads(False):
            expected = run()
        np.testing.assert_allclose(np.asarray(got), np.asarray(expected))

    def test_clip_gradients_handles_sparse(self, rng):
        weight = Parameter(rng.normal(size=(25, 4)))
        out = embedding_lookup(weight, np.array([1, 2, 2, 3]))
        (out * out).sum().backward()
        expected_norm = float(
            np.sqrt((np.asarray(weight.grad) ** 2).sum())
        )
        norm = Optimizer.clip_gradients([weight], max_norm=expected_norm / 2)
        assert norm == pytest.approx(expected_norm)
        clipped_norm = float(np.sqrt((np.asarray(weight.grad) ** 2).sum()))
        assert clipped_norm == pytest.approx(expected_norm / 2)


class TestSparseGradcheck:
    def test_embedding_repeated_indices(self, rng):
        table = Embedding(8, 3, rng=rng)
        indices = np.array([0, 5, 5, 2, 5])
        coeff = Tensor(rng.normal(size=(5, 3)))

        def fn():
            return (table(indices) * coeff).sum()

        check_gradients(fn, [table.weight])

    def test_embedding_bag_repeated_indices(self, rng):
        bag = EmbeddingBag(8, 3, rng=rng)
        indices = np.array([[1, 1, 4], [2, 0, 0]])
        mask = np.array([[1.0, 1.0, 0.0], [1.0, 1.0, 1.0]])
        coeff = Tensor(rng.normal(size=(2, 3)))

        def fn():
            return (bag(indices, mask) * coeff).sum()

        check_gradients(fn, [bag.embedding.weight])
