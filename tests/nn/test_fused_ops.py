"""Fused tape nodes must match their unfused subgraphs, gradient for gradient.

Covers the five round-2 fused kernels (linear+relu, DCN cross, MLP stack,
embedding bag, BCE-with-logits), the graph-level ``fuse()`` substitution
pass, and the interaction with the runtime sanitizer and the buffer arena.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.analysis import GradSanitizer
from repro.nn import (
    Tensor,
    check_gradients,
    default_dtype,
    fused_embedding_bag,
    fused_linear_relu,
    use_sparse_grads,
)
from repro.nn.arena import BufferArena, use_arena
from repro.nn.fusion import fuse, fusion_hits, reset_fusion_hits
from repro.nn.layers import (
    MLP,
    FeatureEmbeddings,
    FusedFeatureEmbeddings,
    FusedMLP,
    Linear,
)
from repro.nn.losses import binary_cross_entropy_with_logits
from repro.nn.module import Module, Parameter
from repro.nn.optim import Adam
from repro.nn.sparse import SparseGrad

DTYPES = [np.float64, np.float32]  # repro-lint: disable=ATN002 -- parity matrix runs both precisions on purpose


def _tolerances(dtype):
    return (
        {"rtol": 1e-12, "atol": 1e-12}
        if np.dtype(dtype) == np.float64
        else {"rtol": 1e-5, "atol": 1e-6}
    )


# ----------------------------------------------------------------------
# fused_linear_relu
# ----------------------------------------------------------------------
class TestFusedLinearRelu:
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_matches_unfused(self, rng, dtype):
        x_data = rng.standard_normal((6, 5)).astype(dtype)
        w_data = rng.standard_normal((5, 3)).astype(dtype)
        b_data = rng.standard_normal(3).astype(dtype)

        def run(fused):
            x = Tensor(x_data.copy(), requires_grad=True)
            w = Tensor(w_data.copy(), requires_grad=True)
            b = Tensor(b_data.copy(), requires_grad=True)
            if fused:
                out = fused_linear_relu(x, w, b)
            else:
                out = (x @ w + b).relu()
            out.sum().backward()
            return out.data, [x.grad, w.grad, b.grad]

        fused_out, fused_grads = run(True)
        plain_out, plain_grads = run(False)
        np.testing.assert_array_equal(fused_out, plain_out)
        for fused_grad, plain_grad in zip(fused_grads, plain_grads):
            np.testing.assert_allclose(
                fused_grad, plain_grad, **_tolerances(dtype)
            )

    def test_numerical_gradcheck(self, rng):
        x = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        w = Tensor(rng.standard_normal((4, 2)), requires_grad=True)
        b = Tensor(rng.standard_normal(2), requires_grad=True)
        check_gradients(lambda: fused_linear_relu(x, w, b).sum(), [x, w, b])


# ----------------------------------------------------------------------
# fused MLP stack
# ----------------------------------------------------------------------
class TestFusedMLP:
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_matches_unfused(self, rng, dtype):
        x_data = rng.standard_normal((8, 6)).astype(dtype)
        with default_dtype(dtype):
            mlp = MLP(6, (5, 4), rng=np.random.default_rng(7))
            mlp.to_dtype(dtype)
            fused, reason = FusedMLP.from_mlp(mlp)
            assert fused is not None, reason

            def run(model):
                for param in model.parameters():
                    param.zero_grad()
                out = model(Tensor(x_data.copy()))
                out.sum().backward()
                return out.data, [np.asarray(p.grad) for p in model.parameters()]

            plain_out, plain_grads = run(mlp)
            fused_out, fused_grads = run(fused)
        np.testing.assert_array_equal(fused_out, plain_out)
        for fused_grad, plain_grad in zip(fused_grads, plain_grads):
            np.testing.assert_allclose(
                fused_grad, plain_grad, **_tolerances(dtype)
            )

    def test_shares_parameters_with_wrapped_mlp(self):
        mlp = MLP(4, (3,), rng=np.random.default_rng(0))
        fused, _ = FusedMLP.from_mlp(mlp)
        assert [id(p) for p in fused.parameters()] == [
            id(p) for p in mlp.parameters()
        ]
        assert fused.state_dict().keys() == mlp.state_dict().keys()


# ----------------------------------------------------------------------
# fused BCE-with-logits
# ----------------------------------------------------------------------
class TestFusedBCELogits:
    def test_forward_matches_stable_formula_exactly(self, rng):
        z_data = rng.standard_normal(64) * 8.0
        targets = (rng.random(64) < 0.5).astype(float)
        loss = binary_cross_entropy_with_logits(
            Tensor(z_data, requires_grad=True), targets
        )
        expected = np.mean(
            np.maximum(z_data, 0.0)
            - z_data * targets
            + np.log(1.0 + np.exp(-np.abs(z_data)))
        )
        assert loss.item() == expected

    def test_backward_is_sigmoid_minus_target(self, rng):
        z = Tensor(rng.standard_normal(32), requires_grad=True)
        targets = (rng.random(32) < 0.3).astype(float)
        binary_cross_entropy_with_logits(z, targets).backward()
        sigmoid = 1.0 / (1.0 + np.exp(-z.data))
        np.testing.assert_allclose(
            z.grad, (sigmoid - targets) / z.shape[0], rtol=1e-12, atol=1e-14
        )

    def test_extreme_logits_stay_finite(self):
        z = Tensor(np.array([800.0, -800.0, 0.0]), requires_grad=True)
        loss = binary_cross_entropy_with_logits(z, np.array([1.0, 0.0, 1.0]))
        loss.backward()
        assert np.isfinite(loss.item())
        assert np.all(np.isfinite(z.grad))

    def test_numerical_gradcheck(self, rng):
        z = Tensor(rng.standard_normal(10), requires_grad=True)
        targets = (rng.random(10) < 0.5).astype(float)
        check_gradients(
            lambda: binary_cross_entropy_with_logits(z, targets), [z]
        )

    @settings(max_examples=30, deadline=None)
    @given(
        arrays(
            np.float64,
            st.integers(1, 16),
            elements=st.floats(
                min_value=-30.0, max_value=30.0,
                allow_nan=False, allow_infinity=False,
            ),
        ),
        st.integers(0, 2**32 - 1),
    )
    def test_gradient_matches_unfused_chain(self, z_data, label_seed):
        targets = (
            np.random.default_rng(label_seed).random(z_data.size) < 0.5
        ).astype(float)

        fused_z = Tensor(z_data.copy(), requires_grad=True)
        fused_loss = binary_cross_entropy_with_logits(fused_z, targets)
        fused_loss.backward()

        plain_z = Tensor(z_data.copy(), requires_grad=True)
        y = Tensor(targets)
        plain_loss = (
            plain_z.relu() - plain_z * y + (1.0 + (-plain_z.abs()).exp()).log()
        ).mean()
        plain_loss.backward()

        np.testing.assert_allclose(
            fused_loss.item(), plain_loss.item(), rtol=1e-12, atol=1e-12
        )
        np.testing.assert_allclose(
            fused_z.grad, plain_z.grad, rtol=1e-9, atol=1e-12
        )


# ----------------------------------------------------------------------
# fused embedding bag
# ----------------------------------------------------------------------
class TestFusedEmbeddingBag:
    VOCABS = {"user": 50, "item": 30, "cat": 7}
    DIMS = {"user": 4, "item": 3, "cat": 2}

    def _features(self, rng, batch=16):
        return {
            name: rng.integers(0, size, size=batch)
            for name, size in self.VOCABS.items()
        }

    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("sparse", [True, False])
    def test_matches_unfused_bank(self, rng, dtype, sparse):
        features = self._features(rng)
        upstream = rng.standard_normal((16, sum(self.DIMS.values()))).astype(dtype)

        def run(fused):
            with default_dtype(dtype):
                bank = FeatureEmbeddings(
                    self.VOCABS, self.DIMS, rng=np.random.default_rng(3)
                )
                bank.to_dtype(dtype)
                if fused:
                    bank = FusedFeatureEmbeddings.from_bank(bank)
                with use_sparse_grads(sparse):
                    out = bank(features)
                    (out * Tensor(upstream)).sum().backward()
            return out.data, [np.asarray(p.grad) for p in bank.parameters()]

        fused_out, fused_grads = run(True)
        plain_out, plain_grads = run(False)
        np.testing.assert_array_equal(fused_out, plain_out)
        for fused_grad, plain_grad in zip(fused_grads, plain_grads):
            np.testing.assert_allclose(
                fused_grad, plain_grad, **_tolerances(dtype)
            )

    def test_sparse_backward_emits_sparse_grads(self, rng):
        bank = FusedFeatureEmbeddings.from_bank(
            FeatureEmbeddings(self.VOCABS, self.DIMS, rng=rng)
        )
        with use_sparse_grads(True):
            bank(self._features(rng)).sum().backward()
        for param in bank.parameters():
            assert isinstance(param.grad, SparseGrad)

    def test_shared_table_accumulates_both_contributions(self, rng):
        weight = Parameter(rng.standard_normal((20, 3)))
        first = rng.integers(0, 20, size=8)
        second = rng.integers(0, 20, size=8)
        with use_sparse_grads(False):
            out = fused_embedding_bag([weight, weight], [first, second])
            out.sum().backward()
        expected = np.zeros_like(weight.data)
        np.add.at(expected, first, 1.0)  # repro-lint: disable=ATN003 -- reference dense scatter
        np.add.at(expected, second, 1.0)  # repro-lint: disable=ATN003 -- reference dense scatter
        np.testing.assert_allclose(
            np.asarray(weight.grad), expected, rtol=1e-12, atol=1e-12
        )

    def test_duplicate_indices_segment_sum(self, rng):
        weight = Parameter(rng.standard_normal((10, 2)))
        indices = np.array([3, 3, 3, 7, 0, 7])
        upstream = rng.standard_normal((6, 2))
        with use_sparse_grads(True):
            out = fused_embedding_bag([weight], [indices])
            (out * Tensor(upstream)).sum().backward()
        expected = np.zeros_like(weight.data)
        np.add.at(expected, indices, upstream)  # repro-lint: disable=ATN003 -- reference dense scatter
        np.testing.assert_allclose(
            np.asarray(weight.grad), expected, rtol=1e-12, atol=1e-12
        )

    def test_rejects_bad_inputs(self, rng):
        weight = Parameter(rng.standard_normal((10, 2)))
        with pytest.raises(ValueError):
            fused_embedding_bag([], [])
        with pytest.raises(ValueError):
            fused_embedding_bag([weight], [])
        with pytest.raises(TypeError):
            fused_embedding_bag([weight], [np.array([0.5, 1.5])])
        with pytest.raises(IndexError):
            fused_embedding_bag([weight], [np.array([0, 10])])
        with pytest.raises(ValueError):
            fused_embedding_bag(
                [weight, weight], [np.array([0, 1]), np.array([0])]
            )


# ----------------------------------------------------------------------
# the fuse() substitution pass
# ----------------------------------------------------------------------
class _BankAndHead(Module):
    def __init__(self, vocabs, dims, rng):
        super().__init__()
        self.embeddings = FeatureEmbeddings(vocabs, dims, rng=rng)
        self.head = Linear(self.embeddings.output_dim, 1, rng=rng)

    def forward(self, features):
        return self.head(self.embeddings(features)).reshape((-1,))


class TestFusePass:
    VOCABS = {"user": 40, "item": 25}
    DIMS = {"user": 4, "item": 3}

    def _model(self):
        return _BankAndHead(self.VOCABS, self.DIMS, np.random.default_rng(5))

    def test_substitutes_embedding_bank(self):
        model = self._model()
        report = fuse(model)
        assert isinstance(model.embeddings, FusedFeatureEmbeddings)
        assert ("embeddings", "fused_embedding_bag") in report.replaced

    def test_preserves_state_dict_and_parameter_identity(self):
        model = self._model()
        before_keys = list(model.state_dict())
        before_params = [id(p) for p in model.parameters()]
        fuse(model)
        assert list(model.state_dict()) == before_keys
        assert [id(p) for p in model.parameters()] == before_params

    def test_idempotent(self):
        model = self._model()
        first = fuse(model)
        second = fuse(model)
        assert first.num_replaced >= 1
        assert second.num_replaced == 0

    def test_counts_fusion_hits(self, rng):
        model = self._model()
        fuse(model)
        reset_fusion_hits()
        features = {
            name: rng.integers(0, size, size=8)
            for name, size in self.VOCABS.items()
        }
        model(features)
        model(features)
        assert fusion_hits()["embedding_bag"] == 2

    def test_single_feature_bank_left_alone(self):
        model = _BankAndHead({"user": 40}, {"user": 4}, np.random.default_rng(5))
        report = fuse(model)
        assert not isinstance(model.embeddings, FusedFeatureEmbeddings)
        assert all(path != "embeddings" for path, _ in report.replaced)


# ----------------------------------------------------------------------
# fused training under the sanitizer and the arena
# ----------------------------------------------------------------------
class TestFusedUnderSanitizer:
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_fused_arena_train_steps_stay_clean(self, rng, dtype):
        vocabs = {"user": 60, "item": 40, "cat": 9}
        dims = {"user": 4, "item": 4, "cat": 2}
        with default_dtype(dtype):
            model = _BankAndHead(vocabs, dims, np.random.default_rng(11))
            model.to_dtype(dtype)
            fuse(model)
            optimizer = Adam(model.parameters(), lr=1e-3)
            labels = (rng.random(32) < 0.4).astype(dtype)
            sanitizer = GradSanitizer(track_nonfinite=True)
            with use_sparse_grads(True), use_arena(BufferArena()), sanitizer:
                for _ in range(4):
                    optimizer.zero_grad()
                    features = {
                        name: rng.integers(0, size, size=32)
                        for name, size in vocabs.items()
                    }
                    loss = binary_cross_entropy_with_logits(
                        model(features), labels
                    )
                    loss.backward()
                    optimizer.step()
                    assert np.isfinite(loss.item())

    def test_fused_and_unfused_training_match(self, rng):
        """Four optimizer steps, fused vs unfused: same final weights."""
        vocabs = {"user": 30, "item": 20}
        dims = {"user": 3, "item": 2}
        batches = [
            {name: rng.integers(0, size, size=16) for name, size in vocabs.items()}
            for _ in range(4)
        ]
        labels = (rng.random(16) < 0.5).astype(float)

        def train(fused):
            model = _BankAndHead(vocabs, dims, np.random.default_rng(21))
            if fused:
                fuse(model)
            optimizer = Adam(model.parameters(), lr=1e-2)
            with use_sparse_grads(True):
                for features in batches:
                    optimizer.zero_grad()
                    loss = binary_cross_entropy_with_logits(
                        model(features), labels
                    )
                    loss.backward()
                    optimizer.step()
            return model.state_dict()

        fused_state = train(True)
        plain_state = train(False)
        assert fused_state.keys() == plain_state.keys()
        for key, fused_value in fused_state.items():
            np.testing.assert_allclose(
                fused_value, plain_state[key], rtol=1e-9, atol=1e-12
            )
