"""Integration: train → save → load → serve roundtrip, plus sweeps."""

import numpy as np
import pytest

from repro.core import ATNN, ATNNTrainer, PopularityPredictor, TowerConfig
from repro.experiments.sweeps import run_atnn_sweep
from repro.serving import EngineConfig, RealTimeEngine
from repro.utils import load_model, save_model


class TestSaveLoadServe:
    def test_full_roundtrip(self, tiny_tmall_world, tiny_tower_config, tmp_path):
        world = tiny_tmall_world
        train = world.interactions.subset(np.arange(3000))

        model = ATNN(
            world.schema, tiny_tower_config, rng=np.random.default_rng(1)
        )
        ATNNTrainer(epochs=1, batch_size=512, lr=2e-3).fit(model, train)

        path = tmp_path / "atnn.npz"
        save_model(model, path)

        # A differently initialised model becomes identical after loading.
        clone = ATNN(
            world.schema, tiny_tower_config, rng=np.random.default_rng(999)
        )
        load_model(clone, path)

        predictor_a = PopularityPredictor(model)
        predictor_b = PopularityPredictor(clone)
        group = world.active_user_group(0.2)
        predictor_a.fit_user_group(group)
        predictor_b.fit_user_group(group)
        np.testing.assert_allclose(
            predictor_a.score_items(world.new_items),
            predictor_b.score_items(world.new_items),
        )

        # The loaded model also serves through the real-time engine.
        engine = RealTimeEngine(
            clone, world.new_items, group, EngineConfig(warm_view_threshold=5)
        )
        top = engine.top_promotion_candidates(5)
        assert len(top) == 5

    def test_shared_embeddings_survive_roundtrip(
        self, tiny_tmall_world, tiny_tower_config, tmp_path
    ):
        """Sharing is structural: after load, generator and encoder still
        reference one table and stay numerically in sync."""
        world = tiny_tmall_world
        model = ATNN(
            world.schema, tiny_tower_config, rng=np.random.default_rng(1)
        )
        path = tmp_path / "atnn.npz"
        save_model(model, path)
        clone = ATNN(
            world.schema, tiny_tower_config, rng=np.random.default_rng(2)
        )
        load_model(clone, path)
        assert clone.generator.embeddings is clone.item_encoder.embeddings
        np.testing.assert_allclose(
            clone.generator.embeddings.table("item_brand").weight.data,
            model.generator.embeddings.table("item_brand").weight.data,
        )


class TestSweeps:
    def test_grid_covers_product(self, tiny_tmall_world):
        result = run_atnn_sweep(
            {"lr": [2e-3], "num_cross_layers": [0, 1]},
            preset="smoke",
            world=tiny_tmall_world,
        )
        assert len(result.points) == 2
        labels = {point.label() for point in result.points}
        assert any("num_cross_layers=0" in label for label in labels)

    def test_best_selection(self, tiny_tmall_world):
        result = run_atnn_sweep(
            {"lr": [2e-3], "num_cross_layers": [1]},
            preset="smoke",
            world=tiny_tmall_world,
        )
        best = result.best()
        assert best.auc_generator == max(p.auc_generator for p in result.points)

    def test_render(self, tiny_tmall_world):
        result = run_atnn_sweep(
            {"lr": [2e-3]}, preset="smoke", world=tiny_tmall_world
        )
        assert "Cold-start AUC" in result.render()

    def test_unknown_parameter_rejected(self, tiny_tmall_world):
        with pytest.raises(ValueError):
            run_atnn_sweep({"dropout": [0.1]}, world=tiny_tmall_world)

    def test_empty_grid_rejected(self, tiny_tmall_world):
        with pytest.raises(ValueError):
            run_atnn_sweep({}, world=tiny_tmall_world)
