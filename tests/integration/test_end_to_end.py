"""End-to-end integration tests on miniature worlds.

These exercise the complete pipelines behind each paper table at a size
where the full run takes seconds.  Shape assertions here are *weak*
(training signal exists, structures line up); the benchmark harness makes
the strong paper-shape assertions on the default preset.
"""

import numpy as np
import pytest

from repro.core import ATNN, ATNNTrainer, PopularityPredictor, TowerConfig
from repro.data import train_test_split
from repro.experiments import (
    build_eleme_artifacts,
    build_tmall_artifacts,
    run_complexity,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)
from repro.metrics import roc_auc


@pytest.fixture(scope="module")
def tmall_artifacts():
    return build_tmall_artifacts("smoke", keep_individual_users=True)


@pytest.fixture(scope="module")
def eleme_artifacts():
    return build_eleme_artifacts("smoke", adversarial=True)


class TestTable1Pipeline:
    @pytest.fixture(scope="class")
    def result(self, tmall_artifacts):
        return run_table1(
            "smoke",
            world=tmall_artifacts.world,
            models=["TNN-DCN", "ATNN"],
        )

    def test_rows_present(self, result):
        assert {row.model for row in result.rows} == {"TNN-DCN", "ATNN"}

    def test_aucs_beat_chance(self, result):
        for row in result.rows:
            assert row.auc_complete > 0.55

    def test_atnn_degrades_less_than_baseline(self, result):
        atnn = result.row("ATNN")
        baseline = result.row("TNN-DCN")
        assert atnn.degradation > baseline.degradation

    def test_render_contains_models(self, result):
        rendered = result.render()
        assert "ATNN" in rendered and "Degradation" in rendered

    def test_as_dict_roundtrip(self, result):
        data = result.as_dict()
        assert data["ATNN"]["complete"] == result.row("ATNN").auc_complete

    def test_unknown_model_rejected(self, tmall_artifacts):
        with pytest.raises(ValueError):
            run_table1("smoke", world=tmall_artifacts.world, models=["SVM"])


class TestTable2Pipeline:
    @pytest.fixture(scope="class")
    def result(self, tmall_artifacts):
        return run_table2("smoke", artifacts=tmall_artifacts)

    def test_panel_shape(self, result):
        assert result.panel.group_labels[-1] == "Average"
        assert len(result.panel.column("IPV", 7)) == 6

    def test_top_group_beats_average(self, result):
        for metric in ("IPV", "AtF", "GMV"):
            for day in (7, 14, 30):
                assert result.top_group_lift(metric, day) > 1.0

    def test_render_layout(self, result):
        rendered = result.render()
        assert "30-day GMV" in rendered and "0-20" in rendered


class TestTable3Pipeline:
    @pytest.fixture(scope="class")
    def result(self, tmall_artifacts):
        return run_table3("smoke", artifacts=tmall_artifacts)

    def test_atnn_beats_expert(self, result):
        assert result.atnn_days < result.expert_days

    def test_improvement_consistent(self, result):
        expected = (result.expert_days - result.atnn_days) / result.expert_days
        assert result.improvement == pytest.approx(expected)

    def test_selection_size(self, result, tmall_artifacts):
        assert result.n_selected == round(
            0.2 * len(tmall_artifacts.world.new_items)
        )


class TestTable4And5Pipeline:
    @pytest.fixture(scope="class")
    def table4(self, eleme_artifacts):
        return run_table4(
            "smoke", world=eleme_artifacts.world, atnn_artifacts=eleme_artifacts
        )

    def test_atnn_improves_both_maes(self, table4):
        assert table4.atnn_vppv_mae < table4.tnn_dcn_vppv_mae
        assert table4.atnn_gmv_mae < table4.tnn_dcn_gmv_mae

    def test_improvements_positive(self, table4):
        assert table4.vppv_improvement > 0
        assert table4.gmv_improvement > 0

    def test_table5_runs_and_reports(self, eleme_artifacts):
        result = run_table5(
            "smoke", world=eleme_artifacts.world, artifacts=eleme_artifacts
        )
        assert result.n_selected > 0
        assert result.expert_vppv > 0 and result.atnn_vppv > 0
        assert "ATNN" in result.render()


class TestComplexityPipeline:
    def test_flat_mean_vector_cost(self, tmall_artifacts):
        result = run_complexity(
            "smoke", artifacts=tmall_artifacts, user_counts=(100, 400), repeats=2
        )
        assert len(result.rows) == 2
        small, large = result.rows
        # Pairwise cost grows with users; mean-vector cost must not.
        assert large.pairwise_seconds_per_item > small.pairwise_seconds_per_item
        assert large.mean_vector_seconds_per_item < small.pairwise_seconds_per_item

    def test_rank_agreement_high(self, tmall_artifacts):
        result = run_complexity(
            "smoke", artifacts=tmall_artifacts, user_counts=(100,), repeats=1
        )
        assert result.rank_agreement > 0.9


class TestArtifactsPipeline:
    def test_tmall_artifacts_trained(self, tmall_artifacts):
        assert tmall_artifacts.test_auc_encoder > 0.55
        assert tmall_artifacts.test_auc_generator > 0.55
        assert tmall_artifacts.predictor.mean_user_vector is not None

    def test_eleme_artifacts_history(self, eleme_artifacts):
        assert eleme_artifacts.history.n_epochs > 0
        assert "valid_mae_vppv" in eleme_artifacts.history.records[-1]

    def test_popularity_scores_correlate_with_truth(self, tmall_artifacts):
        world = tmall_artifacts.world
        scores = tmall_artifacts.predictor.score_items(world.new_items)
        corr = np.corrcoef(scores, world.new_item_popularity)[0, 1]
        assert corr > 0.3
