"""Tests for the real-time serving simulation."""

import numpy as np
import pytest

from repro.core import ATNN, TowerConfig
from repro.serving import (
    EngineConfig,
    Event,
    EventKind,
    ItemStatisticsStore,
    RealTimeEngine,
    generate_event_stream,
)


@pytest.fixture(scope="module")
def serving_model(tiny_tmall_world):
    return ATNN(
        tiny_tmall_world.schema,
        TowerConfig(vector_dim=8, deep_dims=(16, 8), head_dims=(16,),
                    num_cross_layers=1),
        rng=np.random.default_rng(5),
    )


@pytest.fixture
def engine(tiny_tmall_world, serving_model):
    return RealTimeEngine(
        serving_model,
        tiny_tmall_world.new_items,
        tiny_tmall_world.active_user_group(0.2),
        EngineConfig(warm_view_threshold=5),
    )


class TestEvents:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            Event("swipe", 0, 0, 0.0)
        with pytest.raises(ValueError):
            Event(EventKind.VIEW, -1, 0, 0.0)

    def test_stream_generation(self, tiny_tmall_world, rng):
        events = generate_event_stream(
            tiny_tmall_world, np.arange(50), n_events=200, rng=rng
        )
        # Views plus funnel events.
        views = [e for e in events if e.kind == EventKind.VIEW]
        assert len(views) == 200
        assert len(events) > 200
        assert all(0 <= e.item_id < 50 for e in events)

    def test_popular_items_get_more_views(self, tiny_tmall_world, rng):
        world = tiny_tmall_world
        indices = np.arange(len(world.new_items))
        events = generate_event_stream(world, indices, n_events=5000, rng=rng)
        counts = np.zeros(indices.size)
        for event in events:
            if event.kind == EventKind.VIEW:
                counts[event.item_id] += 1
        corr = np.corrcoef(counts, world.new_item_popularity)[0, 1]
        assert corr > 0.3

    def test_invalid_args_rejected(self, tiny_tmall_world, rng):
        with pytest.raises(ValueError):
            generate_event_stream(tiny_tmall_world, [], 10, rng)
        with pytest.raises(ValueError):
            generate_event_stream(tiny_tmall_world, [0], 0, rng)


class TestStatisticsStore:
    def test_counters_update(self):
        store = ItemStatisticsStore(3)
        store.ingest(
            [
                Event(EventKind.VIEW, 0, 1, 0.0),
                Event(EventKind.VIEW, 0, 2, 1.0),
                Event(EventKind.CLICK, 0, 1, 2.0),
                Event(EventKind.PURCHASE, 0, 1, 3.0),
            ]
        )
        counters = store.counters(0)
        assert counters.views == 2
        assert counters.clicks == 1
        assert counters.purchases == 1
        assert counters.ctr == 0.5
        assert len(counters.unique_users) == 2

    def test_out_of_range_slot_rejected(self):
        store = ItemStatisticsStore(2)
        with pytest.raises(IndexError):
            store.ingest([Event(EventKind.VIEW, 5, 0, 0.0)])

    def test_warm_slots_threshold(self):
        store = ItemStatisticsStore(3)
        store.ingest([Event(EventKind.VIEW, 1, 0, 0.0)] * 10)
        np.testing.assert_array_equal(store.warm_slots(5), [1])
        assert store.warm_slots(11).size == 0

    def test_feature_columns_schema_names(self):
        store = ItemStatisticsStore(4)
        store.ingest([Event(EventKind.VIEW, 0, 0, 0.0)] * 3)
        columns = store.feature_columns(np.arange(4))
        assert set(columns) == set(ItemStatisticsStore.STAT_COLUMNS)
        for values in columns.values():
            assert values.shape == (4,)

    def test_untrafficked_slots_zero(self):
        store = ItemStatisticsStore(3)
        store.ingest([Event(EventKind.VIEW, 0, 0, 0.0)] * 5)
        columns = store.feature_columns([1, 2])
        for values in columns.values():
            np.testing.assert_allclose(values, 0.0)

    def test_empty_store_all_zero(self):
        store = ItemStatisticsStore(2)
        columns = store.feature_columns([0, 1])
        for values in columns.values():
            np.testing.assert_allclose(values, 0.0)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            ItemStatisticsStore(0)
        with pytest.raises(ValueError):
            ItemStatisticsStore(2).warm_slots(0)


class TestRealTimeEngine:
    def test_cold_scores_are_probabilities(self, engine, tiny_tmall_world):
        scores = engine.refresh()
        assert scores.shape == (len(tiny_tmall_world.new_items),)
        assert scores.min() > 0.0 and scores.max() < 1.0

    def test_lazy_refresh_on_ingest(self, engine, tiny_tmall_world, rng):
        first = engine.scores()
        events = generate_event_stream(
            tiny_tmall_world, np.arange(20), n_events=300, rng=rng
        )
        engine.ingest(events)
        second = engine.scores()  # triggers a refresh because stale
        assert engine.refreshes == 2
        assert not np.allclose(first, second)

    def test_warm_items_use_encoder_path(self, engine, tiny_tmall_world, rng):
        cold = engine.refresh().copy()
        events = generate_event_stream(
            tiny_tmall_world, np.array([3]), n_events=200, rng=rng
        )
        engine.ingest(events)
        warm = engine.refresh()
        # Slot 3 is warm and re-scored through the encoder; a slot with no
        # traffic keeps its generator score.
        assert warm[3] != cold[3]
        untouched = [s for s in range(len(cold)) if s != 3][0]
        assert warm[untouched] == pytest.approx(cold[untouched])

    def test_top_promotion_candidates_sorted(self, engine):
        top = engine.top_promotion_candidates(5)
        scores = engine.scores()
        assert len(top) == 5
        assert np.all(np.diff(scores[top]) <= 0)

    def test_top_k_validation(self, engine):
        with pytest.raises(ValueError):
            engine.top_promotion_candidates(0)

    def test_recommend_for_user(self, engine, tiny_tmall_world):
        user_row = {
            name: tiny_tmall_world.users[name][:1]
            for name in tiny_tmall_world.schema.all_column_names("user")
        }
        recommendations = engine.recommend_for_user(user_row, k=4)
        assert len(recommendations) == 4
        assert len(set(recommendations)) == 4

    def test_recommend_missing_features_rejected(self, engine):
        with pytest.raises(KeyError):
            engine.recommend_for_user({"user_id": np.array([0])}, k=3)

    def test_recommendations_personalised(self, engine, tiny_tmall_world):
        """Two users from different segments should not always agree."""
        world = tiny_tmall_world
        segments = world.user_segments
        user_a = int(np.flatnonzero(segments == segments[0])[0])
        user_b = int(np.flatnonzero(segments != segments[0])[0])
        rows = []
        for user in (user_a, user_b):
            rows.append(
                {
                    name: world.users[name][user : user + 1]
                    for name in world.schema.all_column_names("user")
                }
            )
        rec_a = engine.recommend_for_user(rows[0], k=10)
        rec_b = engine.recommend_for_user(rows[1], k=10)
        assert not np.array_equal(rec_a, rec_b)

    def test_invalid_engine_config_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(warm_view_threshold=0)


class TestIncrementalRefresh:
    def test_incremental_matches_full_for_touched_slots(
        self, engine, tiny_tmall_world, rng
    ):
        engine.refresh()
        events = generate_event_stream(
            tiny_tmall_world, np.array([3, 8]), n_events=250, rng=rng
        )
        engine.ingest(events)
        incremental = engine.refresh().copy()
        # A full pass from the same store state is the exact reference.
        full = engine.refresh(full=True)
        np.testing.assert_allclose(incremental[[3, 8]], full[[3, 8]])

    def test_incremental_rescored_only_dirty_warm_slots(
        self, engine, tiny_tmall_world, rng
    ):
        from repro.obs.metrics import MetricsRegistry, use_registry

        registry = MetricsRegistry()
        with use_registry(registry):
            engine.refresh()
            events = generate_event_stream(
                tiny_tmall_world, np.array([3]), n_events=200, rng=rng
            )
            engine.ingest(events)
            engine.refresh()
        rescored = registry.counter("engine.slots_rescored").value
        # First refresh had no warm slots; second re-scored only slot 3.
        assert rescored == 1

    def test_cold_dirty_slots_keep_generator_scores(
        self, engine, tiny_tmall_world, rng
    ):
        """Events below the warm threshold don't perturb generator scores."""
        cold = engine.refresh().copy()
        events = [Event(EventKind.VIEW, item_id=6, user_id=0, timestamp=0.0)]
        engine.ingest(events)
        second = engine.scores()
        np.testing.assert_allclose(second, cold)

    def test_full_refresh_reuses_cached_generator_vectors(self, engine):
        engine.refresh()
        first_generator = engine._generator_vectors
        engine.refresh(full=True)
        # Recomputed (same values) but the cache slot stays populated.
        assert engine._generator_vectors is not None
        np.testing.assert_allclose(engine._generator_vectors, first_generator)


class TestTopKCache:
    def test_top_k_full_size(self, engine):
        scores = engine.scores()
        order = engine.top_k(scores.size)
        assert len(order) == scores.size
        assert np.all(np.diff(scores[order]) <= 0)
        assert set(order.tolist()) == set(range(scores.size))

    def test_top_k_matches_promotion_candidates(self, engine):
        np.testing.assert_array_equal(
            engine.top_k(7), engine.top_promotion_candidates(7)
        )

    def test_smaller_k_served_from_cached_order(self, engine):
        order_9 = engine.top_k(9)
        cached = engine._order
        assert cached is not None and engine._order_k == 9
        top_3 = engine.top_k(3)
        assert engine._order is cached  # k <= cached_k: pure slice
        np.testing.assert_array_equal(top_3, order_9[:3])

    def test_larger_k_recomputes(self, engine):
        engine.top_k(3)
        cached = engine._order
        engine.top_k(9)
        assert engine._order is not cached
        assert engine._order_k == 9

    def test_order_invalidated_by_warm_dirty_refresh(
        self, engine, tiny_tmall_world, rng
    ):
        engine.top_k(3)
        events = generate_event_stream(
            tiny_tmall_world, np.array([3]), n_events=200, rng=rng
        )
        engine.ingest(events)
        engine.scores()  # partial refresh re-scores slot 3
        assert engine._order is None  # invalidated: scores changed
        engine.top_k(3)
        assert engine._order is not None

    def test_order_survives_cold_only_ingest(self, engine, tiny_tmall_world):
        """Events below the warm threshold leave scores — and the cached
        top-k order — untouched."""
        engine.top_k(5)
        cached = engine._order
        engine.ingest([Event(EventKind.VIEW, item_id=6, user_id=0, timestamp=0.0)])
        engine.scores()  # refresh runs, but no slot was re-scored
        assert engine._order is cached

    def test_top_k_validation_bounds(self, engine):
        scores = engine.scores()
        with pytest.raises(ValueError):
            engine.top_k(0)
        with pytest.raises(ValueError):
            engine.top_k(scores.size + 1)


class TestMIPSIndexServing:
    """The engine's retrieval queries route through the MIPS index."""

    def test_index_built_on_first_refresh(self, engine):
        assert engine.index is None
        engine.refresh()
        assert engine.index is not None
        assert len(engine.index) == len(engine.catalogue)

    def test_top_k_matches_score_order(self, engine):
        scores = engine.scores()
        top = engine.top_k(10)
        np.testing.assert_allclose(
            scores[top], np.sort(scores)[::-1][:10]
        )

    def test_recommend_matches_exact_personal_scores(
        self, engine, tiny_tmall_world
    ):
        """The index-served personalised top-k equals the dense ranking."""
        from repro.data.synthetic.common import sigmoid

        world = tiny_tmall_world
        user_row = {
            name: world.users[name][:1]
            for name in world.schema.all_column_names("user")
        }
        recommendations = engine.recommend_for_user(user_row, k=6)
        # Dense reference: sigmoid(iv @ (w ⊙ u) + b), ranked descending.
        model = engine.model
        from repro.nn.tensor import no_grad

        model.eval()
        with no_grad():
            user_vector = model.user_vectors(user_row).data[0]
        head = model.scoring_head
        personal = sigmoid(
            engine._item_vectors @ (head.weight.data * user_vector)
            + head.bias.data[0]
        )
        np.testing.assert_allclose(
            personal[recommendations], np.sort(personal)[::-1][:6]
        )

    def test_ivf_engine_with_full_probe_matches_bruteforce(
        self, tiny_tmall_world, serving_model, rng
    ):
        world = tiny_tmall_world
        exact = RealTimeEngine(
            serving_model,
            world.new_items,
            world.active_user_group(0.2),
            EngineConfig(warm_view_threshold=5),
        )
        approx = RealTimeEngine(
            serving_model,
            world.new_items,
            world.active_user_group(0.2),
            EngineConfig(
                warm_view_threshold=5,
                index_kind="ivf",
                ivf_nlist=8,
                ivf_nprobe=8,  # full probe: exact
            ),
        )
        events = generate_event_stream(
            world, np.arange(30), n_events=400, rng=rng
        )
        for eng in (exact, approx):
            eng.refresh()
            eng.ingest(events)
        assert set(exact.top_k(12).tolist()) == set(approx.top_k(12).tolist())

    def test_dirty_slot_refresh_updates_index_rows_in_place(
        self, engine, tiny_tmall_world, rng
    ):
        """After a partial refresh the index rows equal the live vectors —
        no rebuild, no stale entries."""
        engine.refresh()
        index_before = engine.index
        events = generate_event_stream(
            tiny_tmall_world, np.array([3, 8]), n_events=250, rng=rng
        )
        engine.ingest(events)
        engine.refresh()
        assert engine.index is index_before  # same object, updated in place
        np.testing.assert_allclose(
            np.asarray(engine.index.vectors, dtype=np.float64),
            engine._item_vectors,
        )

    def test_invalid_index_config_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(index_kind="faiss")
        with pytest.raises(ValueError):
            EngineConfig(index_kind="ivf", ivf_nprobe=0)


class TestAddArrivals:
    """Catalogue growth: new cold items are searchable immediately."""

    def _arrivals(self, world, rows):
        names = world.schema.all_column_names("item_profile")
        return type(world.new_items)(
            {name: world.items[name][rows] for name in names}
        )

    def test_new_items_searchable_without_refresh(
        self, engine, tiny_tmall_world
    ):
        engine.refresh()
        n_before = len(engine.catalogue)
        refreshes_before = engine.refreshes
        arrivals = self._arrivals(tiny_tmall_world, np.arange(4))
        slots = engine.add_arrivals(arrivals)
        np.testing.assert_array_equal(
            slots, np.arange(n_before, n_before + 4)
        )
        assert len(engine.catalogue) == n_before + 4
        assert len(engine.index) == n_before + 4
        assert engine.scores().shape == (n_before + 4,)
        assert engine.refreshes == refreshes_before  # no refresh happened
        # The full ranking now includes the new slots.
        order = engine.top_k(n_before + 4)
        assert set(slots.tolist()) <= set(order.tolist())

    def test_new_item_scores_match_generator_path(
        self, engine, tiny_tmall_world
    ):
        """add_arrivals scores equal what a full refresh would compute."""
        engine.refresh()
        arrivals = self._arrivals(tiny_tmall_world, np.arange(6))
        slots = engine.add_arrivals(arrivals)
        incremental = engine.scores()[slots].copy()
        full = engine.refresh(full=True)[slots]
        np.testing.assert_allclose(incremental, full)

    def test_store_grows_and_ingests_for_new_slots(
        self, engine, tiny_tmall_world
    ):
        engine.refresh()
        slots = engine.add_arrivals(self._arrivals(tiny_tmall_world, [0]))
        new_slot = int(slots[0])
        engine.ingest(
            [Event(EventKind.VIEW, item_id=new_slot, user_id=1, timestamp=0.0)]
        )
        assert engine.store.counters(new_slot).views == 1

    def test_arrivals_before_first_refresh(self, engine, tiny_tmall_world):
        slots = engine.add_arrivals(self._arrivals(tiny_tmall_world, [0, 1]))
        scores = engine.scores()  # first refresh covers everything
        assert scores.shape == (len(engine.catalogue),)
        assert len(engine.index) == len(engine.catalogue)
        assert slots[-1] == len(engine.catalogue) - 1

    def test_missing_profile_columns_rejected(self, engine, tiny_tmall_world):
        from repro.data.dataset import FeatureTable

        engine.refresh()
        with pytest.raises(KeyError):
            engine.add_arrivals(FeatureTable({"brand_id": np.array([0])}))

    def test_store_grow_validation(self):
        with pytest.raises(ValueError):
            ItemStatisticsStore(3).grow(0)
