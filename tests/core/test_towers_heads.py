"""Tower and scoring-head tests."""

import numpy as np
import pytest

from repro.core import ConcatMLPHead, Tower, TowerConfig, WeightedDotHead
from repro.data import GROUP_ITEM_PROFILE, GROUP_ITEM_STAT, GROUP_USER
from repro.nn import Tensor
from repro.nn.layers import FeatureEmbeddings, MLP


def _features(world, table, groups, n=6):
    names = world.schema.all_column_names(*groups)
    return {name: table[name][:n] for name in names}


class TestTowerConfig:
    def test_paper_dimensions(self):
        config = TowerConfig.paper()
        assert config.vector_dim == 128
        assert config.deep_dims == (512, 256, 128)
        assert config.head_dims == (256, 256, 256)

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            TowerConfig(vector_dim=0)
        with pytest.raises(ValueError):
            TowerConfig(deep_dims=())
        with pytest.raises(ValueError):
            TowerConfig(num_cross_layers=-1)


class TestTower:
    def test_output_shape(self, tiny_tmall_world, tiny_tower_config, rng):
        world = tiny_tmall_world
        tower = Tower(world.schema, (GROUP_USER,), tiny_tower_config, rng=rng)
        out = tower(_features(world, world.users, (GROUP_USER,)))
        assert out.shape == (6, tiny_tower_config.vector_dim)

    def test_item_tower_consumes_both_groups(
        self, tiny_tmall_world, tiny_tower_config, rng
    ):
        world = tiny_tmall_world
        tower = Tower(
            world.schema,
            (GROUP_ITEM_PROFILE, GROUP_ITEM_STAT),
            tiny_tower_config,
            rng=rng,
        )
        out = tower(
            _features(world, world.items, (GROUP_ITEM_PROFILE, GROUP_ITEM_STAT))
        )
        assert out.shape == (6, tiny_tower_config.vector_dim)

    def test_fc_variant_has_no_cross_layers(
        self, tiny_tmall_world, rng
    ):
        config = TowerConfig(
            vector_dim=8, deep_dims=(16,), head_dims=(8,), num_cross_layers=0
        )
        tower = Tower(tiny_tmall_world.schema, (GROUP_USER,), config, rng=rng)
        assert isinstance(tower.encoder, MLP)

    def test_missing_numeric_feature_rejected(
        self, tiny_tmall_world, tiny_tower_config, rng
    ):
        world = tiny_tmall_world
        tower = Tower(world.schema, (GROUP_USER,), tiny_tower_config, rng=rng)
        features = _features(world, world.users, (GROUP_USER,))
        del features["user_activity"]
        with pytest.raises(KeyError):
            tower(features)

    def test_shared_embedding_bank_is_same_object(
        self, tiny_tmall_world, tiny_tower_config, rng
    ):
        world = tiny_tmall_world
        bank = FeatureEmbeddings(
            world.schema.vocab_sizes(GROUP_ITEM_PROFILE),
            world.schema.embedding_dims(GROUP_ITEM_PROFILE),
            rng=rng,
        )
        a = Tower(
            world.schema,
            (GROUP_ITEM_PROFILE, GROUP_ITEM_STAT),
            tiny_tower_config,
            embeddings=bank,
            rng=rng,
        )
        b = Tower(
            world.schema, (GROUP_ITEM_PROFILE,), tiny_tower_config,
            embeddings=bank, rng=rng,
        )
        assert a.embeddings is b.embeddings

    def test_mismatched_shared_bank_rejected(
        self, tiny_tmall_world, tiny_tower_config, rng
    ):
        world = tiny_tmall_world
        bank = FeatureEmbeddings({"bogus": 3}, {"bogus": 2}, rng=rng)
        with pytest.raises(ValueError):
            Tower(
                world.schema, (GROUP_ITEM_PROFILE,), tiny_tower_config,
                embeddings=bank, rng=rng,
            )


class TestWeightedDotHead:
    def test_probability_range(self, rng):
        head = WeightedDotHead(8, rng=rng)
        out = head(Tensor(rng.normal(size=(5, 8))), Tensor(rng.normal(size=(5, 8))))
        assert out.data.min() > 0.0 and out.data.max() < 1.0

    def test_logits_linear_in_user_vector(self, rng):
        """The property the O(1) mean-user-vector trick relies on."""
        head = WeightedDotHead(4, rng=rng)
        items = Tensor(rng.normal(size=(3, 4)))
        u1 = rng.normal(size=(3, 4))
        u2 = rng.normal(size=(3, 4))
        mean_logit = head.logits(items, Tensor((u1 + u2) / 2)).data
        averaged = (
            head.logits(items, Tensor(u1)).data + head.logits(items, Tensor(u2)).data
        ) / 2
        np.testing.assert_allclose(mean_logit, averaged, atol=1e-10)

    def test_shape_mismatch_rejected(self, rng):
        head = WeightedDotHead(4, rng=rng)
        with pytest.raises(ValueError):
            head(Tensor(np.zeros((2, 4))), Tensor(np.zeros((2, 5))))

    def test_invalid_dim_rejected(self, rng):
        with pytest.raises(ValueError):
            WeightedDotHead(0, rng=rng)


class TestConcatMLPHead:
    def test_scalar_output(self, rng):
        head = ConcatMLPHead(6, rng=rng)
        out = head(Tensor(rng.normal(size=(4, 6))), Tensor(rng.normal(size=(4, 6))))
        assert out.shape == (4,)

    def test_sigmoid_output_bounded(self, rng):
        head = ConcatMLPHead(6, output_activation="sigmoid", rng=rng)
        out = head(Tensor(rng.normal(size=(9, 6))), Tensor(rng.normal(size=(9, 6))))
        assert out.data.min() >= 0.0 and out.data.max() <= 1.0

    def test_set_output_bias_shifts_output(self, rng):
        head = ConcatMLPHead(6, rng=rng)
        items = Tensor(rng.normal(size=(50, 6)))
        users = Tensor(rng.normal(size=(50, 6)))
        before = head(items, users).data
        head.set_output_bias(10.0)  # initial bias is zero
        after = head(items, users).data
        np.testing.assert_allclose(after - before, 10.0, atol=1e-10)

    def test_shape_mismatch_rejected(self, rng):
        head = ConcatMLPHead(4, rng=rng)
        with pytest.raises(ValueError):
            head(Tensor(np.zeros((2, 4))), Tensor(np.zeros((3, 4))))
