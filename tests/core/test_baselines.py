"""Tests for the related-work CTR baseline family."""

import numpy as np
import pytest

from repro.baselines import (
    DeepFM,
    FactorizationMachine,
    LogisticRegressionCTR,
    WideAndDeep,
)
from repro.data import train_test_split
from repro.metrics import roc_auc
from repro.nn import Tensor, check_gradients

ALL_BASELINES = [
    (LogisticRegressionCTR, {}),
    (FactorizationMachine, {"factor_dim": 4}),
    (WideAndDeep, {"hidden_dims": (16,), "embedding_dim": 4}),
    (DeepFM, {"factor_dim": 4, "hidden_dims": (16,)}),
]


@pytest.fixture(scope="module")
def split(tiny_tmall_world):
    rng = np.random.default_rng(0)
    train, test = train_test_split(tiny_tmall_world.interactions, 0.2, rng)
    return train, test


class TestCommonBehaviour:
    @pytest.mark.parametrize("cls,kwargs", ALL_BASELINES)
    def test_probabilities_in_unit_interval(
        self, cls, kwargs, tiny_tmall_world, split
    ):
        train, _ = split
        model = cls(tiny_tmall_world.schema, rng=np.random.default_rng(1), **kwargs)
        probabilities = model.predict_proba(
            {name: col[:32] for name, col in train.features.items()}
        )
        assert probabilities.shape == (32,)
        assert probabilities.min() > 0.0 and probabilities.max() < 1.0

    @pytest.mark.parametrize("cls,kwargs", ALL_BASELINES)
    def test_training_beats_chance(self, cls, kwargs, tiny_tmall_world, split):
        train, test = split
        model = cls(tiny_tmall_world.schema, rng=np.random.default_rng(1), **kwargs)
        losses = model.fit(train, epochs=2, batch_size=256, lr=5e-3)
        assert losses[-1] <= losses[0] + 0.02
        auc = roc_auc(test.label("ctr"), model.predict_proba(test.features))
        assert auc > 0.55

    @pytest.mark.parametrize("cls,kwargs", ALL_BASELINES)
    def test_batched_prediction_consistent(
        self, cls, kwargs, tiny_tmall_world, split
    ):
        train, _ = split
        model = cls(tiny_tmall_world.schema, rng=np.random.default_rng(1), **kwargs)
        features = {name: col[:40] for name, col in train.features.items()}
        np.testing.assert_allclose(
            model.predict_proba(features, batch_size=40),
            model.predict_proba(features, batch_size=7),
        )


class TestFTRLTraining:
    def test_ftrl_path_learns(self, tiny_tmall_world, split):
        train, test = split
        model = LogisticRegressionCTR(
            tiny_tmall_world.schema, rng=np.random.default_rng(1)
        )
        model.fit(train, epochs=3, batch_size=256, lr=0.5, optimizer="ftrl")
        auc = roc_auc(test.label("ctr"), model.predict_proba(test.features))
        assert auc > 0.55

    def test_ftrl_l1_sparsifies_weights(self, tiny_tmall_world, split):
        train, _ = split
        dense = LogisticRegressionCTR(
            tiny_tmall_world.schema, rng=np.random.default_rng(1)
        )
        sparse = LogisticRegressionCTR(
            tiny_tmall_world.schema, rng=np.random.default_rng(1)
        )
        dense.fit(train, epochs=1, batch_size=256, lr=0.5, optimizer="ftrl")
        sparse.fit(
            train, epochs=1, batch_size=256, lr=0.5, optimizer="ftrl", l1=0.5
        )

        def zero_fraction(model):
            weights = np.concatenate([p.data.reshape(-1) for p in model.parameters()])
            return (weights == 0.0).mean()

        assert zero_fraction(sparse) > zero_fraction(dense)

    def test_unknown_optimizer_rejected(self, tiny_tmall_world, split):
        train, _ = split
        model = LogisticRegressionCTR(
            tiny_tmall_world.schema, rng=np.random.default_rng(1)
        )
        with pytest.raises(ValueError):
            model.fit(train, epochs=1, optimizer="sgd")


class TestLogisticRegression:
    def test_missing_numeric_rejected(self, tiny_tmall_world, split):
        train, _ = split
        model = LogisticRegressionCTR(
            tiny_tmall_world.schema, rng=np.random.default_rng(1)
        )
        features = {name: col[:8] for name, col in train.features.items()}
        del features["user_activity"]
        with pytest.raises(KeyError):
            model.predict_proba(features)

    def test_group_restriction(self, tiny_tmall_world, split):
        """A profile-only LR must ignore statistic columns entirely."""
        train, _ = split
        model = LogisticRegressionCTR(
            tiny_tmall_world.schema,
            groups=("user", "item_profile"),
            rng=np.random.default_rng(1),
        )
        features = {name: col[:16] for name, col in train.features.items()}
        base = model.predict_proba(features)
        features["stat_log_pv"] = features["stat_log_pv"] + 100.0
        np.testing.assert_allclose(model.predict_proba(features), base)


class TestFactorizationMachine:
    def test_interaction_term_matches_naive(self, tiny_tmall_world, split):
        """The (sum^2 - sum-of-squares)/2 identity equals pairwise dots."""
        train, _ = split
        model = FactorizationMachine(
            tiny_tmall_world.schema, factor_dim=3, rng=np.random.default_rng(1)
        )
        features = {name: col[:5] for name, col in train.features.items()}
        fields = [f.data for f in model._field_vectors(features)]
        expected = np.zeros(5)
        for i in range(len(fields)):
            for j in range(i + 1, len(fields)):
                expected += np.einsum("bd,bd->b", fields[i], fields[j])
        np.testing.assert_allclose(
            model.interaction_term(features).data, expected, rtol=1e-8
        )

    def test_invalid_factor_dim_rejected(self, tiny_tmall_world):
        with pytest.raises(ValueError):
            FactorizationMachine(tiny_tmall_world.schema, factor_dim=0)

    def test_gradients_flow_to_factors(self, tiny_tmall_world, split):
        train, _ = split
        model = FactorizationMachine(
            tiny_tmall_world.schema, factor_dim=2, rng=np.random.default_rng(1)
        )
        features = {name: col[:4] for name, col in train.features.items()}
        loss = model.interaction_term(features).sum()
        loss.backward()
        table = getattr(model, "v_item_brand")
        assert table.weight.grad is not None


class TestDeepModels:
    def test_wide_and_deep_sums_two_logits(self, tiny_tmall_world, split):
        train, _ = split
        model = WideAndDeep(
            tiny_tmall_world.schema, hidden_dims=(8,), embedding_dim=3,
            rng=np.random.default_rng(1),
        )
        features = {name: col[:6] for name, col in train.features.items()}
        total = model.logits(features).data
        wide = model.wide.logits(features).data
        deep = model._deep_logits(features).data
        np.testing.assert_allclose(total, wide + deep)

    def test_deepfm_shares_embeddings_with_fm(self, tiny_tmall_world):
        model = DeepFM(
            tiny_tmall_world.schema, factor_dim=3, rng=np.random.default_rng(1)
        )
        # Exactly one factor table per categorical feature across FM + deep.
        fm_tables = [
            getattr(model.fm, f"v_{f.name}") for f in model.categorical_features
        ]
        all_params = model.parameters()
        for table in fm_tables:
            assert sum(1 for p in all_params if p is table.weight) == 1

    def test_deepfm_logits_sum_fm_and_deep(self, tiny_tmall_world, split):
        train, _ = split
        model = DeepFM(
            tiny_tmall_world.schema, factor_dim=3, hidden_dims=(8,),
            rng=np.random.default_rng(1),
        )
        features = {name: col[:6] for name, col in train.features.items()}
        total = model.logits(features).data
        np.testing.assert_allclose(
            total,
            model.fm.logits(features).data + model._deep_logits(features).data,
        )
