"""Additional popularity-service edge cases and consistency checks."""

import numpy as np
import pytest

from repro.core import ATNN, PopularityPredictor, TowerConfig


@pytest.fixture(scope="module")
def fitted_predictor(tiny_tmall_world, tiny_tower_config):
    model = ATNN(
        tiny_tmall_world.schema, tiny_tower_config, rng=np.random.default_rng(8)
    )
    predictor = PopularityPredictor(model, batch_size=64)
    predictor.fit_user_group(tiny_tmall_world.active_user_group(0.3))
    return predictor


class TestConsistency:
    def test_batch_size_invariance(self, tiny_tmall_world, tiny_tower_config):
        """Chunked encoding must produce identical scores."""
        model = ATNN(
            tiny_tmall_world.schema, tiny_tower_config, rng=np.random.default_rng(8)
        )
        small = PopularityPredictor(model, batch_size=17)
        large = PopularityPredictor(model, batch_size=4096)
        group = tiny_tmall_world.active_user_group(0.3)
        small.fit_user_group(group)
        large.fit_user_group(group)
        np.testing.assert_allclose(
            small.score_items(tiny_tmall_world.new_items),
            large.score_items(tiny_tmall_world.new_items),
        )

    def test_scores_deterministic(self, fitted_predictor, tiny_tmall_world):
        a = fitted_predictor.score_items(tiny_tmall_world.new_items)
        b = fitted_predictor.score_items(tiny_tmall_world.new_items)
        np.testing.assert_allclose(a, b)

    def test_refit_changes_with_group(self, tiny_tmall_world, tiny_tower_config):
        model = ATNN(
            tiny_tmall_world.schema, tiny_tower_config, rng=np.random.default_rng(8)
        )
        predictor = PopularityPredictor(model)
        small_group = predictor.fit_user_group(
            tiny_tmall_world.active_user_group(0.05)
        ).copy()
        big_group = predictor.fit_user_group(tiny_tmall_world.active_user_group(0.9))
        assert not np.allclose(small_group, big_group)

    def test_model_left_in_prior_mode(self, fitted_predictor, tiny_tmall_world):
        fitted_predictor.model.train()
        fitted_predictor.score_items(tiny_tmall_world.new_items)
        assert fitted_predictor.model.training

    def test_single_user_group(self, tiny_tmall_world, tiny_tower_config):
        model = ATNN(
            tiny_tmall_world.schema, tiny_tower_config, rng=np.random.default_rng(8)
        )
        predictor = PopularityPredictor(model)
        one_user = tiny_tmall_world.users.subset(np.array([0]))
        mean = predictor.fit_user_group(one_user, keep_individual=True)
        # With one user the mean IS the user; fast and exact paths agree.
        items = tiny_tmall_world.new_items.subset(np.arange(10))
        np.testing.assert_allclose(
            predictor.score_items(items),
            predictor.score_items_exact(items),
            rtol=1e-10,
        )
        assert mean.shape == (model.config.vector_dim,)
