"""Scheduler + trainer integration via the epoch callback."""

import numpy as np
import pytest

from repro.core import TowerConfig, TwoTowerModel, TwoTowerTrainer
from repro.nn.optim import SGD, StepDecay
from repro.nn.module import Parameter


class TestSchedulerWiring:
    def test_lr_decays_through_callback(self, tiny_tmall_world, tiny_tower_config):
        """A scheduler driven by on_epoch_end must change the optimizer lr.

        The trainers own their optimizer, so user-side schedules attach to
        a proxy optimizer here; this test documents the callback contract:
        it fires once per epoch with the epoch index and the record.
        """
        train = tiny_tmall_world.interactions.subset(np.arange(1500))
        seen_epochs = []
        rates = []

        proxy = SGD([Parameter(np.zeros(1))], lr=1.0)
        scheduler = StepDecay(proxy, step_size=1, gamma=0.5)

        def on_epoch_end(epoch, record):
            seen_epochs.append(epoch)
            rates.append(scheduler.step())

        model = TwoTowerModel(
            tiny_tmall_world.schema, tiny_tower_config,
            rng=np.random.default_rng(1),
        )
        TwoTowerTrainer(
            epochs=3, batch_size=512, on_epoch_end=on_epoch_end
        ).fit(model, train)

        assert seen_epochs == [0, 1, 2]
        assert rates == pytest.approx([0.5, 0.25, 0.125])
        assert proxy.lr == pytest.approx(0.125)

    def test_callback_receives_record(self, tiny_tmall_world, tiny_tower_config):
        train = tiny_tmall_world.interactions.subset(np.arange(1500))
        records = []
        model = TwoTowerModel(
            tiny_tmall_world.schema, tiny_tower_config,
            rng=np.random.default_rng(1),
        )
        TwoTowerTrainer(
            epochs=1, batch_size=512,
            on_epoch_end=lambda e, r: records.append(r),
        ).fit(model, train)
        assert "loss" in records[0]
