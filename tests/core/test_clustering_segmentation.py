"""K-means and segmented-popularity tests."""

import numpy as np
import pytest

from repro.core import ATNN, SegmentedPopularityPredictor, TowerConfig, kmeans


class TestKMeans:
    def test_recovers_separated_clusters(self, rng):
        centres = np.array([[0.0, 0.0], [10.0, 10.0], [-10.0, 10.0]])
        points = np.concatenate(
            [centre + rng.normal(0, 0.3, size=(50, 2)) for centre in centres]
        )
        result = kmeans(points, 3, rng=rng)
        # Each true cluster maps to exactly one fitted cluster.
        for block in range(3):
            block_assignments = result.assignments[block * 50 : (block + 1) * 50]
            assert len(set(block_assignments)) == 1
        assert len(set(result.assignments)) == 3

    def test_centroids_near_true_centres(self, rng):
        centres = np.array([[0.0, 0.0], [8.0, 8.0]])
        points = np.concatenate(
            [centre + rng.normal(0, 0.2, size=(100, 2)) for centre in centres]
        )
        result = kmeans(points, 2, rng=rng)
        fitted = result.centroids[np.argsort(result.centroids[:, 0])]
        np.testing.assert_allclose(fitted, centres, atol=0.2)

    def test_inertia_decreases_with_k(self, rng):
        points = rng.normal(size=(200, 3))
        inertia_2 = kmeans(points, 2, rng=np.random.default_rng(0)).inertia
        inertia_8 = kmeans(points, 8, rng=np.random.default_rng(0)).inertia
        assert inertia_8 < inertia_2

    def test_k_equals_one_gives_mean(self, rng):
        points = rng.normal(size=(50, 2))
        result = kmeans(points, 1, rng=rng)
        np.testing.assert_allclose(result.centroids[0], points.mean(axis=0))

    def test_k_equals_n(self, rng):
        points = rng.normal(size=(5, 2))
        result = kmeans(points, 5, rng=rng)
        assert result.inertia == pytest.approx(0.0, abs=1e-9)

    def test_identical_points_safe(self, rng):
        points = np.ones((20, 3))
        result = kmeans(points, 3, rng=rng)
        assert result.inertia == pytest.approx(0.0, abs=1e-12)

    def test_predict_assigns_nearest(self, rng):
        points = np.array([[0.0, 0.0], [10.0, 10.0]]).repeat(10, axis=0)
        result = kmeans(points, 2, rng=rng)
        assignments = result.predict(np.array([[0.5, 0.5], [9.0, 9.5]]))
        assert assignments[0] != assignments[1]

    def test_predict_shape_checked(self, rng):
        result = kmeans(rng.normal(size=(10, 2)), 2, rng=rng)
        with pytest.raises(ValueError):
            result.predict(np.zeros((3, 5)))

    def test_invalid_args_rejected(self, rng):
        points = rng.normal(size=(10, 2))
        with pytest.raises(ValueError):
            kmeans(points, 0, rng=rng)
        with pytest.raises(ValueError):
            kmeans(points, 11, rng=rng)
        with pytest.raises(ValueError):
            kmeans(points.reshape(-1), 2, rng=rng)

    def test_deterministic_under_seed(self, rng):
        points = rng.normal(size=(60, 2))
        a = kmeans(points, 3, rng=np.random.default_rng(7))
        b = kmeans(points, 3, rng=np.random.default_rng(7))
        np.testing.assert_allclose(a.centroids, b.centroids)


class TestSegmentedPredictor:
    @pytest.fixture(scope="class")
    def predictor(self, tiny_tmall_world):
        model = ATNN(
            tiny_tmall_world.schema,
            TowerConfig(vector_dim=8, deep_dims=(16, 8), head_dims=(16,),
                        num_cross_layers=1),
            rng=np.random.default_rng(3),
        )
        predictor = SegmentedPopularityPredictor(model, n_segments=3)
        predictor.fit_user_group(
            tiny_tmall_world.active_user_group(0.3),
            rng=np.random.default_rng(0),
        )
        return predictor

    def test_scoring_before_fit_rejected(self, tiny_tmall_world):
        model = ATNN(
            tiny_tmall_world.schema,
            TowerConfig(vector_dim=8, deep_dims=(16,), head_dims=(8,)),
            rng=np.random.default_rng(3),
        )
        predictor = SegmentedPopularityPredictor(model, n_segments=2)
        with pytest.raises(RuntimeError):
            predictor.segment_scores(tiny_tmall_world.new_items)

    def test_segment_matrix_shape(self, predictor, tiny_tmall_world):
        matrix = predictor.segment_scores(tiny_tmall_world.new_items)
        assert matrix.shape == (len(tiny_tmall_world.new_items), 3)
        assert matrix.min() > 0 and matrix.max() < 1

    def test_mean_aggregation_is_weighted_average(self, predictor, tiny_tmall_world):
        matrix = predictor.segment_scores(tiny_tmall_world.new_items)
        expected = matrix @ predictor.segment_weights
        np.testing.assert_allclose(
            predictor.score_items(tiny_tmall_world.new_items, "mean"), expected
        )

    def test_max_aggregation_dominates_mean(self, predictor, tiny_tmall_world):
        mean_scores = predictor.score_items(tiny_tmall_world.new_items, "mean")
        max_scores = predictor.score_items(tiny_tmall_world.new_items, "max")
        assert np.all(max_scores >= mean_scores - 1e-12)

    def test_unknown_aggregation_rejected(self, predictor, tiny_tmall_world):
        with pytest.raises(ValueError):
            predictor.score_items(tiny_tmall_world.new_items, "median")

    def test_niche_items_have_large_gaps(self, predictor, tiny_tmall_world):
        matrix = predictor.segment_scores(tiny_tmall_world.new_items)
        gap = matrix.max(axis=1) - matrix @ predictor.segment_weights
        niche = predictor.niche_items(tiny_tmall_world.new_items, top_k=5)
        threshold = np.sort(gap)[::-1][4]
        assert np.all(gap[niche] >= threshold - 1e-12)

    def test_segment_weights_sum_to_one(self, predictor):
        assert predictor.segment_weights.sum() == pytest.approx(1.0)

    def test_invalid_segments_rejected(self, tiny_tmall_world):
        model = ATNN(
            tiny_tmall_world.schema,
            TowerConfig(vector_dim=8, deep_dims=(16,), head_dims=(8,)),
            rng=np.random.default_rng(3),
        )
        with pytest.raises(ValueError):
            SegmentedPopularityPredictor(model, n_segments=0)
