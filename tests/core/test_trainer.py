"""Trainer tests: loss descent, alternation semantics, history records."""

import numpy as np
import pytest

from repro.core import (
    ATNN,
    ATNNTrainer,
    MultiTaskATNN,
    MultiTaskTrainer,
    TowerConfig,
    TwoTowerModel,
    TwoTowerTrainer,
)
from repro.data import train_test_split


@pytest.fixture
def small_split(tiny_tmall_world):
    rng = np.random.default_rng(0)
    train, test = train_test_split(tiny_tmall_world.interactions, 0.2, rng)
    return train.subset(np.arange(3000)), test.subset(np.arange(800))


@pytest.fixture
def eleme_split(tiny_eleme_world):
    rng = np.random.default_rng(0)
    return train_test_split(tiny_eleme_world.samples, 0.2, rng)


class TestTwoTowerTrainer:
    def test_loss_decreases(self, tiny_tmall_world, tiny_tower_config, small_split):
        train, _ = small_split
        model = TwoTowerModel(
            tiny_tmall_world.schema, tiny_tower_config,
            rng=np.random.default_rng(1),
        )
        history = TwoTowerTrainer(epochs=3, batch_size=256, lr=3e-3).fit(model, train)
        assert history.series("loss")[-1] < history.series("loss")[0]

    def test_validation_auc_recorded(
        self, tiny_tmall_world, tiny_tower_config, small_split
    ):
        train, test = small_split
        model = TwoTowerModel(
            tiny_tmall_world.schema, tiny_tower_config,
            rng=np.random.default_rng(1),
        )
        history = TwoTowerTrainer(epochs=4, batch_size=256, lr=3e-3).fit(
            model, train, valid=test
        )
        aucs = history.series("valid_auc")
        assert len(aucs) == 4
        assert aucs[-1] > 0.55  # beats chance

    def test_model_left_in_eval_mode(
        self, tiny_tmall_world, tiny_tower_config, small_split
    ):
        train, _ = small_split
        model = TwoTowerModel(
            tiny_tmall_world.schema, tiny_tower_config,
            rng=np.random.default_rng(1),
        )
        TwoTowerTrainer(epochs=1, batch_size=512).fit(model, train)
        assert not model.training

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            TwoTowerTrainer(epochs=0)
        with pytest.raises(ValueError):
            TwoTowerTrainer(batch_size=0)

    def test_epoch_callback_invoked(
        self, tiny_tmall_world, tiny_tower_config, small_split
    ):
        train, _ = small_split
        seen = []
        model = TwoTowerModel(
            tiny_tmall_world.schema, tiny_tower_config,
            rng=np.random.default_rng(1),
        )
        TwoTowerTrainer(
            epochs=2, batch_size=512, on_epoch_end=lambda e, r: seen.append(e)
        ).fit(model, train)
        assert seen == [0, 1]


class TestATNNTrainer:
    def test_records_three_losses(
        self, tiny_tmall_world, tiny_tower_config, small_split
    ):
        train, _ = small_split
        model = ATNN(
            tiny_tmall_world.schema, tiny_tower_config,
            rng=np.random.default_rng(1),
        )
        history = ATNNTrainer(epochs=1, batch_size=256, lr=3e-3).fit(model, train)
        record = history.records[0]
        assert {"loss_i", "loss_g", "loss_s"} <= set(record)

    def test_similarity_loss_decreases(
        self, tiny_tmall_world, tiny_tower_config, small_split
    ):
        """The adversarial game must pull generated vectors toward encoded."""
        train, _ = small_split
        model = ATNN(
            tiny_tmall_world.schema, tiny_tower_config,
            rng=np.random.default_rng(1),
        )
        history = ATNNTrainer(
            lambda_similarity=0.5, epochs=3, batch_size=256, lr=3e-3
        ).fit(model, train)
        losses = history.series("loss_s")
        assert losses[-1] < losses[0]

    def test_both_paths_beat_chance(
        self, tiny_tmall_world, tiny_tower_config, small_split
    ):
        train, test = small_split
        model = ATNN(
            tiny_tmall_world.schema, tiny_tower_config,
            rng=np.random.default_rng(1),
        )
        history = ATNNTrainer(epochs=3, batch_size=256, lr=3e-3).fit(
            model, train, valid=test
        )
        assert history.last("valid_auc_encoder") > 0.55
        assert history.last("valid_auc_generator") > 0.55

    def test_lambda_zero_disables_distillation_pressure(
        self, tiny_tmall_world, tiny_tower_config, small_split
    ):
        """With lambda=0 the similarity loss is reported but not optimised;
        it should stay clearly higher than with a strong lambda."""
        train, _ = small_split
        results = {}
        for lam in (0.0, 1.0):
            model = ATNN(
                tiny_tmall_world.schema, tiny_tower_config,
                rng=np.random.default_rng(2),
            )
            history = ATNNTrainer(
                lambda_similarity=lam, epochs=2, batch_size=256, lr=3e-3,
                seed=3,
            ).fit(model, train)
            results[lam] = history.last("loss_s")
        assert results[1.0] < results[0.0]

    def test_negative_lambda_rejected(self):
        with pytest.raises(ValueError):
            ATNNTrainer(lambda_similarity=-0.1)


class TestMultiTaskTrainer:
    def test_losses_decrease(self, tiny_eleme_world, tiny_tower_config, eleme_split):
        train, _ = eleme_split
        model = MultiTaskATNN(
            tiny_eleme_world.schema, tiny_tower_config,
            rng=np.random.default_rng(1),
        )
        history = MultiTaskTrainer(epochs=4, batch_size=128, lr=3e-3).fit(model, train)
        assert history.series("loss_r")[-1] < history.series("loss_r")[0]

    def test_validation_maes_recorded(
        self, tiny_eleme_world, tiny_tower_config, eleme_split
    ):
        train, test = eleme_split
        model = MultiTaskATNN(
            tiny_eleme_world.schema, tiny_tower_config,
            rng=np.random.default_rng(1),
        )
        history = MultiTaskTrainer(epochs=2, batch_size=128, lr=3e-3).fit(
            model, train, valid=test
        )
        assert "valid_mae_vppv" in history.records[-1]
        assert "valid_mae_gmv" in history.records[-1]

    def test_non_adversarial_skips_generator(
        self, tiny_eleme_world, tiny_tower_config, eleme_split
    ):
        train, _ = eleme_split
        model = MultiTaskATNN(
            tiny_eleme_world.schema, tiny_tower_config,
            rng=np.random.default_rng(1),
        )
        history = MultiTaskTrainer(
            adversarial=False, epochs=1, batch_size=128
        ).fit(model, train)
        assert "loss_g" not in history.records[0]

    def test_head_bias_initialised_to_label_mean(
        self, tiny_eleme_world, tiny_tower_config, eleme_split
    ):
        train, _ = eleme_split
        model = MultiTaskATNN(
            tiny_eleme_world.schema, tiny_tower_config,
            rng=np.random.default_rng(1),
        )
        MultiTaskTrainer(epochs=1, batch_size=128).fit(model, train)
        predictions = model.predict(train.features, "gmv")
        assert abs(predictions.mean() - train.label("gmv").mean()) < 1.5

    def test_invalid_weights_rejected(self):
        with pytest.raises(ValueError):
            MultiTaskTrainer(lambda_vppv=-1.0)


class TestTrainingHistory:
    def test_series_and_last(self):
        from repro.core import TrainingHistory

        history = TrainingHistory(records=[{"loss": 1.0}, {"loss": 0.5}])
        assert history.series("loss") == [1.0, 0.5]
        assert history.last("loss") == 0.5
        assert history.n_epochs == 2

    def test_last_missing_key_rejected(self):
        from repro.core import TrainingHistory

        with pytest.raises(KeyError):
            TrainingHistory(records=[{"loss": 1.0}]).last("auc")
