"""Early stopping, best-weight restore and divergence-guard tests."""

import numpy as np
import pytest

from repro.core import (
    ATNN,
    ATNNTrainer,
    EarlyStopping,
    TwoTowerModel,
    TwoTowerTrainer,
)
from repro.data import train_test_split
from repro.metrics import roc_auc


@pytest.fixture
def split(tiny_tmall_world):
    rng = np.random.default_rng(0)
    train, test = train_test_split(tiny_tmall_world.interactions, 0.2, rng)
    return train.subset(np.arange(2000)), test.subset(np.arange(600))


class TestEarlyStoppingPolicy:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            EarlyStopping(metric="valid_auc", mode="best")

    def test_invalid_patience_rejected(self):
        with pytest.raises(ValueError):
            EarlyStopping(metric="valid_auc", patience=0)

    def test_improved_semantics(self):
        maximise = EarlyStopping(metric="auc", mode="max")
        assert maximise.improved(0.7, None)
        assert maximise.improved(0.7, 0.6)
        assert not maximise.improved(0.5, 0.6)
        minimise = EarlyStopping(metric="mae", mode="min")
        assert minimise.improved(0.5, 0.6)
        assert not minimise.improved(0.7, 0.6)


class TestTrainerIntegration:
    def test_stops_before_epoch_budget(self, tiny_tmall_world, tiny_tower_config, split):
        """Patience 1 with a plateauing metric must cut training short."""
        train, test = split
        model = TwoTowerModel(
            tiny_tmall_world.schema, tiny_tower_config,
            rng=np.random.default_rng(1),
        )
        # Watching the *training loss* as a maximisation target plateaus
        # immediately (loss decreases), forcing the earliest possible stop.
        trainer = TwoTowerTrainer(
            epochs=6, batch_size=256, lr=3e-3,
            early_stopping=EarlyStopping(metric="loss", mode="max", patience=1,
                                         restore_best=False),
        )
        history = trainer.fit(model, train, valid=test)
        assert history.n_epochs == 2  # epoch 1 sets best, epoch 2 exhausts patience

    def test_missing_metric_raises(self, tiny_tmall_world, tiny_tower_config, split):
        train, _ = split
        model = TwoTowerModel(
            tiny_tmall_world.schema, tiny_tower_config,
            rng=np.random.default_rng(1),
        )
        trainer = TwoTowerTrainer(
            epochs=2, batch_size=512,
            early_stopping=EarlyStopping(metric="valid_auc"),
        )
        with pytest.raises(KeyError):
            trainer.fit(model, train)  # no validation set -> metric absent

    def test_best_weights_restored(self, tiny_tmall_world, tiny_tower_config, split):
        """After training, the model must score exactly its best epoch."""
        train, test = split
        model = ATNN(
            tiny_tmall_world.schema, tiny_tower_config,
            rng=np.random.default_rng(1),
        )
        trainer = ATNNTrainer(
            epochs=3, batch_size=256, lr=3e-3,
            early_stopping=EarlyStopping(
                metric="valid_auc_encoder", mode="max", patience=3,
                restore_best=True,
            ),
        )
        history = trainer.fit(model, train, valid=test)
        best = max(history.series("valid_auc_encoder"))
        restored = roc_auc(test.label("ctr"), model.predict_proba(test.features))
        assert restored == pytest.approx(best, abs=1e-12)

    def test_divergence_guard(self, tiny_tmall_world, tiny_tower_config, split):
        """A non-finite loss must raise a clear divergence error instead of
        silently corrupting all weights (failure injection: poison one
        parameter with NaN)."""
        train, _ = split
        model = TwoTowerModel(
            tiny_tmall_world.schema, tiny_tower_config,
            rng=np.random.default_rng(1),
        )
        model.scoring_head.weight.data[0] = np.nan  # repro-lint: disable=ATN001 -- deliberate failure injection: poison a weight to prove the trainer aborts
        trainer = TwoTowerTrainer(epochs=1, batch_size=64)
        with pytest.raises(RuntimeError, match="diverged"):
            trainer.fit(model, train)
