"""TrainingHistory serialisation round-trip and summary rendering."""

import json

import pytest

from repro.core import TrainingHistory


@pytest.fixture
def history():
    return TrainingHistory(
        records=[
            {"loss_i": 0.9, "loss_g": 0.8},
            {"loss_i": 0.7, "loss_g": 0.6, "valid_auc_encoder": 0.71},
        ]
    )


class TestRoundTrip:
    def test_to_dict_from_dict_identity(self, history):
        assert TrainingHistory.from_dict(history.to_dict()).records == history.records

    def test_survives_json(self, history):
        payload = json.loads(json.dumps(history.to_dict()))
        rebuilt = TrainingHistory.from_dict(payload)
        assert rebuilt.series("loss_i") == [0.9, 0.7]
        assert rebuilt.last("valid_auc_encoder") == 0.71

    def test_to_dict_copies_records(self, history):
        history.to_dict()["records"][0]["loss_i"] = -1.0
        assert history.records[0]["loss_i"] == 0.9

    def test_from_dict_coerces_types(self):
        rebuilt = TrainingHistory.from_dict({"records": [{"loss": 1}]})
        value = rebuilt.last("loss")
        assert isinstance(value, float) and value == 1.0

    def test_from_dict_validation(self):
        with pytest.raises(ValueError):
            TrainingHistory.from_dict({})
        with pytest.raises(ValueError):
            TrainingHistory.from_dict({"records": "oops"})
        with pytest.raises(ValueError):
            TrainingHistory.from_dict({"records": [["not", "a", "dict"]]})

    def test_empty_round_trip(self):
        assert TrainingHistory.from_dict(TrainingHistory().to_dict()).n_epochs == 0


class TestSummary:
    def test_empty(self):
        assert TrainingHistory().summary() == "TrainingHistory: empty"

    def test_first_to_last_per_key(self, history):
        text = history.summary()
        assert text.startswith("TrainingHistory: 2 epochs;")
        assert "loss_i 0.9000→0.7000" in text
        assert "valid_auc_encoder 0.7100" in text  # single value, no arrow

    def test_singular_epoch(self):
        text = TrainingHistory(records=[{"loss": 0.5}]).summary()
        assert "1 epoch;" in text and "epochs" not in text


class TestKeys:
    def test_order_of_first_appearance(self, history):
        assert history.keys() == ["loss_i", "loss_g", "valid_auc_encoder"]
