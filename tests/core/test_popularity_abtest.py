"""Popularity service (O(1) scoring) and A/B-test simulator tests."""

import numpy as np
import pytest

from repro.core import (
    ATNN,
    ExpertConfig,
    ExpertSelector,
    PopularityPredictor,
    TowerConfig,
    TwoTowerModel,
    first_k_transaction_time,
    select_top_k,
)
from repro.metrics import rank_correlation


@pytest.fixture
def atnn_model(tiny_tmall_world, tiny_tower_config):
    return ATNN(
        tiny_tmall_world.schema, tiny_tower_config, rng=np.random.default_rng(4)
    )


class TestPopularityPredictor:
    def test_scoring_before_fit_rejected(self, tiny_tmall_world, atnn_model):
        predictor = PopularityPredictor(atnn_model)
        with pytest.raises(RuntimeError):
            predictor.score_items(tiny_tmall_world.new_items)

    def test_mean_vector_shape(self, tiny_tmall_world, atnn_model):
        predictor = PopularityPredictor(atnn_model)
        mean = predictor.fit_user_group(tiny_tmall_world.active_user_group(0.2))
        assert mean.shape == (atnn_model.config.vector_dim,)

    def test_scores_are_probabilities(self, tiny_tmall_world, atnn_model):
        predictor = PopularityPredictor(atnn_model)
        predictor.fit_user_group(tiny_tmall_world.active_user_group(0.2))
        scores = predictor.score_items(tiny_tmall_world.new_items)
        assert scores.shape == (len(tiny_tmall_world.new_items),)
        assert scores.min() > 0.0 and scores.max() < 1.0

    def test_exact_requires_individual_vectors(self, tiny_tmall_world, atnn_model):
        predictor = PopularityPredictor(atnn_model)
        predictor.fit_user_group(tiny_tmall_world.active_user_group(0.2))
        with pytest.raises(RuntimeError):
            predictor.score_items_exact(tiny_tmall_world.new_items)

    def test_mean_vector_ranking_agrees_with_exact(
        self, tiny_tmall_world, atnn_model
    ):
        """The core O(1) approximation claim: same ranking as pairwise mean."""
        predictor = PopularityPredictor(atnn_model)
        predictor.fit_user_group(
            tiny_tmall_world.active_user_group(0.2), keep_individual=True
        )
        subset = tiny_tmall_world.new_items.subset(np.arange(60))
        fast = predictor.score_items(subset)
        exact = predictor.score_items_exact(subset)
        assert rank_correlation(fast, exact) > 0.9

    def test_score_item_vectors_kernel_matches_score_items(
        self, tiny_tmall_world, atnn_model
    ):
        predictor = PopularityPredictor(atnn_model)
        predictor.fit_user_group(tiny_tmall_world.active_user_group(0.2))
        items = tiny_tmall_world.new_items.subset(np.arange(10))
        via_table = predictor.score_items(items)
        vectors = predictor._encode_items(items)
        via_vectors = predictor.score_item_vectors(vectors)
        np.testing.assert_allclose(via_table, via_vectors)

    def test_works_with_plain_two_tower(self, tiny_tmall_world, tiny_tower_config):
        model = TwoTowerModel(
            tiny_tmall_world.schema,
            tiny_tower_config,
            item_groups=("item_profile",),
            rng=np.random.default_rng(0),
        )
        predictor = PopularityPredictor(model)
        predictor.fit_user_group(tiny_tmall_world.active_user_group(0.2))
        scores = predictor.score_items(tiny_tmall_world.new_items)
        assert np.isfinite(scores).all()


class TestExpertSelector:
    def test_uses_available_features(self, tiny_tmall_world, rng):
        expert = ExpertSelector()
        scores = expert.score(tiny_tmall_world.new_items, rng)
        assert scores.shape == (len(tiny_tmall_world.new_items),)

    def test_insight_improves_alignment(self, tiny_tmall_world):
        world = tiny_tmall_world
        expert = ExpertSelector(ExpertConfig(judgement_noise=0.3))
        blind = expert.score(world.new_items, np.random.default_rng(0))
        informed = expert.score(
            world.new_items,
            np.random.default_rng(0),
            insight=world.new_item_quality,
        )
        blind_corr = np.corrcoef(blind, world.new_item_quality)[0, 1]
        informed_corr = np.corrcoef(informed, world.new_item_quality)[0, 1]
        assert informed_corr > blind_corr

    def test_insight_shape_checked(self, tiny_tmall_world, rng):
        expert = ExpertSelector()
        with pytest.raises(ValueError):
            expert.score(tiny_tmall_world.new_items, rng, insight=np.zeros(3))

    def test_no_features_no_insight_rejected(self, tiny_eleme_world, rng):
        expert = ExpertSelector(ExpertConfig(feature_weights={"nope": 1.0}))
        with pytest.raises(ValueError):
            expert.score(tiny_eleme_world.new_restaurants, rng)

    def test_noise_zero_deterministic_given_rng(self, tiny_tmall_world):
        expert = ExpertSelector(ExpertConfig(judgement_noise=0.0))
        a = expert.score(tiny_tmall_world.new_items, np.random.default_rng(0))
        b = expert.score(tiny_tmall_world.new_items, np.random.default_rng(1))
        np.testing.assert_allclose(a, b)

    def test_invalid_noise_rejected(self):
        with pytest.raises(ValueError):
            ExpertConfig(judgement_noise=-1.0)


class TestSelectionHelpers:
    def test_select_top_k_descending(self):
        scores = np.array([0.1, 0.9, 0.5, 0.7])
        np.testing.assert_array_equal(select_top_k(scores, 2), [1, 3])

    def test_select_top_k_bounds(self):
        with pytest.raises(ValueError):
            select_top_k(np.array([1.0]), 2)
        with pytest.raises(ValueError):
            select_top_k(np.array([1.0, 2.0]), 0)

    def test_first_k_time_censors_at_horizon(self):
        days = np.array([3, 10, 31])  # 31 means "never within horizon 30"
        assert first_k_transaction_time(days, 30) == pytest.approx((3 + 10 + 30) / 3)

    def test_first_k_time_validation(self):
        with pytest.raises(ValueError):
            first_k_transaction_time(np.zeros((2, 2)), 30)
        with pytest.raises(ValueError):
            first_k_transaction_time(np.array([1.0]), 0)
