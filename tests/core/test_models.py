"""TwoTowerModel, ATNN and MultiTaskATNN model-level tests."""

import numpy as np
import pytest

from repro.core import ATNN, MultiTaskATNN, TowerConfig, TwoTowerModel
from repro.data import GROUP_ITEM_PROFILE, zero_statistics


def _interaction_features(world, n=16):
    return {name: col[:n] for name, col in world.interactions.features.items()}


def _eleme_features(world, n=16):
    return {name: col[:n] for name, col in world.samples.features.items()}


class TestTwoTowerModel:
    def test_forward_probabilities(self, tiny_tmall_world, tiny_tower_config, rng):
        model = TwoTowerModel(tiny_tmall_world.schema, tiny_tower_config, rng=rng)
        out = model(_interaction_features(tiny_tmall_world))
        assert out.shape == (16,)
        assert out.data.min() > 0.0 and out.data.max() < 1.0

    def test_predict_proba_batching_consistent(
        self, tiny_tmall_world, tiny_tower_config, rng
    ):
        model = TwoTowerModel(tiny_tmall_world.schema, tiny_tower_config, rng=rng)
        features = _interaction_features(tiny_tmall_world, n=50)
        full = model.predict_proba(features, batch_size=50)
        chunked = model.predict_proba(features, batch_size=7)
        np.testing.assert_allclose(full, chunked)

    def test_predict_proba_restores_training_mode(
        self, tiny_tmall_world, tiny_tower_config, rng
    ):
        model = TwoTowerModel(tiny_tmall_world.schema, tiny_tower_config, rng=rng)
        model.train()
        model.predict_proba(_interaction_features(tiny_tmall_world))
        assert model.training

    def test_vectors_have_configured_dim(
        self, tiny_tmall_world, tiny_tower_config, rng
    ):
        model = TwoTowerModel(tiny_tmall_world.schema, tiny_tower_config, rng=rng)
        features = _interaction_features(tiny_tmall_world)
        assert model.item_vectors(features).shape == (16, 8)
        assert model.user_vectors(features).shape == (16, 8)


class TestATNN:
    def test_both_paths_produce_probabilities(
        self, tiny_tmall_world, tiny_tower_config, rng
    ):
        model = ATNN(tiny_tmall_world.schema, tiny_tower_config, rng=rng)
        features = _interaction_features(tiny_tmall_world)
        encoder = model.predict_proba(features)
        generator = model.predict_proba_cold_start(features)
        assert encoder.shape == generator.shape == (16,)
        assert not np.allclose(encoder, generator)

    def test_generator_ignores_statistics(
        self, tiny_tmall_world, tiny_tower_config, rng
    ):
        """The cold-start path must be invariant to the statistics columns."""
        model = ATNN(tiny_tmall_world.schema, tiny_tower_config, rng=rng)
        features = _interaction_features(tiny_tmall_world)
        cold = zero_statistics(tiny_tmall_world.schema, features)
        np.testing.assert_allclose(
            model.predict_proba_cold_start(features),
            model.predict_proba_cold_start(cold),
        )

    def test_encoder_sensitive_to_statistics(
        self, tiny_tmall_world, tiny_tower_config, rng
    ):
        model = ATNN(tiny_tmall_world.schema, tiny_tower_config, rng=rng)
        features = _interaction_features(tiny_tmall_world)
        cold = zero_statistics(tiny_tmall_world.schema, features)
        assert not np.allclose(
            model.predict_proba(features), model.predict_proba(cold)
        )

    def test_shared_embeddings_same_parameters(
        self, tiny_tmall_world, tiny_tower_config, rng
    ):
        model = ATNN(
            tiny_tmall_world.schema, tiny_tower_config,
            share_embeddings=True, rng=rng,
        )
        assert model.generator.embeddings is model.item_encoder.embeddings

    def test_separate_embeddings_distinct_parameters(
        self, tiny_tmall_world, tiny_tower_config, rng
    ):
        model = ATNN(
            tiny_tmall_world.schema, tiny_tower_config,
            share_embeddings=False, rng=rng,
        )
        assert model.generator.embeddings is not model.item_encoder.embeddings

    def test_shared_embeddings_reduce_parameter_count(
        self, tiny_tmall_world, tiny_tower_config, rng
    ):
        shared = ATNN(
            tiny_tmall_world.schema, tiny_tower_config,
            share_embeddings=True, rng=rng,
        )
        separate = ATNN(
            tiny_tmall_world.schema, tiny_tower_config,
            share_embeddings=False, rng=rng,
        )
        assert shared.num_parameters() < separate.num_parameters()

    def test_state_dict_roundtrip(self, tiny_tmall_world, tiny_tower_config, rng):
        model = ATNN(tiny_tmall_world.schema, tiny_tower_config, rng=rng)
        other = ATNN(
            tiny_tmall_world.schema, tiny_tower_config,
            rng=np.random.default_rng(777),
        )
        other.load_state_dict(model.state_dict())
        features = _interaction_features(tiny_tmall_world)
        np.testing.assert_allclose(
            model.predict_proba(features), other.predict_proba(features)
        )


class TestMultiTaskATNN:
    def test_two_tasks_differ(self, tiny_eleme_world, tiny_tower_config, rng):
        model = MultiTaskATNN(tiny_eleme_world.schema, tiny_tower_config, rng=rng)
        features = _eleme_features(tiny_eleme_world)
        vppv = model.predict(features, "vppv")
        gmv = model.predict(features, "gmv")
        assert vppv.shape == gmv.shape == (16,)
        assert not np.allclose(vppv, gmv)

    def test_unknown_task_rejected(self, tiny_eleme_world, tiny_tower_config, rng):
        model = MultiTaskATNN(tiny_eleme_world.schema, tiny_tower_config, rng=rng)
        with pytest.raises(ValueError):
            model.predict(_eleme_features(tiny_eleme_world), "ctr")

    def test_cold_start_path_ignores_statistics(
        self, tiny_eleme_world, tiny_tower_config, rng
    ):
        model = MultiTaskATNN(tiny_eleme_world.schema, tiny_tower_config, rng=rng)
        features = _eleme_features(tiny_eleme_world)
        cold = zero_statistics(tiny_eleme_world.schema, features)
        np.testing.assert_allclose(
            model.predict(features, "gmv", cold_start=True),
            model.predict(cold, "gmv", cold_start=True),
        )

    def test_shared_embeddings(self, tiny_eleme_world, tiny_tower_config, rng):
        model = MultiTaskATNN(
            tiny_eleme_world.schema, tiny_tower_config,
            share_embeddings=True, rng=rng,
        )
        assert model.generator.embeddings is model.item_encoder.embeddings
