"""Model registry and Figure-2 standard DNN tests."""

import numpy as np
import pytest

from repro.core import (
    ATNN,
    MultiTaskATNN,
    StandardDNN,
    TowerConfig,
    TwoTowerModel,
    available_models,
    build_model,
)
from repro.data import train_test_split
from repro.metrics import roc_auc
from repro.nn.layers import MLP
from repro.nn.losses import binary_cross_entropy
from repro.nn.optim import Adam


class TestRegistry:
    def test_all_names_buildable(self, tiny_tmall_world, tiny_tower_config):
        for name in available_models():
            if name == "multitask-atnn":
                continue  # needs the Ele.me schema's group features
            model = build_model(
                name,
                tiny_tmall_world.schema,
                tiny_tower_config,
                rng=np.random.default_rng(0),
            )
            assert model is not None

    def test_multitask_built_on_eleme_schema(
        self, tiny_eleme_world, tiny_tower_config
    ):
        model = build_model(
            "multitask-atnn",
            tiny_eleme_world.schema,
            tiny_tower_config,
            rng=np.random.default_rng(0),
        )
        assert isinstance(model, MultiTaskATNN)

    def test_types(self, tiny_tmall_world, tiny_tower_config):
        rng = np.random.default_rng(0)
        assert isinstance(
            build_model("atnn", tiny_tmall_world.schema, tiny_tower_config, rng), ATNN
        )
        assert isinstance(
            build_model("tnn-dcn", tiny_tmall_world.schema, tiny_tower_config, rng),
            TwoTowerModel,
        )
        assert isinstance(
            build_model("standard-dnn", tiny_tmall_world.schema, tiny_tower_config, rng),
            StandardDNN,
        )

    def test_tnn_fc_has_no_cross_layers(self, tiny_tmall_world, tiny_tower_config):
        model = build_model(
            "tnn-fc", tiny_tmall_world.schema, tiny_tower_config,
            np.random.default_rng(0),
        )
        assert isinstance(model.item_tower.encoder, MLP)

    def test_case_insensitive(self, tiny_tmall_world, tiny_tower_config):
        model = build_model(
            "ATNN", tiny_tmall_world.schema, tiny_tower_config,
            np.random.default_rng(0),
        )
        assert isinstance(model, ATNN)

    def test_unknown_rejected(self, tiny_tmall_world):
        with pytest.raises(ValueError):
            build_model("transformer", tiny_tmall_world.schema)


class TestStandardDNN:
    def test_probabilities(self, tiny_tmall_world, rng):
        model = StandardDNN(tiny_tmall_world.schema, hidden_dims=(16,), rng=rng)
        features = {
            name: col[:12]
            for name, col in tiny_tmall_world.interactions.features.items()
        }
        out = model(features)
        assert out.shape == (12,)
        assert out.data.min() > 0 and out.data.max() < 1

    def test_trains_above_chance(self, tiny_tmall_world):
        train, test = train_test_split(
            tiny_tmall_world.interactions, 0.2, np.random.default_rng(0)
        )
        train = train.subset(np.arange(3000))
        model = StandardDNN(
            tiny_tmall_world.schema, hidden_dims=(32, 16),
            rng=np.random.default_rng(1),
        )
        optimizer = Adam(model.parameters(), lr=3e-3)
        rng = np.random.default_rng(2)
        for _ in range(2):
            for batch in train.iter_batches(256, rng=rng):
                optimizer.zero_grad()
                loss = binary_cross_entropy(model(batch.features), batch.label("ctr"))
                loss.backward()
                optimizer.step()
        auc = roc_auc(test.label("ctr"), model.predict_proba(test.features))
        assert auc > 0.55

    def test_missing_numeric_rejected(self, tiny_tmall_world, rng):
        model = StandardDNN(tiny_tmall_world.schema, hidden_dims=(8,), rng=rng)
        features = {
            name: col[:4]
            for name, col in tiny_tmall_world.interactions.features.items()
        }
        del features["stat_log_pv"]
        with pytest.raises(KeyError):
            model(features)
