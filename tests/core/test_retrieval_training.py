"""Retrieval-training tests: in-batch softmax fit + corpus recall."""

import numpy as np
import pytest

from repro.core import (
    RetrievalTrainer,
    TowerConfig,
    TwoTowerModel,
    recall_against_corpus,
)


@pytest.fixture(scope="module")
def retrieval_setup(tiny_tmall_world):
    """Held-out positive pairs plus a training set excluding them."""
    world = tiny_tmall_world
    labels = world.interactions.label("ctr")
    positives = np.flatnonzero(labels == 1.0)
    holdout = positives[-300:]
    train_rows = np.setdiff1d(np.arange(len(world.interactions)), holdout)
    train = world.interactions.subset(train_rows)
    train_items = world.interaction_item_indices[train_rows]
    user_rows = {
        name: world.interactions.features[name][holdout]
        for name in world.schema.all_column_names("user")
    }
    true_items = world.interaction_item_indices[holdout]
    return world, train, train_items, user_rows, true_items


class TestRetrievalTrainer:
    def test_loss_decreases(self, tiny_tmall_world, tiny_tower_config):
        model = TwoTowerModel(
            tiny_tmall_world.schema, tiny_tower_config,
            rng=np.random.default_rng(1),
        )
        trainer = RetrievalTrainer(
            temperature=0.2, epochs=3, batch_size=128, lr=3e-3
        )
        history = trainer.fit(model, tiny_tmall_world.interactions)
        losses = history.series("loss")
        assert losses[-1] < losses[0]

    @pytest.fixture(scope="class")
    def trained_model(self, retrieval_setup, tiny_tower_config):
        """Trained with the Yi et al. sampling-bias correction."""
        world, train, train_items, _, _ = retrieval_setup
        model = TwoTowerModel(
            world.schema, tiny_tower_config, rng=np.random.default_rng(1)
        )
        RetrievalTrainer(temperature=0.2, epochs=6, batch_size=128, lr=3e-3).fit(
            model, train, item_indices=train_items
        )
        return model

    def test_training_beats_untrained_recall(
        self, retrieval_setup, tiny_tower_config, trained_model
    ):
        world, _, _, user_rows, true_items = retrieval_setup
        untrained = TwoTowerModel(
            world.schema, tiny_tower_config, rng=np.random.default_rng(1)
        )
        base = recall_against_corpus(
            untrained, user_rows, true_items, world.items, k=40
        )
        better = recall_against_corpus(
            trained_model, user_rows, true_items, world.items, k=40
        )
        assert better > base

    def test_trained_recall_beats_chance(self, retrieval_setup, trained_model):
        world, _, _, user_rows, true_items = retrieval_setup
        k = 40
        recall = recall_against_corpus(
            trained_model, user_rows, true_items, world.items, k=k
        )
        chance = k / len(world.items)
        assert recall > 1.4 * chance

    def test_bias_correction_improves_recall(
        self, retrieval_setup, tiny_tower_config, trained_model
    ):
        """The log-frequency correction must beat the uncorrected loss —
        popular items are otherwise over-penalised as in-batch negatives
        (the effect Yi et al. correct)."""
        world, train, _, user_rows, true_items = retrieval_setup
        uncorrected = TwoTowerModel(
            world.schema, tiny_tower_config, rng=np.random.default_rng(1)
        )
        RetrievalTrainer(temperature=0.2, epochs=6, batch_size=128, lr=3e-3).fit(
            uncorrected, train
        )
        base = recall_against_corpus(
            uncorrected, user_rows, true_items, world.items, k=40
        )
        corrected = recall_against_corpus(
            trained_model, user_rows, true_items, world.items, k=40
        )
        assert corrected > base

    def test_misaligned_item_indices_rejected(
        self, retrieval_setup, tiny_tower_config
    ):
        world, train, train_items, _, _ = retrieval_setup
        model = TwoTowerModel(
            world.schema, tiny_tower_config, rng=np.random.default_rng(1)
        )
        with pytest.raises(ValueError):
            RetrievalTrainer(epochs=1).fit(
                model, train, item_indices=train_items[:-1]
            )

    def test_invalid_temperature_rejected(self):
        with pytest.raises(ValueError):
            RetrievalTrainer(temperature=0.0)

    def test_too_few_positives_rejected(self, tiny_tmall_world, tiny_tower_config):
        model = TwoTowerModel(
            tiny_tmall_world.schema, tiny_tower_config,
            rng=np.random.default_rng(1),
        )
        # A dataset slice with (almost surely) a single positive row.
        labels = tiny_tmall_world.interactions.label("ctr")
        one_positive = np.flatnonzero(labels == 1.0)[:1]
        one_negative = np.flatnonzero(labels == 0.0)[:5]
        subset = tiny_tmall_world.interactions.subset(
            np.concatenate([one_positive, one_negative])
        )
        with pytest.raises(ValueError):
            RetrievalTrainer(epochs=1).fit(model, subset)


class TestRecallEvaluation:
    def test_validation(self, retrieval_setup, tiny_tower_config):
        world, _, _, user_rows, true_items = retrieval_setup
        model = TwoTowerModel(
            world.schema, tiny_tower_config, rng=np.random.default_rng(1)
        )
        with pytest.raises(ValueError):
            recall_against_corpus(model, user_rows, true_items[:-1], world.items, k=5)
        with pytest.raises(ValueError):
            recall_against_corpus(
                model, user_rows, true_items, world.items, k=len(world.items) + 1
            )

    def test_recall_monotone_in_k(self, retrieval_setup, tiny_tower_config):
        world, _, _, user_rows, true_items = retrieval_setup
        model = TwoTowerModel(
            world.schema, tiny_tower_config, rng=np.random.default_rng(1)
        )
        recall_small = recall_against_corpus(
            model, user_rows, true_items, world.items, k=10
        )
        recall_large = recall_against_corpus(
            model, user_rows, true_items, world.items, k=100
        )
        assert recall_large >= recall_small

    def test_full_corpus_recall_is_one(self, retrieval_setup, tiny_tower_config):
        world, _, _, user_rows, true_items = retrieval_setup
        model = TwoTowerModel(
            world.schema, tiny_tower_config, rng=np.random.default_rng(1)
        )
        recall = recall_against_corpus(
            model, user_rows, true_items, world.items, k=len(world.items)
        )
        assert recall == 1.0

    def test_index_path_matches_dense_path(
        self, retrieval_setup, tiny_tower_config
    ):
        """Serving-stack eval: a brute-force index reproduces the dense
        matmul recall exactly (same scores, same top-k sets)."""
        from repro.retrieval import BruteForceIndex

        world, _, _, user_rows, true_items = retrieval_setup
        model = TwoTowerModel(
            world.schema, tiny_tower_config, rng=np.random.default_rng(1)
        )
        dense = recall_against_corpus(
            model, user_rows, true_items, world.items, k=25
        )
        indexed = recall_against_corpus(
            model,
            user_rows,
            true_items,
            world.items,
            k=25,
            index=BruteForceIndex(tiny_tower_config.vector_dim),
        )
        assert indexed == pytest.approx(dense)

    def test_ivf_full_probe_matches_dense_path(
        self, retrieval_setup, tiny_tower_config
    ):
        from repro.retrieval import IVFIndex

        world, _, _, user_rows, true_items = retrieval_setup
        model = TwoTowerModel(
            world.schema, tiny_tower_config, rng=np.random.default_rng(1)
        )
        dense = recall_against_corpus(
            model, user_rows, true_items, world.items, k=25
        )
        indexed = recall_against_corpus(
            model,
            user_rows,
            true_items,
            world.items,
            k=25,
            index=IVFIndex(
                tiny_tower_config.vector_dim, nlist=8, nprobe=8, seed=0
            ),
        )
        assert indexed == pytest.approx(dense)

    def test_batch_size_does_not_change_recall(
        self, retrieval_setup, tiny_tower_config
    ):
        world, _, _, user_rows, true_items = retrieval_setup
        model = TwoTowerModel(
            world.schema, tiny_tower_config, rng=np.random.default_rng(1)
        )
        small = recall_against_corpus(
            model, user_rows, true_items, world.items, k=20, batch_size=37
        )
        large = recall_against_corpus(
            model, user_rows, true_items, world.items, k=20, batch_size=100_000
        )
        assert small == pytest.approx(large)
