"""Property-based tests for the GBDT substrate (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gbdt import BinMapper, GBDTClassifier, GBDTRegressor


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**32 - 1), st.integers(2, 32))
def test_bin_codes_always_within_budget(seed, max_bins):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(100, 3)) * rng.lognormal(size=3)
    mapper = BinMapper(max_bins=max_bins)
    codes = mapper.fit_transform(X)
    assert codes.max() < max_bins
    assert codes.min() >= 0


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_binning_preserves_column_order(seed):
    """Larger raw values never get smaller bin codes (per column)."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(80, 2))
    mapper = BinMapper(max_bins=16)
    codes = mapper.fit_transform(X)
    for column in range(2):
        order = np.argsort(X[:, column])
        assert np.all(np.diff(codes[order, column].astype(int)) >= 0)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_classifier_train_loss_never_increases_with_more_trees(seed):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(300, 4))
    y = (X[:, 0] + 0.5 * rng.normal(size=300) > 0).astype(float)
    model = GBDTClassifier(
        n_estimators=15, max_depth=3, learning_rate=0.3, min_samples_leaf=5
    )
    model.fit(X, y)
    losses = np.array(model.train_losses_)
    assert np.all(np.diff(losses) <= 1e-9)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_regressor_predictions_finite_on_shifted_inputs(seed):
    """Out-of-range feature values must still yield finite predictions."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(200, 3))
    y = X[:, 0] + rng.normal(size=200) * 0.1
    model = GBDTRegressor(n_estimators=10, max_depth=3)
    model.fit(X, y)
    extreme = X * 1e6
    predictions = model.predict(extreme)
    assert np.isfinite(predictions).all()


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_constant_target_regressor_predicts_constant(seed):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(100, 2))
    y = np.full(100, 3.25)
    model = GBDTRegressor(n_estimators=5, max_depth=3)
    model.fit(X, y)
    np.testing.assert_allclose(model.predict(X), 3.25, atol=1e-6)
