"""Tests for the from-scratch histogram gradient boosting."""

import numpy as np
import pytest

from repro.gbdt import (
    BinMapper,
    GBDTClassifier,
    GBDTRegressor,
    LogisticLoss,
    RegressionTree,
    SquaredLoss,
)


class TestBinMapper:
    def test_transform_before_fit_rejected(self, rng):
        with pytest.raises(RuntimeError):
            BinMapper().transform(rng.normal(size=(5, 2)))

    def test_bins_within_budget(self, rng):
        mapper = BinMapper(max_bins=16)
        codes = mapper.fit_transform(rng.normal(size=(500, 3)))
        assert codes.max() < 16
        assert codes.dtype == np.uint8

    def test_monotone_in_value(self, rng):
        mapper = BinMapper(max_bins=8)
        x = np.sort(rng.normal(size=200))[:, None]
        codes = mapper.fit_transform(x)[:, 0]
        assert np.all(np.diff(codes.astype(int)) >= 0)

    def test_constant_column_single_bin(self):
        mapper = BinMapper()
        codes = mapper.fit_transform(np.ones((50, 1)))
        assert len(set(codes[:, 0])) == 1

    def test_feature_count_mismatch_rejected(self, rng):
        mapper = BinMapper().fit(rng.normal(size=(10, 2)))
        with pytest.raises(ValueError):
            mapper.transform(rng.normal(size=(10, 3)))

    def test_invalid_max_bins_rejected(self):
        with pytest.raises(ValueError):
            BinMapper(max_bins=1)

    def test_unseen_extremes_clamped(self, rng):
        mapper = BinMapper(max_bins=8).fit(rng.normal(size=(100, 1)))
        codes = mapper.transform(np.array([[1e9], [-1e9]]))
        assert codes[0, 0] == mapper.n_bins_[0] - 1
        assert codes[1, 0] == 0


class TestLosses:
    def test_logistic_initial_score_is_logodds(self):
        y = np.array([1.0, 1.0, 0.0, 0.0, 1.0, 1.0])  # rate 2/3
        expected = np.log((2 / 3) / (1 / 3))
        assert LogisticLoss.initial_score(y) == pytest.approx(expected)

    def test_logistic_gradients(self):
        scores = np.array([0.0])
        grad, hess = LogisticLoss.gradients(scores, np.array([1.0]))
        assert grad[0] == pytest.approx(-0.5)
        assert hess[0] == pytest.approx(0.25)

    def test_squared_gradients(self):
        grad, hess = SquaredLoss.gradients(np.array([3.0]), np.array([1.0]))
        assert grad[0] == 2.0 and hess[0] == 1.0

    def test_squared_initial_score_is_mean(self):
        assert SquaredLoss.initial_score(np.array([1.0, 3.0])) == 2.0


class TestRegressionTree:
    def test_learns_step_function(self, rng):
        x = rng.uniform(-1, 1, size=(500, 1))
        y = np.where(x[:, 0] > 0.2, 1.0, -1.0)
        mapper = BinMapper(max_bins=32)
        binned = mapper.fit_transform(x)
        tree = RegressionTree(max_depth=2, min_samples_leaf=5)
        # Squared loss: grad = pred - y with pred = 0.
        tree.fit(binned, -y, np.ones_like(y), mapper.n_bins_)
        predictions = tree.predict(binned)
        assert np.corrcoef(predictions, y)[0, 1] > 0.95

    def test_respects_max_depth(self, rng):
        x = rng.normal(size=(400, 3))
        y = rng.normal(size=400)
        mapper = BinMapper()
        binned = mapper.fit_transform(x)
        tree = RegressionTree(max_depth=1, min_samples_leaf=5)
        tree.fit(binned, -y, np.ones_like(y), mapper.n_bins_)
        assert tree.n_leaves <= 2

    def test_min_samples_leaf_respected(self, rng):
        x = rng.normal(size=(100, 2))
        y = rng.normal(size=100)
        mapper = BinMapper()
        binned = mapper.fit_transform(x)
        tree = RegressionTree(max_depth=8, min_samples_leaf=40)
        tree.fit(binned, -y, np.ones_like(y), mapper.n_bins_)
        leaf_sizes = [n.n_samples for n in tree.nodes if n.is_leaf and n.n_samples]
        assert min(leaf_sizes) >= 40

    def test_pure_leaf_value_is_newton_step(self):
        binned = np.zeros((10, 1), dtype=np.uint8)
        grad = np.full(10, 2.0)
        hess = np.ones(10)
        tree = RegressionTree(max_depth=2, reg_lambda=0.0)
        tree.fit(binned, grad, hess, np.array([1]))
        assert tree.predict(binned)[0] == pytest.approx(-2.0)

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict(np.zeros((2, 1), dtype=np.uint8))

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            RegressionTree(max_depth=0)
        with pytest.raises(ValueError):
            RegressionTree(min_samples_leaf=0)

    def test_feature_gains_identify_signal(self, rng):
        x = rng.normal(size=(600, 3))
        y = (x[:, 1] > 0).astype(float) * 2 - 1
        mapper = BinMapper()
        binned = mapper.fit_transform(x)
        tree = RegressionTree(max_depth=3)
        tree.fit(binned, -y, np.ones_like(y), mapper.n_bins_)
        gains = tree.feature_gains(3)
        assert gains[1] == gains.max()


class TestBoosting:
    def _classification_data(self, rng, n=2500):
        X = rng.normal(size=(n, 5))
        logit = 2.0 * X[:, 0] - 1.5 * X[:, 1] * X[:, 2]
        y = (logit + 0.3 * rng.normal(size=n) > 0).astype(float)
        return X, y

    def test_classifier_beats_chance(self, rng):
        X, y = self._classification_data(rng)
        model = GBDTClassifier(n_estimators=40, max_depth=4, learning_rate=0.2)
        model.fit(X[:2000], y[:2000])
        accuracy = (model.predict(X[2000:]) == y[2000:]).mean()
        assert accuracy > 0.85

    def test_predict_proba_in_unit_interval(self, rng):
        X, y = self._classification_data(rng, n=600)
        model = GBDTClassifier(n_estimators=10, max_depth=3)
        model.fit(X, y)
        probabilities = model.predict_proba(X)
        assert probabilities.min() >= 0.0 and probabilities.max() <= 1.0

    def test_train_loss_decreases(self, rng):
        X, y = self._classification_data(rng, n=800)
        model = GBDTClassifier(n_estimators=30, max_depth=3, learning_rate=0.3)
        model.fit(X, y)
        assert model.train_losses_[-1] < model.train_losses_[0]

    def test_early_stopping_truncates(self, rng):
        X, y = self._classification_data(rng, n=1200)
        model = GBDTClassifier(
            n_estimators=200,
            max_depth=6,
            learning_rate=0.5,
            early_stopping_rounds=5,
        )
        model.fit(X[:800], y[:800], eval_set=(X[800:], y[800:]))
        assert len(model.trees_) < 200

    def test_regressor_fits_nonlinearity(self, rng):
        X = rng.normal(size=(2000, 3))
        y = X[:, 0] ** 2 + 0.1 * rng.normal(size=2000)
        model = GBDTRegressor(n_estimators=60, max_depth=4, learning_rate=0.2)
        model.fit(X[:1500], y[:1500])
        mse = np.mean((model.predict(X[1500:]) - y[1500:]) ** 2)
        assert mse < 0.3 * y.var()

    def test_subsample_still_learns(self, rng):
        X, y = self._classification_data(rng, n=1500)
        model = GBDTClassifier(
            n_estimators=40, max_depth=4, learning_rate=0.2, subsample=0.5
        )
        model.fit(X[:1000], y[:1000])
        accuracy = (model.predict(X[1000:]) == y[1000:]).mean()
        assert accuracy > 0.8

    def test_predict_before_fit_rejected(self, rng):
        model = GBDTClassifier()
        with pytest.raises(RuntimeError):
            model.predict_proba(rng.normal(size=(3, 2)))

    def test_bad_shapes_rejected(self, rng):
        model = GBDTClassifier()
        with pytest.raises(ValueError):
            model.fit(rng.normal(size=(10,)), np.zeros(10))
        with pytest.raises(ValueError):
            model.fit(rng.normal(size=(10, 2)), np.zeros(9))

    def test_invalid_hyperparameters_rejected(self):
        with pytest.raises(ValueError):
            GBDTClassifier(n_estimators=0)
        with pytest.raises(ValueError):
            GBDTClassifier(learning_rate=0.0)
        with pytest.raises(ValueError):
            GBDTClassifier(subsample=1.5)

    def test_feature_importances_normalised(self, rng):
        X, y = self._classification_data(rng, n=800)
        model = GBDTClassifier(n_estimators=10, max_depth=3)
        model.fit(X, y)
        importances = model.feature_importances(5)
        assert importances.sum() == pytest.approx(1.0)
        assert importances[0] > 0.1  # the strongest raw feature

    def test_deterministic_under_seed(self, rng):
        X, y = self._classification_data(rng, n=600)
        a = GBDTClassifier(n_estimators=5, random_state=3, subsample=0.8)
        b = GBDTClassifier(n_estimators=5, random_state=3, subsample=0.8)
        a.fit(X, y)
        b.fit(X, y)
        np.testing.assert_allclose(a.predict_proba(X), b.predict_proba(X))
