"""Engine-aware lint: rule hits, scoping, suppressions, repo cleanliness."""

from pathlib import Path

import pytest

from repro.analysis.lint import default_rules, lint_file, run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


def _lint_source(tmp_path, relpath, source):
    """Write ``source`` at ``relpath`` under a tmp root and lint it."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return lint_file(path, default_rules(), root=tmp_path)


def _codes(diagnostics):
    return [d.code for d in diagnostics]


# ----------------------------------------------------------------------
# ATN001: raw Tensor.data mutation
# ----------------------------------------------------------------------
def test_atn001_flags_data_assignment_and_augassign(tmp_path):
    source = "x.data[0] = 1.0\nx.data += 2.0\nx.data = y\n"
    diagnostics = _lint_source(tmp_path, "src/repro/core/foo.py", source)
    assert _codes(diagnostics) == ["ATN001", "ATN001", "ATN001"]


def test_atn001_exempts_engine_modules(tmp_path):
    source = "x.data[0] = 1.0\n"
    for exempt in ("src/repro/nn/tensor.py", "src/repro/nn/optim/adam.py"):
        assert _lint_source(tmp_path, exempt, source) == []


def test_atn001_reads_are_fine(tmp_path):
    source = "y = x.data[0]\nz = x.data.copy()\n"
    assert _lint_source(tmp_path, "src/repro/core/foo.py", source) == []


# ----------------------------------------------------------------------
# ATN002: np.float64 literals in dtype-configurable paths
# ----------------------------------------------------------------------
def test_atn002_flags_float64_in_scoped_paths(tmp_path):
    source = "import numpy as np\nx = np.zeros(3, dtype=np.float64)\n"
    diagnostics = _lint_source(tmp_path, "src/repro/core/foo.py", source)
    assert _codes(diagnostics) == ["ATN002"]


def test_atn002_ignores_out_of_scope_and_tensor_py(tmp_path):
    source = "import numpy as np\nx = np.float64(1.0)\n"
    for relpath in ("tests/test_foo.py", "src/repro/nn/tensor.py",
                    "src/repro/serving/engine.py"):
        assert _lint_source(tmp_path, relpath, source) == []


# ----------------------------------------------------------------------
# ATN003: np.add.at scatter-adds
# ----------------------------------------------------------------------
def test_atn003_flags_add_at_everywhere_but_tensor_py(tmp_path):
    source = "import numpy as np\nnp.add.at(table, ids, grads)\n"
    diagnostics = _lint_source(tmp_path, "src/repro/core/foo.py", source)
    assert _codes(diagnostics) == ["ATN003"]
    assert _lint_source(tmp_path, "src/repro/nn/tensor.py", source) == []


# ----------------------------------------------------------------------
# ATN004: .grad duck-typing violations
# ----------------------------------------------------------------------
def test_atn004_flags_single_representation_attrs(tmp_path):
    source = "a = p.grad.astype(float)\nb = p.grad.nnz_rows\n"
    diagnostics = _lint_source(tmp_path, "src/repro/core/foo.py", source)
    assert _codes(diagnostics) == ["ATN004", "ATN004"]
    messages = " | ".join(sorted(d.message for d in diagnostics))
    assert ".grad.astype exists only on np.ndarray" in messages
    assert ".grad.nnz_rows exists only on SparseGrad" in messages


def test_atn004_shared_api_and_engine_internals_pass(tmp_path):
    shared = "a = p.grad.sum()\nb = p.grad.dtype\nc = p.grad.ndim\n"
    assert _lint_source(tmp_path, "src/repro/core/foo.py", shared) == []
    dense_only = "a = p.grad.copy()\n"
    assert _lint_source(tmp_path, "src/repro/nn/optim/adam.py", dense_only) == []


# ----------------------------------------------------------------------
# ATN005: numpy's process-global RNG
# ----------------------------------------------------------------------
def test_atn005_flags_global_rng_calls(tmp_path):
    source = (
        "import numpy as np\n"
        "np.random.seed(0)\n"
        "x = np.random.rand(3)\n"
    )
    diagnostics = _lint_source(tmp_path, "tests/test_foo.py", source)
    assert _codes(diagnostics) == ["ATN005", "ATN005"]


def test_atn005_allows_seeded_generators(tmp_path):
    source = (
        "import numpy as np\n"
        "rng = np.random.default_rng(0)\n"
        "x = rng.random(3)\n"
    )
    assert _lint_source(tmp_path, "benchmarks/bench_foo.py", source) == []


# ----------------------------------------------------------------------
# ATN006: fresh allocations inside backward closures
# ----------------------------------------------------------------------
def test_atn006_flags_allocators_in_backward(tmp_path):
    source = (
        "import numpy as np\n"
        "def _op(x):\n"
        "    def backward(grad):\n"
        "        scratch = np.zeros(x.shape, dtype=x.dtype)\n"
        "        other = np.empty_like(grad)\n"
        "        return np.copy(scratch)\n"
        "    return backward\n"
    )
    diagnostics = _lint_source(tmp_path, "src/repro/nn/tensor.py", source)
    assert _codes(diagnostics) == ["ATN006", "ATN006", "ATN006"]


def test_atn006_ignores_allocations_outside_backward(tmp_path):
    source = (
        "import numpy as np\n"
        "def forward(x):\n"
        "    return np.zeros_like(x)\n"
    )
    assert _lint_source(tmp_path, "src/repro/nn/tensor.py", source) == []


def test_atn006_scoped_to_engine_code(tmp_path):
    source = (
        "import numpy as np\n"
        "def backward(grad):\n"
        "    return np.zeros_like(grad)\n"
    )
    assert _lint_source(tmp_path, "src/repro/core/trainer.py", source) == []


def test_atn006_allows_arena_rentals(tmp_path):
    source = (
        "from repro.nn.arena import arena_zeros\n"
        "def backward(grad):\n"
        "    return arena_zeros(grad.shape, grad.dtype)\n"
    )
    assert _lint_source(tmp_path, "src/repro/nn/sparse.py", source) == []


def test_atn006_suppression_requires_reason(tmp_path):
    source = (
        "import numpy as np\n"
        "def backward(grad):\n"
        "    return np.zeros_like(grad)"
        "  # repro-lint: disable=ATN006 -- dense fallback, never pooled\n"
    )
    assert _lint_source(tmp_path, "src/repro/nn/tensor.py", source) == []


# ----------------------------------------------------------------------
# benchmarks/ in the dtype scope (ATN002)
# ----------------------------------------------------------------------
def test_atn002_covers_benchmarks(tmp_path):
    source = "import numpy as np\nx = np.zeros(3, dtype=np.float64)\n"
    diagnostics = _lint_source(tmp_path, "benchmarks/bench_foo.py", source)
    assert _codes(diagnostics) == ["ATN002"]


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
def test_suppression_with_reason_drops_finding(tmp_path):
    source = (
        "x.data[0] = 1.0  "
        "# repro-lint: disable=ATN001 -- test fixture needs a raw write\n"
    )
    assert _lint_source(tmp_path, "src/repro/core/foo.py", source) == []


def test_suppression_without_reason_is_atn000(tmp_path):
    source = "x.data[0] = 1.0  # repro-lint: disable=ATN001\n"
    diagnostics = _lint_source(tmp_path, "src/repro/core/foo.py", source)
    assert _codes(diagnostics) == ["ATN000"]


def test_suppression_covers_only_named_codes(tmp_path):
    source = (
        "import numpy as np\n"
        "x.data = np.float64(1.0)  # repro-lint: disable=ATN001 -- only 001\n"
    )
    diagnostics = _lint_source(tmp_path, "src/repro/core/foo.py", source)
    assert _codes(diagnostics) == ["ATN002"]


def test_suppression_all_wildcard(tmp_path):
    source = (
        "import numpy as np\n"
        "x.data = np.float64(1.0)  # repro-lint: disable=ALL -- fixture line\n"
    )
    assert _lint_source(tmp_path, "src/repro/core/foo.py", source) == []


def test_parse_error_reported(tmp_path):
    diagnostics = _lint_source(tmp_path, "src/repro/core/foo.py", "def broken(:\n")
    assert _codes(diagnostics) == ["parse-error"]


# ----------------------------------------------------------------------
# The acceptance gate: the repo itself lints clean
# ----------------------------------------------------------------------
def test_repo_lints_clean():
    diagnostics = run_lint(
        [
            str(REPO_ROOT / "src"),
            str(REPO_ROOT / "tests"),
            str(REPO_ROOT / "benchmarks"),
        ],
        root=REPO_ROOT,
    )
    assert diagnostics == [], "\n".join(d.format() for d in diagnostics)
