"""Runtime sanitizer: stale buffers, unsanctioned writes, taint, integration."""

import numpy as np
import pytest

from repro.analysis import GradSanitizer, SanitizerError, sanitizer_active
from repro.nn import Tensor, use_sparse_grads
from repro.nn.layers.embedding import FeatureEmbeddings
from repro.nn.layers.linear import Linear
from repro.nn.optim import Adam
from repro.obs import MetricsRegistry, use_registry


def test_stale_saved_buffer_fires_on_assign_between_forward_and_backward():
    x = Tensor(np.ones(3), requires_grad=True)
    with GradSanitizer() as sanitizer:
        y = (x * x).sum()
        x.assign_(np.zeros(3))
        with pytest.raises(SanitizerError) as excinfo:
            y.backward()
    assert excinfo.value.diagnostic.code == "stale-saved-buffer"
    assert sanitizer.stats["stale_buffers"] == 1


def test_optimizer_step_before_backward_fires():
    """Regression: the PR2 in-place optimizer update invalidates buffers
    a pending backward still needs; the sanitizer must make that loud."""
    model = Linear(4, 1, rng=np.random.default_rng(0))
    optimizer = Adam(model.parameters(), lr=0.1)
    x = Tensor(np.ones((2, 4)))
    model(x).sum().backward()  # prime .grad so step() has work to do
    with GradSanitizer():
        pending = model(x).sum()
        optimizer.step()  # mutates the weights the backward closure saved
        with pytest.raises(SanitizerError) as excinfo:
            pending.backward()
    assert excinfo.value.diagnostic.code == "stale-saved-buffer"


def test_lazy_sparse_optimizer_row_update_before_backward_fires():
    """Same regression on the sparse-gradient embedding path: the lazy
    per-row Adam update mutates the table in place."""
    rng = np.random.default_rng(0)
    model = FeatureEmbeddings({"item_id": 20}, {"item_id": 4}, rng=rng)
    optimizer = Adam(model.parameters(), lr=0.1)
    batch = {"item_id": np.array([1, 3, 3, 7])}
    with use_sparse_grads(True):
        model(batch).sum().backward()  # prime sparse .grad
        with GradSanitizer():
            pending = model(batch).sum()
            optimizer.step()
            with pytest.raises(SanitizerError) as excinfo:
                pending.backward()
    assert excinfo.value.diagnostic.code == "stale-saved-buffer"


def test_unsanctioned_raw_data_write_caught_by_content_check():
    x = Tensor(np.ones(3), requires_grad=True)
    with GradSanitizer(check_content=True) as sanitizer:
        y = (x * x).sum()
        x.data[0] = 5.0  # repro-lint: disable=ATN001 -- bypass the version counter on purpose; deep mode must still catch it
        with pytest.raises(SanitizerError) as excinfo:
            y.backward()
    assert excinfo.value.diagnostic.code == "unsanctioned-mutation"
    assert sanitizer.stats["unsanctioned_mutations"] == 1


def test_clean_train_loop_reports_nothing():
    rng = np.random.default_rng(0)
    model = Linear(4, 1, rng=rng)
    optimizer = Adam(model.parameters(), lr=0.1)
    x = Tensor(rng.standard_normal((8, 4)))
    with GradSanitizer(track_nonfinite=True, check_content=True) as sanitizer:
        for _ in range(3):
            optimizer.zero_grad()
            loss = (model(x) ** 2).mean()
            loss.backward()
            optimizer.step()
    assert sanitizer.diagnostics == []
    assert sanitizer.stats["stale_buffers"] == 0
    assert sanitizer.stats["backward_checks"] > 0


def test_taint_names_the_op_that_created_nonfinite_values():
    with GradSanitizer(track_nonfinite=True) as sanitizer:
        with np.errstate(divide="ignore"):
            bad = Tensor(np.array([0.0])).log()
        downstream = bad + 1.0
    assert bad.taint is not None
    assert bad.taint.op == "log"
    assert bad.taint.nonfinite_count == 1
    # Downstream ops inherit the origin instead of re-reporting themselves.
    assert downstream.taint is bad.taint
    assert sanitizer.stats["nonfinite_ops"] == 1
    codes = [d.code for d in sanitizer.diagnostics]
    assert codes == ["nonfinite"]


def test_raise_on_nonfinite_escalates():
    with GradSanitizer(track_nonfinite=True, raise_on_nonfinite=True):
        with np.errstate(divide="ignore"):
            with pytest.raises(SanitizerError) as excinfo:
                Tensor(np.array([0.0])).log()
    assert excinfo.value.diagnostic.code == "nonfinite"


def test_aliased_accumulation_check_raises():
    sanitizer = GradSanitizer()
    buffer = np.zeros(8)
    holder = Tensor(np.zeros(4), name="weights")
    with pytest.raises(SanitizerError) as excinfo:
        sanitizer.check_inplace_accumulate(buffer, buffer[:4], holder)
    assert excinfo.value.diagnostic.code == "aliased-grad-accumulation"
    # Disjoint buffers pass.
    sanitizer.check_inplace_accumulate(buffer, np.ones(8), holder)
    assert sanitizer.stats["accumulate_checks"] == 2


def test_tensor_methods_restored_after_disable():
    originals = {name: Tensor.__dict__[name] for name in ("__mul__", "sum")}
    sanitizer = GradSanitizer()
    with sanitizer:
        assert sanitizer_active()
        assert Tensor.__dict__["__mul__"] is not originals["__mul__"]
    assert not sanitizer_active()
    for name, original in originals.items():
        assert Tensor.__dict__[name] is original


def test_only_one_sanitizer_at_a_time():
    with GradSanitizer():
        with pytest.raises(RuntimeError):
            GradSanitizer().enable()


def test_events_increment_obs_counters():
    registry = MetricsRegistry()
    x = Tensor(np.ones(3), requires_grad=True)
    with use_registry(registry):
        with GradSanitizer():
            y = (x * x).sum()
            x.assign_(np.zeros(3))
            with pytest.raises(SanitizerError):
                y.backward()
    assert registry.counter("analysis.sanitizer.stale_buffers").value == 1.0
