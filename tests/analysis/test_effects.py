"""Effects analyzer: fixtures per rule pack, baseline semantics, repo gate."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.effects import run_effects
from repro.analysis.effects.baseline import (
    Baseline,
    BaselineEntry,
    apply_baseline,
)
from repro.analysis.effects.manifest import (
    build_manifest,
    documented_metrics,
    manifest_diagnostics,
    render_manifest,
)
from repro.analysis.effects.propagate import analyze
from repro.analysis.effects.report import render_thread_hostility
from repro.analysis.effects.rules import engine_entry_points, run_rules

REPO_ROOT = Path(__file__).resolve().parents[2]


def _analyze(tmp_path, files):
    """Write a fake ``repro`` package under a tmp src root and analyze it."""
    for relpath, source in files.items():
        path = tmp_path / "src" / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return analyze(tmp_path / "src", "repro")


def _rule_codes(tmp_path, files):
    return sorted(d.code for d in run_rules(_analyze(tmp_path, files)))


# ----------------------------------------------------------------------
# EFF001: view-escape
# ----------------------------------------------------------------------
def test_eff001_fires_on_mutated_returned_view(tmp_path):
    codes = _rule_codes(tmp_path, {
        "repro/store.py": """
            def head(buf):
                return buf[:4]

            def caller(buf):
                window = head(buf)
                window += 1.0
                return window
        """,
    })
    assert codes == ["EFF001"]


def test_eff001_passes_when_callee_copies(tmp_path):
    codes = _rule_codes(tmp_path, {
        "repro/store.py": """
            def head(buf):
                return buf[:4].copy()

            def caller(buf):
                window = head(buf)
                window += 1.0
                return window
        """,
    })
    assert codes == []


# ----------------------------------------------------------------------
# EFF002: saved-buffer mutation
# ----------------------------------------------------------------------
def test_eff002_fires_on_capture_mutated_after_closure(tmp_path):
    codes = _rule_codes(tmp_path, {
        "repro/ops.py": """
            def forward(x):
                saved = x * 1.0
                def backward(grad):
                    return grad * saved
                saved += 1.0
                return backward
        """,
    })
    assert codes == ["EFF002"]


def test_eff002_fires_when_capture_escapes_to_mutating_callee(tmp_path):
    codes = _rule_codes(tmp_path, {
        "repro/ops.py": """
            def scale_(buf):
                buf += 1.0

            def forward(x):
                saved = x * 1.0
                def backward(grad):
                    return grad * saved
                scale_(saved)
                return backward
        """,
    })
    assert codes == ["EFF002"]


def test_eff002_passes_when_mutation_precedes_closure(tmp_path):
    codes = _rule_codes(tmp_path, {
        "repro/ops.py": """
            def forward(x):
                saved = x * 1.0
                saved += 1.0
                def backward(grad):
                    return grad * saved
                return backward
        """,
    })
    assert codes == []


# ----------------------------------------------------------------------
# EFF003: thread-hostility (+ the report rendering)
# ----------------------------------------------------------------------
_ENGINE_HOSTILE = {
    "repro/serving/engine.py": """
        from repro.serving.cache import remember

        class RealTimeEngine:
            def ingest(self, events):
                remember(events)
    """,
    "repro/serving/cache.py": """
        _CACHE = []

        def remember(events):
            _CACHE.append(events)
    """,
}


def test_eff003_fires_on_global_write_reachable_from_entry(tmp_path):
    analysis = _analyze(tmp_path, _ENGINE_HOSTILE)
    diagnostics = [d for d in run_rules(analysis) if d.code == "EFF003"]
    assert len(diagnostics) == 1
    diagnostic = diagnostics[0]
    assert diagnostic.detail("channel") == "repro.serving.cache._CACHE"
    assert diagnostic.detail("symbol") == "repro.serving.cache.remember"
    assert diagnostic.detail("entries") == "ingest"


def test_eff003_report_names_entry_and_path(tmp_path):
    analysis = _analyze(tmp_path, _ENGINE_HOSTILE)
    assert engine_entry_points(analysis) == [
        "repro.serving.engine.RealTimeEngine.ingest"
    ]
    report = render_thread_hostility(analysis)
    assert "## `RealTimeEngine.ingest`" in report
    assert "repro.serving.cache._CACHE" in report
    assert "serving.cache.remember" in report  # the example path


def test_eff003_passes_when_state_is_per_engine(tmp_path):
    codes = _rule_codes(tmp_path, {
        "repro/serving/engine.py": """
            class RealTimeEngine:
                def __init__(self):
                    self._cache = []

                def ingest(self, events):
                    self._cache.append(events)
        """,
    })
    assert codes == []


# ----------------------------------------------------------------------
# EFF004: ambient-context discipline
# ----------------------------------------------------------------------
def test_eff004_fires_on_cross_module_stack_write_and_read(tmp_path):
    diagnostics = run_rules(_analyze(tmp_path, {
        "repro/obs/context.py": """
            _ACTIVE_THINGS = []

            def use_thing(thing):
                _ACTIVE_THINGS.append(thing)
        """,
        "repro/serving/sneaky.py": """
            from repro.obs.context import _ACTIVE_THINGS

            def push(thing):
                _ACTIVE_THINGS.append(thing)

            def peek():
                return _ACTIVE_THINGS[-1]
        """,
    }))
    codes = sorted(d.code for d in diagnostics)
    assert codes == ["EFF004", "EFF004"]
    symbols = sorted(d.detail("symbol") for d in diagnostics)
    assert symbols == [
        "repro.serving.sneaky.peek",
        "repro.serving.sneaky.push",
    ]


def test_eff004_passes_for_owner_module_scoping_constructs(tmp_path):
    codes = _rule_codes(tmp_path, {
        "repro/obs/context.py": """
            _ACTIVE_THINGS = []

            def get_active_thing():
                return _ACTIVE_THINGS[-1] if _ACTIVE_THINGS else None

            class use_thing:
                def __init__(self, thing):
                    self.thing = thing

                def __enter__(self):
                    _ACTIVE_THINGS.append(self.thing)
                    return self.thing

                def __exit__(self, *exc):
                    _ACTIVE_THINGS.pop()
        """,
    })
    assert codes == []


# ----------------------------------------------------------------------
# EFF005: interprocedural dtype promotion
# ----------------------------------------------------------------------
_DTYPE_HELPER_BROKEN = """
    import numpy as np

    def scale(values):
        return np.asarray(values, dtype=np.float64)
"""


def test_eff005_fires_on_out_of_scope_float64_helper(tmp_path):
    diagnostics = run_rules(_analyze(tmp_path, {
        "repro/metrics/helper.py": _DTYPE_HELPER_BROKEN,
        "repro/core/model.py": """
            from repro.metrics.helper import scale

            def score(values):
                return scale(values)
        """,
    }))
    codes = [d.code for d in diagnostics]
    assert codes == ["EFF005"]
    assert diagnostics[0].detail("origin") == "repro.metrics.helper.scale"


def test_eff005_sees_through_call_chains(tmp_path):
    codes = _rule_codes(tmp_path, {
        "repro/metrics/helper.py": _DTYPE_HELPER_BROKEN,
        "repro/metrics/outer.py": """
            from repro.metrics.helper import scale

            def normalise(values):
                return scale(values)
        """,
        "repro/core/model.py": """
            from repro.metrics.outer import normalise

            def score(values):
                return normalise(values)
        """,
    })
    assert codes == ["EFF005"]


def test_eff005_respects_reasoned_suppression_at_origin(tmp_path):
    codes = _rule_codes(tmp_path, {
        "repro/metrics/helper.py": """
            import numpy as np

            def scale(values):
                return np.asarray(values, dtype=np.float64)  # repro-lint: disable=EFF005 -- exact metric math
        """,
        "repro/core/model.py": """
            from repro.metrics.helper import scale

            def score(values):
                return scale(values)
        """,
    })
    assert codes == []


# ----------------------------------------------------------------------
# Manifest: EFF006 conflicts and EFF007 docs drift
# ----------------------------------------------------------------------
def _manifest_for(tmp_path, source, docs=None):
    src = tmp_path / "src" / "repro" / "mod.py"
    src.parent.mkdir(parents=True, exist_ok=True)
    src.write_text(textwrap.dedent(source), encoding="utf-8")
    docs_path = tmp_path / "docs" / "observability.md"
    if docs is not None:
        docs_path.parent.mkdir(parents=True, exist_ok=True)
        docs_path.write_text(textwrap.dedent(docs), encoding="utf-8")
    manifest = build_manifest([tmp_path / "src"], tmp_path)
    diagnostics = manifest_diagnostics(
        manifest, docs_path, "docs/observability.md"
    )
    return manifest, diagnostics


def test_eff006_flags_kind_conflict_and_span_collision(tmp_path):
    _, diagnostics = _manifest_for(tmp_path, """
        def report(registry):
            registry.counter("jobs.done").inc()
            registry.gauge("jobs.done").set(1.0)
            with maybe_span("jobs.done"):
                pass
    """)
    assert [d.code for d in diagnostics] == ["EFF006", "EFF006"]


def test_eff007_flags_documented_name_with_wrong_kind_or_gone(tmp_path):
    _, diagnostics = _manifest_for(
        tmp_path,
        """
            def report(registry):
                registry.counter("engine.refreshes").inc()
        """,
        docs="""
            | metric | kind | meaning |
            |--------|------|---------|
            | `engine.refreshes` | histogram | wrong kind |
            | `engine.gone` | counter | removed |
        """,
    )
    assert [d.code for d in diagnostics] == ["EFF007", "EFF007"]


def test_manifest_dynamic_prefix_covers_documented_names(tmp_path):
    manifest, diagnostics = _manifest_for(
        tmp_path,
        """
            def report(registry, group):
                registry.histogram(f"trainer.grad_norm.{group}").observe(1.0)
        """,
        docs="""
            | metric | kind |
            |--------|------|
            | `trainer.grad_norm.encoder` | histogram |
        """,
    )
    assert diagnostics == []
    assert manifest.entries[("trainer.grad_norm.*", "histogram")].dynamic
    text = render_manifest(manifest)
    assert "`trainer.grad_norm.*` *(dynamic)*" in text


def test_documented_metrics_parses_combined_rows():
    rows = documented_metrics(
        "| `a.x` / `a.y` | counter / histogram | two |\n"
        "| `b.z` | gauge | one |\n"
        "| `Counter` | monotone accumulator | not a metric row |\n"
    )
    assert rows == [("a.x", "counter", 1), ("a.y", "histogram", 1),
                    ("b.z", "gauge", 2)]


# ----------------------------------------------------------------------
# Diagnostic JSON round-trip
# ----------------------------------------------------------------------
def test_diagnostic_json_round_trip():
    original = Diagnostic.make(
        "EFF003", "error", "write reachable from entry point",
        location="src/repro/serving/engine.py:150",
        symbol="repro.serving.engine.RealTimeEngine.ingest",
        channel="registry.counter",
    )
    payload = json.loads(json.dumps(original.to_json()))
    assert Diagnostic.from_json(payload) == original


def test_diagnostic_from_json_rejects_bad_details():
    with pytest.raises(ValueError):
        Diagnostic.from_json({
            "code": "X", "severity": "error", "message": "m",
            "details": ["not", "a", "dict"],
        })


# ----------------------------------------------------------------------
# Baseline semantics
# ----------------------------------------------------------------------
def _finding():
    return Diagnostic.make(
        "EFF003", "error", "msg", location="src/x.py:1",
        symbol="repro.x.f", channel="registry.counter",
    )


def test_baseline_suppresses_matching_finding_with_reason(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 1, "entries": [{
        "code": "EFF003", "symbol": "repro.x.f",
        "detail": "registry.counter", "reason": "shared telemetry",
    }]}))
    kept, suppressed = apply_baseline([_finding()], Baseline.load(path))
    assert kept == []
    assert len(suppressed) == 1


def test_baseline_reasonless_entry_is_an_error(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 1, "entries": [{
        "code": "EFF003", "symbol": "repro.x.f",
        "detail": "registry.counter", "reason": "  ",
    }]}))
    kept, suppressed = apply_baseline([_finding()], Baseline.load(path))
    assert suppressed == []
    assert [d.code for d in kept] == ["EFF000"]


def test_baseline_stale_entry_is_an_error():
    baseline = Baseline(entries={
        ("EFF003", "repro.gone.f", "registry.counter"): BaselineEntry(
            "EFF003", "repro.gone.f", "registry.counter", "obsolete"
        ),
    })
    kept, suppressed = apply_baseline([], baseline)
    assert [d.code for d in kept] == ["EFF000"]
    assert "stale" in kept[0].message


def test_baseline_merge_prefers_self_and_unions(tmp_path):
    a = Baseline(entries={
        ("C", "s", "d"): BaselineEntry("C", "s", "d", "mine"),
    })
    b = Baseline(entries={
        ("C", "s", "d"): BaselineEntry("C", "s", "d", "theirs"),
        ("C", "t", "d"): BaselineEntry("C", "t", "d", "extra"),
    })
    merged = a.merge(b)
    assert merged.entries[("C", "s", "d")].reason == "mine"
    assert ("C", "t", "d") in merged.entries
    round_tripped = Baseline.load(_save(tmp_path, merged))
    assert round_tripped.entries == merged.entries


def _save(tmp_path, baseline):
    path = tmp_path / "merged.json"
    baseline.save(path)
    return path


def test_baseline_load_rejects_duplicates_and_garbage(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text("not json")
    with pytest.raises(ValueError):
        Baseline.load(path)
    path.write_text(json.dumps({"version": 1, "entries": [
        {"code": "C", "symbol": "s", "detail": "d", "reason": "r"},
        {"code": "C", "symbol": "s", "detail": "d", "reason": "r2"},
    ]}))
    with pytest.raises(ValueError):
        Baseline.load(path)


# ----------------------------------------------------------------------
# The repo gate (mirrors test_repo_lints_clean)
# ----------------------------------------------------------------------
def test_repo_effects_clean():
    result = run_effects(REPO_ROOT)
    assert result.ok, "\n".join(d.format() for d in result.diagnostics)
    # The acceptance surface: the committed report enumerates the writes
    # reachable from every serving entry point.
    report = result.reports["docs/thread_hostility.md"]
    for entry in ("ingest", "refresh", "top_k", "recommend_for_user"):
        assert f"## `RealTimeEngine.{entry}`" in report


def test_repo_baseline_entries_all_carry_reasons():
    baseline = Baseline.load(REPO_ROOT / "effects_baseline.json")
    assert baseline.entries, "baseline unexpectedly empty"
    for entry in baseline.entries.values():
        assert entry.reason.strip(), f"reason-less baseline entry {entry.key}"
