"""Static graph checker: registry-wide passes and per-failure-class fixtures."""

import numpy as np
import pytest

from repro.analysis import check_model, default_paths, demo_schema
from repro.core.registry import available_models, build_model
from repro.core.towers import TowerConfig
from repro.data.schema import GROUP_USER, FeatureSchema, NumericFeature
from repro.nn import Tensor, default_dtype
from repro.nn.layers.linear import Linear
from repro.nn.module import Module, Parameter

SMALL_CONFIG = TowerConfig(
    vector_dim=8, deep_dims=(16, 8), head_dims=(16,), num_cross_layers=1
)


def _numeric_schema():
    return FeatureSchema(
        categorical=[], numeric=[NumericFeature("x", GROUP_USER)]
    )


def _column(features):
    return Tensor(np.asarray(features["x"]).reshape(-1, 1))


# ----------------------------------------------------------------------
# Every shipped model must pass the checker
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", available_models())
def test_registry_model_passes(name):
    schema = demo_schema()
    model = build_model(name, schema, SMALL_CONFIG, rng=np.random.default_rng(0))
    report = check_model(model, schema, model_name=name)
    assert report.ok, report.format()
    # Every parameter is reachable, so no grad-less findings at all.
    assert not report.diagnostics, report.format()


def test_atnn_passes_in_float32():
    with default_dtype(np.float32):
        schema = demo_schema()
        model = build_model(
            "atnn", schema, SMALL_CONFIG, rng=np.random.default_rng(0)
        )
        report = check_model(model, schema)
    assert report.ok, report.format()


def test_atnn_traces_both_paths_with_symbolic_batch():
    schema = demo_schema()
    model = build_model("atnn", schema, SMALL_CONFIG, rng=np.random.default_rng(0))
    paths = default_paths(model)
    assert [p.name for p in paths] == ["forward", "forward_generator"]
    report = check_model(model, schema)
    traced_paths = {row[0] for row in report.shape_table}
    assert traced_paths == {"forward", "forward_generator"}
    # The batch dimension must have been symbolised away from the
    # concrete trace sizes: leading dims read "B", never 7 or 13.
    outputs = [row[4] for row in report.shape_table]
    assert any(sym.startswith("(B") for sym in outputs)
    assert not any(sym.startswith(("(7,", "(7)", "(13,")) for sym in outputs)


# ----------------------------------------------------------------------
# One intentionally broken model per failure class
# ----------------------------------------------------------------------
class ShapeBroken(Module):
    """Second layer expects 5 inputs but receives 8."""

    def __init__(self, rng):
        super().__init__()
        self.first = Linear(1, 8, rng=rng)
        self.second = Linear(5, 1, rng=rng)

    def forward(self, features):
        return self.second(self.first(_column(features))).reshape((-1,))


def test_shape_error_names_the_failing_module():
    model = ShapeBroken(np.random.default_rng(0))
    report = check_model(model, _numeric_schema())
    assert not report.ok
    codes = {d.code for d in report.errors()}
    assert "shape-error" in codes
    shape_errors = [d for d in report.errors() if d.code == "shape-error"]
    assert all("forward@second" in d.location for d in shape_errors)


class PromotionBroken(Module):
    """Float64-parameterised head fed float32 activations.

    The classic leak: the model is constructed under the default float64
    mode, then run in a float32 pipeline — every op touching its weights
    silently promotes back to float64.
    """

    def __init__(self, rng):
        super().__init__()
        self.head = Linear(1, 1, rng=rng)

    def forward(self, features):
        return self.head(_column(features)).reshape((-1,))


def test_dtype_promotion_detected_in_float32_mode():
    model = PromotionBroken(np.random.default_rng(0))  # float64 weights
    with default_dtype(np.float32):  # float32 inputs at check time
        report = check_model(model, _numeric_schema())
    assert not report.ok
    promotions = [d for d in report.errors() if d.code == "dtype-promotion"]
    assert promotions, report.format()
    assert any("head" in d.location for d in promotions)


class DetachedBroken(Module):
    """Runs a side branch whose output is computed and discarded."""

    def __init__(self, rng):
        super().__init__()
        self.trunk = Linear(1, 4, rng=rng)
        self.head = Linear(4, 1, rng=rng)
        self.side = Linear(1, 3, rng=rng)

    def forward(self, features):
        x = _column(features)
        self.side(x)  # dead differentiable subgraph
        return self.head(self.trunk(x)).reshape((-1,))


def test_detached_subgraph_and_its_gradless_parameters():
    model = DetachedBroken(np.random.default_rng(0))
    report = check_model(model, _numeric_schema())
    assert not report.ok
    codes = {d.code for d in report.errors()}
    assert "detached-subgraph" in codes
    gradless = {d.location for d in report.errors() if d.code == "grad-less-parameter"}
    assert gradless == {"side.bias", "side.weight"}


class GradlessBroken(Module):
    """Registers a parameter no forward path ever touches."""

    def __init__(self, rng):
        super().__init__()
        self.head = Linear(1, 1, rng=rng)
        self.unused = Parameter(np.zeros(3), name="unused")

    def forward(self, features):
        return self.head(_column(features)).reshape((-1,))


def test_gradless_parameter_reported():
    model = GradlessBroken(np.random.default_rng(0))
    report = check_model(model, _numeric_schema())
    assert not report.ok
    errors = report.errors()
    assert [d.code for d in errors] == ["grad-less-parameter"]
    assert errors[0].location == "unused"


class BroadcastBlowup(Module):
    """(B,) * (B, 1) silently builds a (B, B) matrix."""

    def forward(self, features):
        flat = Tensor(np.asarray(features["x"]))
        col = Tensor(np.asarray(features["x"]).reshape(-1, 1))
        return (flat * col).mean()


def test_batch_broadcast_blowup_warns_but_does_not_fail():
    model = BroadcastBlowup()
    report = check_model(model, _numeric_schema())
    assert report.ok  # warning severity only
    warnings = [d for d in report.diagnostics if d.code == "batch-broadcast-blowup"]
    assert warnings, report.format()


def test_equal_batch_sizes_rejected():
    model = GradlessBroken(np.random.default_rng(0))
    with pytest.raises(ValueError):
        check_model(model, _numeric_schema(), batch_sizes=(7, 7))
