"""Calibration (Platt, isotonic) and grouped-AUC tests."""

import numpy as np
import pytest

from repro.metrics import (
    IsotonicCalibrator,
    PlattScaler,
    calibration_error,
    grouped_auc,
    roc_auc,
)


def _miscalibrated_data(rng, n=4000):
    """Labels drawn from true probabilities; scores systematically skewed."""
    true_p = rng.uniform(0.05, 0.95, size=n)
    labels = (rng.random(n) < true_p).astype(float)
    skewed = np.clip(true_p ** 2.5, 1e-6, 1 - 1e-6)  # under-confident low end
    return skewed, labels


class TestPlattScaler:
    def test_improves_calibration(self, rng):
        scores, labels = _miscalibrated_data(rng)
        calibrated = PlattScaler(iterations=2000, lr=0.5).fit_transform(scores, labels)
        assert calibration_error(labels, calibrated) < calibration_error(
            labels, scores
        )

    def test_preserves_auc(self, rng):
        scores, labels = _miscalibrated_data(rng)
        calibrated = PlattScaler().fit_transform(scores, labels)
        assert roc_auc(labels, calibrated) == pytest.approx(
            roc_auc(labels, scores), abs=1e-9
        )

    def test_outputs_probabilities(self, rng):
        scores, labels = _miscalibrated_data(rng, n=500)
        out = PlattScaler().fit_transform(scores, labels)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_transform_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            PlattScaler().transform([0.5])

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            PlattScaler().fit([0.5], [1.0])  # too few
        with pytest.raises(ValueError):
            PlattScaler().fit([0.5, 0.6], [0.0, 2.0])  # non-binary
        with pytest.raises(ValueError):
            PlattScaler(iterations=0)


class TestIsotonicCalibrator:
    def test_improves_calibration(self, rng):
        scores, labels = _miscalibrated_data(rng)
        calibrated = IsotonicCalibrator().fit_transform(scores, labels)
        assert calibration_error(labels, calibrated) < calibration_error(
            labels, scores
        )

    def test_output_monotone_in_score(self, rng):
        scores, labels = _miscalibrated_data(rng, n=1000)
        calibrator = IsotonicCalibrator().fit(scores, labels)
        grid = np.linspace(scores.min(), scores.max(), 200)
        out = calibrator.transform(grid)
        assert np.all(np.diff(out) >= -1e-12)

    def test_fitted_values_are_rates(self, rng):
        scores, labels = _miscalibrated_data(rng, n=1000)
        calibrator = IsotonicCalibrator().fit(scores, labels)
        assert calibrator.values_.min() >= 0.0
        assert calibrator.values_.max() <= 1.0
        assert np.all(np.diff(calibrator.values_) > 0)  # strictly increasing blocks

    def test_perfectly_separable_two_blocks(self):
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        labels = np.array([0.0, 0.0, 1.0, 1.0])
        calibrator = IsotonicCalibrator().fit(scores, labels)
        assert calibrator.values_.size == 2
        np.testing.assert_allclose(calibrator.values_, [0.0, 1.0])

    def test_anti_monotone_scores_collapse_to_one_block(self):
        scores = np.array([0.1, 0.2, 0.3, 0.4])
        labels = np.array([1.0, 1.0, 0.0, 0.0])  # scores inversely related
        calibrator = IsotonicCalibrator().fit(scores, labels)
        assert calibrator.values_.size == 1
        assert calibrator.values_[0] == pytest.approx(0.5)

    def test_transform_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            IsotonicCalibrator().transform([0.5])


class TestGroupedAUC:
    def test_perfect_within_group_ranking(self):
        labels = [0, 1, 0, 1]
        scores = [0.1, 0.9, 0.2, 0.8]
        groups = [0, 0, 1, 1]
        gauc, n_groups = grouped_auc(labels, scores, groups)
        assert gauc == 1.0 and n_groups == 2

    def test_detects_within_group_failure(self):
        """Globally separable via a group bias, but wrong within groups."""
        labels = np.array([1, 0, 1, 0], dtype=float)
        scores = np.array([0.8, 0.9, 0.1, 0.2])  # group 0 high, group 1 low
        groups = np.array([0, 0, 1, 1])
        global_auc = roc_auc(labels, scores)
        gauc, _ = grouped_auc(labels, scores, groups)
        assert gauc == 0.0
        assert global_auc > gauc

    def test_impression_weighting(self):
        # Group 0 (2 rows, AUC 1) and group 1 (4 rows, AUC 0): weighted 1/3.
        labels = [0, 1, 0, 1, 0, 1]
        scores = [0.1, 0.9, 0.9, 0.1, 0.8, 0.2]
        groups = [0, 0, 1, 1, 1, 1]
        gauc, n_groups = grouped_auc(labels, scores, groups)
        assert n_groups == 2
        assert gauc == pytest.approx(2 / 6 * 1.0 + 4 / 6 * 0.0)

    def test_single_class_groups_skipped(self):
        labels = [1, 1, 0, 1]
        scores = [0.5, 0.6, 0.1, 0.9]
        groups = [0, 0, 1, 1]
        gauc, n_groups = grouped_auc(labels, scores, groups)
        assert n_groups == 1  # group 0 is all-positive

    def test_no_valid_groups_rejected(self):
        with pytest.raises(ValueError):
            grouped_auc([1, 1], [0.5, 0.6], [0, 0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            grouped_auc([1, 0], [0.5], [0, 0])

    def test_min_impressions_validation(self):
        with pytest.raises(ValueError):
            grouped_auc([0, 1], [0.1, 0.9], [0, 0], min_impressions=1)

    def test_on_trained_model(self, tiny_tmall_world):
        """GAUC of ground-truth click probabilities beats 0.5 clearly."""
        world = tiny_tmall_world
        probabilities = world.click_probability(
            world.interaction_user_indices,
            world.interaction_item_indices,
            world.item_latents,
            world.item_quality,
        )
        gauc, n_groups = grouped_auc(
            world.interactions.label("ctr"),
            probabilities,
            world.interaction_user_indices,
            min_impressions=5,
        )
        assert n_groups > 20
        assert gauc > 0.6
