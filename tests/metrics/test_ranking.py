"""Top-k ranking metric tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    hit_rate_at_k,
    mrr_at_k,
    ndcg_at_k,
    ranking_report,
    recall_at_k,
)


RELEVANCE = np.array([0, 1, 0, 1, 0], dtype=float)
SCORES = np.array([0.9, 0.8, 0.7, 0.2, 0.1])  # one relevant in top-2


class TestKnownValues:
    def test_hit_rate(self):
        assert hit_rate_at_k(RELEVANCE, SCORES, 1) == 0.0
        assert hit_rate_at_k(RELEVANCE, SCORES, 2) == 1.0

    def test_recall(self):
        assert recall_at_k(RELEVANCE, SCORES, 2) == 0.5
        assert recall_at_k(RELEVANCE, SCORES, 5) == 1.0

    def test_ndcg_perfect_ranking(self):
        relevance = np.array([1, 1, 0, 0], dtype=float)
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert ndcg_at_k(relevance, scores, 4) == pytest.approx(1.0)

    def test_ndcg_hand_computed(self):
        # Relevant at ranks 2 and 4 of 4; ideal has them at ranks 1 and 2.
        relevance = np.array([0, 1, 0, 1], dtype=float)
        scores = np.array([0.9, 0.8, 0.7, 0.6])
        dcg = 1 / np.log2(3) + 1 / np.log2(5)
        ideal = 1 / np.log2(2) + 1 / np.log2(3)
        assert ndcg_at_k(relevance, scores, 4) == pytest.approx(dcg / ideal)

    def test_mrr(self):
        assert mrr_at_k(RELEVANCE, SCORES, 5) == pytest.approx(0.5)

    def test_mrr_no_hit_is_zero(self):
        assert mrr_at_k(RELEVANCE, SCORES, 1) == 0.0


class TestValidation:
    def test_no_relevant_items_rejected(self):
        with pytest.raises(ValueError):
            recall_at_k(np.zeros(4), np.arange(4.0), 2)
        with pytest.raises(ValueError):
            ndcg_at_k(np.zeros(4), np.arange(4.0), 2)

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError):
            hit_rate_at_k(np.array([0.0, 2.0]), np.array([0.1, 0.2]), 1)

    def test_k_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            hit_rate_at_k(RELEVANCE, SCORES, 6)
        with pytest.raises(ValueError):
            hit_rate_at_k(RELEVANCE, SCORES, 0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            recall_at_k(np.array([1.0, 0.0]), np.array([0.5]), 1)


class TestRankingReport:
    def test_averages_over_users(self):
        users = [
            (np.array([1, 0], dtype=float), np.array([0.9, 0.1])),  # perfect
            (np.array([0, 1], dtype=float), np.array([0.9, 0.1])),  # worst
        ]
        report = ranking_report(users, k=1)
        assert report["hit_rate"] == 0.5
        assert report["n_users"] == 2

    def test_skips_users_without_positives(self):
        users = [
            (np.array([1, 0], dtype=float), np.array([0.9, 0.1])),
            (np.array([0, 0], dtype=float), np.array([0.9, 0.1])),
        ]
        report = ranking_report(users, k=1)
        assert report["n_users"] == 1

    def test_all_empty_rejected(self):
        with pytest.raises(ValueError):
            ranking_report([(np.zeros(3), np.arange(3.0))], k=1)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**32 - 1), st.integers(2, 20))
def test_metrics_bounded_and_consistent(seed, n):
    rng = np.random.default_rng(seed)
    relevance = np.zeros(n)
    relevance[rng.integers(0, n)] = 1.0
    scores = rng.normal(size=n)
    k = int(rng.integers(1, n + 1))
    hit = hit_rate_at_k(relevance, scores, k)
    recall = recall_at_k(relevance, scores, k)
    ndcg = ndcg_at_k(relevance, scores, k)
    mrr = mrr_at_k(relevance, scores, k)
    for value in (hit, recall, ndcg, mrr):
        assert 0.0 <= value <= 1.0
    # With one relevant item: hit == recall, and ndcg/mrr positive iff hit.
    assert hit == recall
    assert (ndcg > 0) == (hit == 1.0)
    assert (mrr > 0) == (hit == 1.0)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_perfect_scores_maximise_all_metrics(seed):
    rng = np.random.default_rng(seed)
    n = 12
    relevance = (rng.random(n) < 0.4).astype(float)
    if relevance.sum() in (0, n):
        relevance[0] = 1.0
        relevance[1] = 0.0
    scores = relevance + 0.01 * rng.random(n)  # relevant strictly on top
    k = int(relevance.sum())
    assert recall_at_k(relevance, scores, k) == pytest.approx(1.0)
    assert ndcg_at_k(relevance, scores, k) == pytest.approx(1.0)
    assert mrr_at_k(relevance, scores, k) == pytest.approx(1.0)
