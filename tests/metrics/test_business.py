"""Business metric tests: degradation, quintile panel, rank correlation."""

import numpy as np
import pytest

from repro.metrics import (
    performance_degradation,
    popularity_group_panel,
    rank_correlation,
)


class TestDegradation:
    def test_matches_paper_formula(self):
        # GBDT row of Table I: (0.6149 - 0.6590) / 0.6590 = -6.69%.
        value = performance_degradation(0.6149, 0.6590)
        assert value == pytest.approx(-0.0669, abs=1e-4)

    def test_no_degradation(self):
        assert performance_degradation(0.7, 0.7) == 0.0

    def test_improvement_positive(self):
        assert performance_degradation(0.8, 0.7) > 0

    def test_invalid_baseline_rejected(self):
        with pytest.raises(ValueError):
            performance_degradation(0.5, 0.0)


class TestQuintilePanel:
    def _panel(self):
        scores = np.arange(100, dtype=float)  # best items have highest score
        ipv = scores * 10  # perfectly aligned indicator
        return popularity_group_panel(scores, {"IPV": {7: ipv}}, n_groups=5)

    def test_group_labels(self):
        panel = self._panel()
        assert panel.group_labels == [
            "0-20", "20-40", "40-60", "60-80", "80-100", "Average",
        ]

    def test_top_group_first_and_best(self):
        panel = self._panel()
        column = panel.column("IPV", 7)
        assert column[0] == max(column[:5])

    def test_average_row_is_population_mean(self):
        panel = self._panel()
        assert panel.column("IPV", 7)[-1] == pytest.approx(10 * np.arange(100).mean())

    def test_monotone_detection(self):
        panel = self._panel()
        assert panel.is_monotone("IPV", 7)

    def test_monotone_tolerance(self):
        # Groups (best first): {9,8}, {7,6}, {5,4}, {3,2}, {1,0} by score.
        # Depress the top group's values to 6.0 so it inverts below the
        # second group's 6.5 by 0.5 — inside a 20%-of-mean tolerance.
        scores = np.arange(10, dtype=float)
        values = scores.copy()
        values[[8, 9]] = 6.0
        panel = popularity_group_panel(scores, {"x": {1: values}}, n_groups=5)
        assert not panel.is_monotone("x", 1)
        assert panel.is_monotone("x", 1, tolerance=0.2)

    def test_unknown_column_rejected(self):
        with pytest.raises(KeyError):
            self._panel().column("GMV", 7)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            popularity_group_panel(
                np.arange(10, dtype=float), {"x": {1: np.zeros(9)}}
            )

    def test_too_few_items_rejected(self):
        with pytest.raises(ValueError):
            popularity_group_panel(np.array([1.0, 2.0]), {"x": {1: np.zeros(2)}})

    def test_inverse_alignment_not_monotone(self):
        scores = np.arange(50, dtype=float)
        panel = popularity_group_panel(scores, {"x": {1: -scores}}, n_groups=5)
        assert not panel.is_monotone("x", 1)


class TestRankCorrelation:
    def test_identical_orderings(self, rng):
        values = rng.normal(size=50)
        assert rank_correlation(values, values * 2 + 1) == pytest.approx(1.0)

    def test_reversed_orderings(self, rng):
        values = rng.normal(size=50)
        assert rank_correlation(values, -values) == pytest.approx(-1.0)

    def test_independent_near_zero(self, rng):
        a = rng.normal(size=5000)
        b = rng.normal(size=5000)
        assert abs(rank_correlation(a, b)) < 0.05

    def test_ties_handled(self):
        assert rank_correlation([1, 1, 2, 2], [1, 1, 2, 2]) == pytest.approx(1.0)

    def test_constant_input_zero(self):
        assert rank_correlation([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            rank_correlation([1.0], [1.0, 2.0])

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            rank_correlation([1.0], [1.0])
