"""AUC tests, including tie handling and hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import roc_auc


class TestKnownValues:
    def test_perfect_ranking(self):
        assert roc_auc([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_inverted_ranking(self):
        assert roc_auc([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == 0.0

    def test_random_constant_scores(self):
        assert roc_auc([0, 1, 0, 1], [0.5, 0.5, 0.5, 0.5]) == 0.5

    def test_hand_computed(self):
        # Positives at scores 0.8, 0.4; negatives at 0.6, 0.2.
        # Pairs: (0.8>0.6), (0.8>0.2), (0.4<0.6), (0.4>0.2) -> 3/4.
        assert roc_auc([1, 1, 0, 0], [0.8, 0.4, 0.6, 0.2]) == 0.75

    def test_tie_counts_half(self):
        # Positive at 0.5 ties negative at 0.5: one clean win + one tie of 2 pairs.
        assert roc_auc([1, 0], [0.5, 0.5]) == 0.5

    def test_matches_naive_pair_counting(self, rng):
        labels = (rng.random(100) < 0.3).astype(float)
        scores = np.round(rng.random(100), 1)  # many ties
        positives = scores[labels == 1]
        negatives = scores[labels == 0]
        wins = sum((p > n) + 0.5 * (p == n) for p in positives for n in negatives)
        expected = wins / (len(positives) * len(negatives))
        assert roc_auc(labels, scores) == pytest.approx(expected)


class TestValidation:
    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            roc_auc([1, 1], [0.5, 0.6])

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError):
            roc_auc([0, 2], [0.5, 0.6])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            roc_auc([0, 1], [0.5])

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            roc_auc(np.zeros((2, 2)), np.zeros((2, 2)))


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.booleans(), min_size=4, max_size=40).filter(
        lambda labels: 0 < sum(labels) < len(labels)
    ),
    st.integers(0, 2**32 - 1),
)
def test_auc_invariant_to_monotone_transform(labels, seed):
    rng = np.random.default_rng(seed)
    labels = np.array(labels, dtype=float)
    scores = rng.normal(size=labels.size)
    base = roc_auc(labels, scores)
    assert roc_auc(labels, 3.0 * scores + 2.0) == pytest.approx(base)
    assert roc_auc(labels, np.exp(scores)) == pytest.approx(base)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.booleans(), min_size=4, max_size=40).filter(
        lambda labels: 0 < sum(labels) < len(labels)
    ),
    st.integers(0, 2**32 - 1),
)
def test_auc_flips_under_negation(labels, seed):
    rng = np.random.default_rng(seed)
    labels = np.array(labels, dtype=float)
    scores = rng.normal(size=labels.size)
    assert roc_auc(labels, scores) + roc_auc(labels, -scores) == pytest.approx(1.0)
