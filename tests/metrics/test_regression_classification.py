"""Regression and classification metric tests."""

import numpy as np
import pytest

from repro.metrics import (
    accuracy,
    calibration_error,
    log_loss,
    mae,
    mse,
    precision_at_k,
    r2_score,
    rmse,
)


class TestRegression:
    def test_mae(self):
        assert mae([1.0, 2.0], [2.0, 4.0]) == pytest.approx(1.5)

    def test_mse(self):
        assert mse([1.0, 2.0], [2.0, 4.0]) == pytest.approx(2.5)

    def test_rmse(self):
        assert rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(np.sqrt(12.5))

    def test_r2_perfect(self):
        assert r2_score([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 1.0

    def test_r2_mean_predictor_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, np.full(3, y.mean())) == pytest.approx(0.0)

    def test_r2_constant_truth(self):
        assert r2_score([2.0, 2.0], [2.0, 2.0]) == 1.0
        assert r2_score([2.0, 2.0], [1.0, 3.0]) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mae([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mse([], [])


class TestClassification:
    def test_log_loss_perfect(self):
        assert log_loss([1.0, 0.0], [1.0, 0.0]) == pytest.approx(0.0, abs=1e-9)

    def test_log_loss_uniform(self):
        assert log_loss([1.0, 0.0], [0.5, 0.5]) == pytest.approx(np.log(2))

    def test_log_loss_clipping(self):
        assert np.isfinite(log_loss([1.0], [0.0]))

    def test_accuracy(self):
        assert accuracy([1, 0, 1, 0], [0.9, 0.1, 0.4, 0.6]) == 0.5

    def test_accuracy_threshold(self):
        assert accuracy([1], [0.4], threshold=0.3) == 1.0

    def test_precision_at_k(self):
        labels = [1, 0, 1, 0, 0]
        scores = [0.9, 0.8, 0.7, 0.2, 0.1]
        assert precision_at_k(labels, scores, 2) == 0.5
        assert precision_at_k(labels, scores, 3) == pytest.approx(2 / 3)

    def test_precision_at_k_invalid_k(self):
        with pytest.raises(ValueError):
            precision_at_k([1, 0], [0.5, 0.4], 3)

    def test_calibration_perfectly_calibrated(self, rng):
        probabilities = rng.uniform(size=20000)
        labels = (rng.random(20000) < probabilities).astype(float)
        assert calibration_error(labels, probabilities) < 0.02

    def test_calibration_detects_bias(self):
        labels = np.zeros(100)
        probabilities = np.full(100, 0.9)
        assert calibration_error(labels, probabilities) == pytest.approx(0.9)

    def test_calibration_invalid_bins(self):
        with pytest.raises(ValueError):
            calibration_error([1.0], [0.5], n_bins=0)
