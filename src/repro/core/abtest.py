"""Simulated online A/B tests: model selection vs human expert selection.

The paper's Table III (Tmall) and Table V (Ele.me) compare ATNN's picks
with manual curation by domain experts.  Since the live platform cannot be
shipped with the repository, the expert is modelled as a *partially
informed heuristic*: they see a few salient profile features (brand tier,
seller reputation, image quality) with judgement noise, plus a familiarity
bias toward big brands — but they cannot compute feature crosses or latent
taste matches.  This is the standard simulation of manual curation and
preserves the relative claim the paper makes (a learned model that captures
cross features outperforms salient-feature heuristics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.data.dataset import FeatureTable
from repro.data.synthetic.common import standardize

__all__ = ["ExpertConfig", "ExpertSelector", "select_top_k", "first_k_transaction_time"]


@dataclass(frozen=True)
class ExpertConfig:
    """How the simulated expert scores candidates.

    Attributes
    ----------
    feature_weights:
        Salient features the expert looks at and their weights.
    judgement_noise:
        Std of the expert's per-item scoring noise (relative to the
        standardised score scale; larger = sloppier expert).
    """

    feature_weights: Dict[str, float] = None  # type: ignore[assignment]
    judgement_noise: float = 1.0

    def __post_init__(self) -> None:
        if self.feature_weights is None:
            object.__setattr__(
                self,
                "feature_weights",
                {
                    "item_image_quality": 1.0,
                    "item_title_quality": 0.8,
                    "item_shipping_speed": 0.5,
                },
            )
        if self.judgement_noise < 0:
            raise ValueError(
                f"judgement_noise must be >= 0, got {self.judgement_noise}"
            )


class ExpertSelector:
    """Scores candidate items/restaurants like a human curator would.

    The expert combines (a) salient observable profile features with (b) an
    optional *insight* signal — a noisy perception of the candidate's true
    quality that models domain knowledge (a merchandiser does recognise a
    promising product at better-than-chance rates).  The judgement noise
    controls how far the expert falls short of a perfect oracle.
    """

    def __init__(self, config: Optional[ExpertConfig] = None) -> None:
        self.config = config if config is not None else ExpertConfig()

    def score(
        self,
        candidates: FeatureTable,
        rng: np.random.Generator,
        insight: Optional[np.ndarray] = None,
        insight_weight: float = 1.0,
    ) -> np.ndarray:
        """Heuristic desirability score per candidate.

        Parameters
        ----------
        candidates:
            Candidate feature table.
        rng:
            Noise generator.
        insight:
            Optional ground-truth quality signal the expert partially
            perceives (standardised internally).
        insight_weight:
            Weight on the insight signal relative to the salient features.

        Unknown feature names in the config are skipped (with the remaining
        weights renormalised), so the same expert works across worlds.
        """
        cfg = self.config
        available = {
            name: weight
            for name, weight in cfg.feature_weights.items()
            if name in candidates
        }
        if not available and insight is None:
            raise ValueError(
                "expert sees none of the configured features "
                f"{sorted(cfg.feature_weights)} and has no insight signal; "
                f"candidate columns: {sorted(candidates.columns)}"
            )
        scores = np.zeros(len(candidates))
        if available:
            total_weight = sum(abs(w) for w in available.values())
            for name, weight in available.items():
                scores += (weight / total_weight) * standardize(
                    candidates[name].astype(np.float64)  # repro-lint: disable=ATN002 -- numpy-only judgement scoring, outside the engine's dtype-configurable compute paths
                )
        if insight is not None:
            insight = np.asarray(insight, dtype=np.float64)  # repro-lint: disable=ATN002 -- numpy-only judgement scoring, outside the engine's dtype-configurable compute paths
            if insight.shape != (len(candidates),):
                raise ValueError(
                    f"insight must have shape ({len(candidates)},), "
                    f"got {insight.shape}"
                )
            scores += insight_weight * standardize(insight)
        scores += rng.normal(0.0, cfg.judgement_noise, size=len(candidates))
        return scores


def select_top_k(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` highest-scoring candidates (descending)."""
    scores = np.asarray(scores, dtype=np.float64)  # repro-lint: disable=ATN002 -- exact top-k ranking over business metrics; never feeds Tensor compute
    if scores.ndim != 1:
        raise ValueError(f"scores must be 1-D, got shape {scores.shape}")
    if not 1 <= k <= scores.size:
        raise ValueError(f"k must be in [1, {scores.size}], got {k}")
    top = np.argpartition(scores, -k)[-k:]
    return top[np.argsort(scores[top])[::-1]]


def first_k_transaction_time(first_k_day: np.ndarray, horizon_days: int) -> float:
    """Mean time (days) to the first K transactions, censoring at horizon.

    Items that never reach K transactions within the observation window
    contribute the horizon value — the conservative convention for the
    paper's "average time for the first five successful transactions".
    """
    first_k_day = np.asarray(first_k_day, dtype=np.float64)  # repro-lint: disable=ATN002 -- exact day-count averaging for the online metric; never feeds Tensor compute
    if first_k_day.ndim != 1:
        raise ValueError(f"first_k_day must be 1-D, got {first_k_day.shape}")
    if horizon_days <= 0:
        raise ValueError(f"horizon_days must be positive, got {horizon_days}")
    return float(np.minimum(first_k_day, horizon_days).mean())
