"""Segmented popularity prediction — the paper's future-work extension.

Section VI: *"We can further group users by their preferences before
making new arrivals predictions.  Different groups have diverse
preferences for different types of items."*

:class:`SegmentedPopularityPredictor` clusters the user group's tower
vectors into taste segments (k-means over the model's own geometry),
stores one mean vector per segment, and scores each item against every
segment.  Aggregations:

* ``score_items(..., "mean")`` — segment-size-weighted mean, a sharper
  estimate of overall popularity than the single global mean vector;
* ``score_items(..., "max")`` — best-segment score, surfacing niche items
  that excite one taste cluster without broad appeal;
* ``segment_scores`` — the full (items x segments) matrix for per-segment
  merchandising.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.atnn import ATNN
from repro.core.clustering import KMeansResult, kmeans
from repro.core.popularity import PopularityPredictor
from repro.data.dataset import FeatureTable
from repro.core.numeric import sigmoid

__all__ = ["SegmentedPopularityPredictor"]

_AGGREGATIONS = ("mean", "max")


class SegmentedPopularityPredictor(PopularityPredictor):
    """Popularity scoring against per-segment mean user vectors.

    Parameters
    ----------
    model:
        A trained :class:`~repro.core.atnn.ATNN` (or two-tower model).
    n_segments:
        Number of taste segments.
    batch_size:
        Tower inference chunk size.
    """

    def __init__(self, model, n_segments: int = 4, batch_size: int = 4096) -> None:
        super().__init__(model, batch_size=batch_size)
        if n_segments < 1:
            raise ValueError(f"n_segments must be >= 1, got {n_segments}")
        self.n_segments = n_segments
        self.segment_vectors: Optional[np.ndarray] = None
        self.segment_weights: Optional[np.ndarray] = None
        self.clustering: Optional[KMeansResult] = None

    # ------------------------------------------------------------------
    def fit_user_group(
        self,
        users: FeatureTable,
        keep_individual: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Encode the user group, cluster it, and store segment vectors.

        Also stores the global mean vector so the base-class O(1) path
        keeps working for comparison.
        """
        vectors = self._encode_users(users)
        self.mean_user_vector = vectors.mean(axis=0)
        self._user_vectors = vectors if keep_individual else None

        rng = rng if rng is not None else np.random.default_rng(0)
        k = min(self.n_segments, vectors.shape[0])
        self.clustering = kmeans(vectors, k, rng=rng)
        counts = np.bincount(self.clustering.assignments, minlength=k)
        self.segment_vectors = self.clustering.centroids
        self.segment_weights = counts / counts.sum()
        return self.mean_user_vector

    # ------------------------------------------------------------------
    def segment_scores(self, items: FeatureTable) -> np.ndarray:
        """Full ``(n_items, n_segments)`` score matrix.

        Raises
        ------
        RuntimeError
            If :meth:`fit_user_group` has not been called.
        """
        if self.segment_vectors is None:
            raise RuntimeError("call fit_user_group() before scoring items")
        item_vectors = self._encode_items(items)
        head = self.model.scoring_head
        logits = (item_vectors * head.weight.data) @ self.segment_vectors.T
        return sigmoid(logits + head.bias.data[0])

    def score_items(
        self, items: FeatureTable, aggregation: str = "mean"
    ) -> np.ndarray:
        """Aggregate per-segment scores into one popularity per item.

        The cost per item is O(n_segments) — still independent of the
        user count, preserving the serving-time guarantee.
        """
        if aggregation not in _AGGREGATIONS:
            raise ValueError(
                f"aggregation must be one of {_AGGREGATIONS}, got {aggregation!r}"
            )
        matrix = self.segment_scores(items)
        if aggregation == "max":
            return matrix.max(axis=1)
        return matrix @ self.segment_weights

    def niche_items(self, items: FeatureTable, top_k: int = 10) -> np.ndarray:
        """Items with the largest best-segment vs average-segment gap.

        These are the "diverse preference" winners the future-work section
        is after: weak on the global mean, strong for one taste cluster.
        """
        matrix = self.segment_scores(items)
        if not 1 <= top_k <= matrix.shape[0]:
            raise ValueError(f"top_k must be in [1, {matrix.shape[0]}], got {top_k}")
        gap = matrix.max(axis=1) - matrix @ self.segment_weights
        top = np.argpartition(gap, -top_k)[-top_k:]
        return top[np.argsort(gap[top])[::-1]]
