"""Dtype-preserving numeric helpers for the model/serving layers.

The data-generation layer (:mod:`repro.data.synthetic.common`) works in
float64 on purpose — it produces ground truth.  The model layers must
not: they run under the engine's configurable default dtype, and the
effects analyzer (``EFF005``) flags any call that crosses into a
float64-promoting helper.  These variants keep the input's floating
dtype (non-float input is converted to the engine default).
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import get_default_dtype

__all__ = ["sigmoid"]


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function, dtype-preserving."""
    x = np.asarray(x)
    if not np.issubdtype(x.dtype, np.floating):
        x = x.astype(get_default_dtype())
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out
