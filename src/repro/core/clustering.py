"""K-means clustering (k-means++ initialisation, Lloyd iterations).

Substrate for the paper's future-work direction of grouping users by
preference before making new-arrival predictions (Section VI).  Operates
on the user-tower vectors, so clusters are taste segments in the model's
own geometry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["KMeansResult", "kmeans"]


@dataclass
class KMeansResult:
    """Fitted clustering.

    Attributes
    ----------
    centroids:
        ``(k, dim)`` cluster centres.
    assignments:
        Cluster index per input row.
    inertia:
        Sum of squared distances to assigned centroids.
    n_iterations:
        Lloyd iterations executed.
    """

    centroids: np.ndarray
    assignments: np.ndarray
    inertia: float
    n_iterations: int

    @property
    def k(self) -> int:
        return self.centroids.shape[0]

    def predict(self, points: np.ndarray) -> np.ndarray:
        """Assign new points to the nearest fitted centroid."""
        points = np.asarray(points, dtype=np.float64)  # repro-lint: disable=ATN002 -- centroid assignment must match fit(), which runs float64 for stable convergence
        if points.ndim != 2 or points.shape[1] != self.centroids.shape[1]:
            raise ValueError(
                f"points must be (n, {self.centroids.shape[1]}), got {points.shape}"
            )
        distances = _pairwise_sq_distances(points, self.centroids)
        return distances.argmin(axis=1)


def _pairwise_sq_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between rows of ``a`` and rows of ``b``.

    Clamped at zero: the expansion ``|a|^2 - 2ab + |b|^2`` can go slightly
    negative through floating-point cancellation for coincident points.
    """
    distances = (
        (a ** 2).sum(axis=1)[:, None]
        - 2.0 * a @ b.T
        + (b ** 2).sum(axis=1)[None, :]
    )
    return np.maximum(distances, 0.0)


def _kmeans_pp_init(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centroids proportionally to D^2."""
    n = points.shape[0]
    centroids = np.empty((k, points.shape[1]))
    centroids[0] = points[rng.integers(0, n)]
    closest = _pairwise_sq_distances(points, centroids[:1]).reshape(-1)
    for index in range(1, k):
        total = closest.sum()
        if total <= 0:
            # All points coincide with chosen centroids; fill uniformly.
            centroids[index:] = points[rng.integers(0, n, size=k - index)]
            break
        probabilities = closest / total
        choice = rng.choice(n, p=probabilities)
        centroids[index] = points[choice]
        new_distance = _pairwise_sq_distances(
            points, centroids[index : index + 1]
        ).reshape(-1)
        closest = np.minimum(closest, new_distance)
    return centroids


def kmeans(
    points: np.ndarray,
    k: int,
    rng: Optional[np.random.Generator] = None,
    max_iterations: int = 100,
    tolerance: float = 1e-6,
) -> KMeansResult:
    """Cluster ``points`` into ``k`` groups.

    Parameters
    ----------
    points:
        ``(n, dim)`` float matrix.
    k:
        Number of clusters (``1 <= k <= n``).
    rng:
        Generator for seeding; a fresh default generator when omitted.
    max_iterations:
        Lloyd iteration budget.
    tolerance:
        Stop when the total centroid movement falls below this value.
    """
    points = np.asarray(points, dtype=np.float64)  # repro-lint: disable=ATN002 -- Lloyd iterations accumulate tiny centroid movements; float64 keeps the tolerance test meaningful regardless of engine dtype
    if points.ndim != 2:
        raise ValueError(f"points must be 2-D, got shape {points.shape}")
    n = points.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    if max_iterations < 1:
        raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
    rng = rng if rng is not None else np.random.default_rng()

    centroids = _kmeans_pp_init(points, k, rng)
    assignments = np.zeros(n, dtype=np.int64)
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        distances = _pairwise_sq_distances(points, centroids)
        assignments = distances.argmin(axis=1)
        new_centroids = centroids.copy()
        for cluster in range(k):
            members = points[assignments == cluster]
            if members.size:
                new_centroids[cluster] = members.mean(axis=0)
        movement = float(np.abs(new_centroids - centroids).sum())
        centroids = new_centroids
        if movement < tolerance:
            break

    distances = _pairwise_sq_distances(points, centroids)
    assignments = distances.argmin(axis=1)
    inertia = float(distances[np.arange(n), assignments].sum())
    return KMeansResult(
        centroids=centroids,
        assignments=assignments,
        inertia=max(inertia, 0.0),
        n_iterations=iteration,
    )
