"""Candidate-retrieval training for two-tower models.

The paper's two-tower structure is also the standard architecture for
*candidate retrieval* (its reference [15], Yi et al. 2019).  This module
trains a :class:`~repro.core.two_tower.TwoTowerModel` with the in-batch
sampled-softmax objective on positive (clicked) pairs, and evaluates
corpus-level recall: given a user, is the item they actually clicked
ranked inside the top-k of the whole item corpus?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.core.trainer import TrainingHistory, _BaseTrainer
from repro.core.two_tower import TwoTowerModel
from repro.data.dataset import FeatureTable, InteractionDataset
from repro.nn.losses import in_batch_softmax_loss
from repro.nn.optim import Adam
from repro.nn.tensor import no_grad

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a cycle at import)
    from repro.retrieval import MIPSIndex

__all__ = ["RetrievalTrainer", "recall_against_corpus"]


class RetrievalTrainer(_BaseTrainer):
    """Trains a two-tower model for retrieval with in-batch negatives.

    Parameters
    ----------
    temperature:
        Softmax temperature of the in-batch objective.
    (plus the shared knobs of the base trainer: epochs, batch_size, lr,
    grad_clip, seed, verbose.)
    """

    def __init__(self, temperature: float = 0.2, **kwargs) -> None:
        super().__init__(**kwargs)
        if temperature <= 0:
            raise ValueError(f"temperature must be positive, got {temperature}")
        self.temperature = temperature

    def fit(
        self,
        model: TwoTowerModel,
        interactions: InteractionDataset,
        label: str = "ctr",
        item_indices: Optional[np.ndarray] = None,
    ) -> TrainingHistory:
        """Train on the positive rows of ``interactions``.

        Negative rows are dropped: in-batch softmax supplies negatives
        from the other positives in each batch, as in sampled-softmax
        retrieval training.

        Parameters
        ----------
        item_indices:
            Optional per-row item identity (aligned to ``interactions``).
            When given, empirical item frequencies provide the
            log-sampling-probability correction of Yi et al. — without it
            popular items are over-penalised as in-batch negatives.
        """
        positive_rows = np.flatnonzero(interactions.label(label) == 1.0)
        positives = interactions.subset(positive_rows)
        if len(positives) < 2:
            raise ValueError(
                "retrieval training needs at least 2 positive rows, got "
                f"{len(positives)}"
            )

        log_probabilities = None
        if item_indices is not None:
            item_indices = np.asarray(item_indices)
            if item_indices.shape != (len(interactions),):
                raise ValueError(
                    f"item_indices must align with interactions "
                    f"({len(interactions)} rows), got {item_indices.shape}"
                )
            positive_items = item_indices[positive_rows]
            counts = np.bincount(positive_items)
            frequencies = counts[positive_items] / positive_items.size
            log_probabilities = np.log(frequencies)

        optimizer = Adam(model.parameters(), lr=self.lr)
        rng = np.random.default_rng(self.seed)
        history = TrainingHistory()
        model.train()
        order = np.arange(len(positives))
        for epoch in range(self.epochs):
            rng.shuffle(order)
            losses: List[float] = []
            for start in range(0, len(order), self.batch_size):
                rows = order[start : start + self.batch_size]
                if rows.size < 2:
                    continue
                features = {
                    name: col[rows] for name, col in positives.features.items()
                }
                user_vectors = model.user_vectors(features)
                item_vectors = model.item_vectors(features)
                loss = in_batch_softmax_loss(
                    user_vectors,
                    item_vectors,
                    temperature=self.temperature,
                    log_sampling_prob=(
                        log_probabilities[rows]
                        if log_probabilities is not None
                        else None
                    ),
                )
                losses.append(self._step(optimizer, loss))
            if not losses:
                raise ValueError(
                    "no trainable batches; lower batch_size below the "
                    f"positive count ({len(positives)})"
                )
            self._finish_epoch(epoch, {"loss": float(np.mean(losses))}, history)
        model.eval()
        return history


def recall_against_corpus(
    model: TwoTowerModel,
    user_rows: Dict[str, np.ndarray],
    true_item_indices: np.ndarray,
    corpus: FeatureTable,
    k: int = 10,
    batch_size: int = 4096,
    index: Optional["MIPSIndex"] = None,
) -> float:
    """Corpus-level recall@k of a retrieval-trained two-tower model.

    Parameters
    ----------
    model:
        The trained model.
    user_rows:
        Feature columns for the evaluation users (one row per query).
    true_item_indices:
        For each query, the corpus row of the item the user clicked.
    corpus:
        The full candidate item table.
    k:
        Cutoff.
    batch_size:
        Encoding *and* scoring chunk size — the dense path never
        materialises more than ``(batch_size, len(corpus))`` scores.
    index:
        Optional :class:`repro.retrieval.MIPSIndex`.  When given, it is
        rebuilt over the encoded corpus and queries route through
        ``index.search`` — the exact code path the serving engine uses —
        so training eval measures the retrieval stack that actually
        serves (pass an IVF index to measure its recall loss directly).
        Ties at the k-th score are then broken by the index instead of
        pessimistically.

    Returns
    -------
    float
        Fraction of queries whose true item ranks in the top-k by dot
        product against the encoded corpus.
    """
    true_item_indices = np.asarray(true_item_indices)
    n_queries = len(next(iter(user_rows.values())))
    if true_item_indices.shape != (n_queries,):
        raise ValueError(
            f"true_item_indices must have shape ({n_queries},), "
            f"got {true_item_indices.shape}"
        )
    if not 1 <= k <= len(corpus):
        raise ValueError(f"k must be in [1, {len(corpus)}], got {k}")

    was_training = model.training
    model.eval()
    try:
        with no_grad():
            corpus_chunks = []
            for start in range(0, len(corpus), batch_size):
                chunk = {
                    name: col[start : start + batch_size]
                    for name, col in corpus.columns.items()
                }
                corpus_chunks.append(model.item_vectors(chunk).data)
            corpus_vectors = np.concatenate(corpus_chunks, axis=0)

            user_chunks = []
            for start in range(0, n_queries, batch_size):
                chunk = {
                    name: np.asarray(col)[start : start + batch_size]
                    for name, col in user_rows.items()
                }
                user_chunks.append(model.user_vectors(chunk).data)
            user_vectors = np.concatenate(user_chunks, axis=0)
    finally:
        model.train(was_training)

    hits = 0
    if index is not None:
        index.rebuild(corpus_vectors)
        for start in range(0, n_queries, batch_size):
            stop = min(start + batch_size, n_queries)
            ids, _ = index.search(user_vectors[start:stop], k)
            hits += int(
                (ids == true_item_indices[start:stop, None]).any(axis=1).sum()
            )
    else:
        # Batched dense scoring: one matmul per query block, rank of the
        # true item = number of corpus items scoring at least as high
        # (ties resolved pessimistically).
        for start in range(0, n_queries, batch_size):
            stop = min(start + batch_size, n_queries)
            scores = user_vectors[start:stop] @ corpus_vectors.T
            true_scores = scores[
                np.arange(stop - start), true_item_indices[start:stop]
            ]
            ranks = (scores >= true_scores[:, None]).sum(axis=1)
            hits += int((ranks <= k).sum())
    return float(hits / n_queries)
