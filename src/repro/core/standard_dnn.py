"""The paper's Figure 2 baseline: a standard monolithic CTR DNN.

Figure 2 shows the classical architecture that concatenates the item
embedding block and the user embedding block and feeds everything through
one MLP.  The paper's point is that this model yields *no explicit item or
user vectors* — which is precisely why it cannot support the mean-user-
vector popularity trick or the adversarial generator.  It is included so
the repository covers every architecture the paper discusses.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.data.schema import (
    GROUP_ITEM_PROFILE,
    GROUP_ITEM_STAT,
    GROUP_USER,
    FeatureSchema,
)
from repro.nn.layers import MLP, FeatureEmbeddings
from repro.nn.module import Module
from repro.nn.tensor import Tensor, concat, get_default_dtype, no_grad

__all__ = ["StandardDNN"]


class StandardDNN(Module):
    """Monolithic concat-everything CTR network (no tower structure).

    Parameters
    ----------
    schema:
        Dataset feature schema.
    hidden_dims:
        MLP widths; a scalar sigmoid output layer is appended.
    groups:
        Feature groups consumed (defaults to all three).
    rng:
        Generator for weight initialisation.
    """

    def __init__(
        self,
        schema: FeatureSchema,
        hidden_dims: Sequence[int] = (128, 64),
        groups: Sequence[str] = (GROUP_USER, GROUP_ITEM_PROFILE, GROUP_ITEM_STAT),
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.schema = schema
        self.groups = tuple(groups)
        self.embeddings = FeatureEmbeddings(
            schema.vocab_sizes(*self.groups),
            schema.embedding_dims(*self.groups),
            rng=rng,
        )
        self.numeric_names = schema.numeric_names(*self.groups)
        in_width = self.embeddings.output_dim + len(self.numeric_names)
        self.mlp = MLP(
            in_width,
            list(hidden_dims) + [1],
            output_activation="sigmoid",
            rng=rng,
        )

    def forward(self, features: Dict[str, np.ndarray]) -> Tensor:
        """Click probabilities for each row."""
        parts = [self.embeddings(features)]
        if self.numeric_names:
            missing = [n for n in self.numeric_names if n not in features]
            if missing:
                raise KeyError(f"missing numeric features: {missing}")
            numeric = np.column_stack(
                [
                    np.asarray(features[n], dtype=get_default_dtype())
                    for n in self.numeric_names
                ]
            )
            parts.append(Tensor(numeric))
        joined = parts[0] if len(parts) == 1 else concat(parts, axis=-1)
        return self.mlp(joined).reshape(-1)

    def predict_proba(
        self, features: Dict[str, np.ndarray], batch_size: int = 4096
    ) -> np.ndarray:
        """Inference-mode click probabilities."""
        was_training = self.training
        self.eval()
        try:
            n_rows = len(next(iter(features.values())))
            chunks = []
            with no_grad():
                for start in range(0, n_rows, batch_size):
                    chunk = {
                        name: col[start : start + batch_size]
                        for name, col in features.items()
                    }
                    chunks.append(self.forward(chunk).data)
            return np.concatenate(chunks)
        finally:
            self.train(was_training)
