"""Model registry: build any model in the repo from a name + config.

Gives downstream tooling (CLI extensions, sweep scripts) a single entry
point::

    model = build_model("atnn", schema, TowerConfig(...), rng=rng)

Registered names: ``atnn``, ``tnn-dcn``, ``tnn-fc``, ``multitask-atnn``,
``standard-dnn``, ``lr``, ``fm``, ``wide-deep``, ``deepfm``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.baselines import (
    DeepFM,
    FactorizationMachine,
    LogisticRegressionCTR,
    WideAndDeep,
)
from repro.core.atnn import ATNN
from repro.core.multitask import MultiTaskATNN
from repro.core.standard_dnn import StandardDNN
from repro.core.towers import TowerConfig
from repro.core.two_tower import TwoTowerModel
from repro.data.schema import FeatureSchema

__all__ = ["MODEL_REGISTRY", "available_models", "build_model"]


def _tnn(schema, config, rng, num_cross_layers):
    tower = TowerConfig(
        vector_dim=config.vector_dim,
        deep_dims=config.deep_dims,
        head_dims=config.head_dims,
        num_cross_layers=num_cross_layers,
        dropout=config.dropout,
    )
    return TwoTowerModel(schema, tower, rng=rng)


MODEL_REGISTRY: Dict[str, Callable] = {
    "atnn": lambda schema, config, rng: ATNN(schema, config, rng=rng),
    "multitask-atnn": lambda schema, config, rng: MultiTaskATNN(
        schema, config, rng=rng
    ),
    "tnn-dcn": lambda schema, config, rng: _tnn(
        schema, config, rng, max(config.num_cross_layers, 1)
    ),
    "tnn-fc": lambda schema, config, rng: _tnn(schema, config, rng, 0),
    "standard-dnn": lambda schema, config, rng: StandardDNN(
        schema, hidden_dims=config.deep_dims, rng=rng
    ),
    "lr": lambda schema, config, rng: LogisticRegressionCTR(schema, rng=rng),
    "fm": lambda schema, config, rng: FactorizationMachine(schema, rng=rng),
    "wide-deep": lambda schema, config, rng: WideAndDeep(schema, rng=rng),
    "deepfm": lambda schema, config, rng: DeepFM(schema, rng=rng),
}


def available_models() -> List[str]:
    """Registered model names."""
    return sorted(MODEL_REGISTRY)


def build_model(
    name: str,
    schema: FeatureSchema,
    config: Optional[TowerConfig] = None,
    rng: Optional[np.random.Generator] = None,
):
    """Instantiate a registered model.

    Parameters
    ----------
    name:
        Registry key (case-insensitive).
    schema:
        Dataset feature schema.
    config:
        Tower configuration (ignored by the flat baselines); defaults to
        :class:`TowerConfig`'s defaults.
    rng:
        Generator for initialisation.

    Raises
    ------
    ValueError
        On an unknown model name.
    """
    try:
        factory = MODEL_REGISTRY[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown model {name!r}; choose from {available_models()}"
        ) from None
    config = config if config is not None else TowerConfig()
    rng = rng if rng is not None else np.random.default_rng()
    return factory(schema, config, rng)
