"""The paper's core contribution: two-tower models, ATNN and services."""

from repro.core.abtest import (
    ExpertConfig,
    ExpertSelector,
    first_k_transaction_time,
    select_top_k,
)
from repro.core.atnn import ATNN
from repro.core.heads import ConcatMLPHead, WeightedDotHead
from repro.core.multitask import MultiTaskATNN
from repro.core.clustering import KMeansResult, kmeans
from repro.core.popularity import PopularityPredictor
from repro.core.registry import MODEL_REGISTRY, available_models, build_model
from repro.core.retrieval_training import RetrievalTrainer, recall_against_corpus
from repro.core.segmented_popularity import SegmentedPopularityPredictor
from repro.core.standard_dnn import StandardDNN
from repro.core.towers import Tower, TowerConfig
from repro.core.trainer import (
    ATNNTrainer,
    EarlyStopping,
    MultiTaskTrainer,
    TrainingHistory,
    TwoTowerTrainer,
    get_trainer_defaults,
    set_trainer_defaults,
)
from repro.core.two_tower import TwoTowerModel

__all__ = [
    "ExpertConfig",
    "ExpertSelector",
    "first_k_transaction_time",
    "select_top_k",
    "ATNN",
    "ConcatMLPHead",
    "WeightedDotHead",
    "MultiTaskATNN",
    "PopularityPredictor",
    "KMeansResult",
    "kmeans",
    "SegmentedPopularityPredictor",
    "MODEL_REGISTRY",
    "available_models",
    "build_model",
    "RetrievalTrainer",
    "recall_against_corpus",
    "StandardDNN",
    "Tower",
    "TowerConfig",
    "ATNNTrainer",
    "EarlyStopping",
    "MultiTaskTrainer",
    "TrainingHistory",
    "TwoTowerTrainer",
    "get_trainer_defaults",
    "set_trainer_defaults",
]
