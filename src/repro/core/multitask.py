"""Extended multi-task ATNN for the food-delivery scenario (Figure 6, Alg. 2).

Differences from the e-commerce ATNN:

* the user tower consumes **user-group** features (per-zone aggregates)
  instead of single users — food delivery is location sensitive;
* there are two regression heads per path, predicting VpPV and GMV, with
  the combined losses weighted by ``lambda_1``;
* the similarity loss weighted by ``lambda_2`` still ties the generator's
  restaurant vectors to the statistics-aware encoder's.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.heads import ConcatMLPHead
from repro.core.towers import Tower, TowerConfig
from repro.data.schema import (
    GROUP_ITEM_PROFILE,
    GROUP_ITEM_STAT,
    GROUP_USER,
    FeatureSchema,
)
from repro.nn.layers import FeatureEmbeddings
from repro.nn.module import Module
from repro.nn.tensor import Tensor, no_grad

__all__ = ["MultiTaskATNN"]


class MultiTaskATNN(Module):
    """Two-target (VpPV, GMV) adversarial two-tower model.

    Parameters
    ----------
    schema:
        Feature schema of the food-delivery dataset (``user`` group columns
        describe user groups).
    config:
        Tower architecture shared by encoder / generator / group tower.
    share_embeddings:
        Share profile embedding tables between generator and encoder.
    rng:
        Generator for weight initialisation.
    """

    TASKS: Tuple[str, str] = ("vppv", "gmv")

    def __init__(
        self,
        schema: FeatureSchema,
        config: TowerConfig,
        share_embeddings: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.schema = schema
        self.config = config
        self.share_embeddings = share_embeddings

        profile_embeddings = FeatureEmbeddings(
            schema.vocab_sizes(GROUP_ITEM_PROFILE),
            schema.embedding_dims(GROUP_ITEM_PROFILE),
            rng=rng,
        )
        self.item_encoder = Tower(
            schema,
            (GROUP_ITEM_PROFILE, GROUP_ITEM_STAT),
            config,
            embeddings=profile_embeddings,
            rng=rng,
        )
        self.generator = Tower(
            schema,
            (GROUP_ITEM_PROFILE,),
            config,
            embeddings=profile_embeddings if share_embeddings else None,
            rng=rng,
        )
        self.group_tower = Tower(schema, (GROUP_USER,), config, rng=rng)
        # One regression head per task, shared between encoder and
        # generator paths (the multi-task "sharing networks" of Section V).
        self.vppv_head = ConcatMLPHead(config.vector_dim, rng=rng)
        self.gmv_head = ConcatMLPHead(config.vector_dim, rng=rng)

    # ------------------------------------------------------------------
    def encoded_item_vectors(self, features: Dict[str, np.ndarray]) -> Tensor:
        """Restaurant vectors from profiles + statistics."""
        return self.item_encoder(features)

    def generated_item_vectors(self, features: Dict[str, np.ndarray]) -> Tensor:
        """Restaurant vectors from profiles only."""
        return self.generator(features)

    def group_vectors(self, features: Dict[str, np.ndarray]) -> Tensor:
        """User-group vectors."""
        return self.group_tower(features)

    def _head(self, task: str) -> ConcatMLPHead:
        if task == "vppv":
            return self.vppv_head
        if task == "gmv":
            return self.gmv_head
        raise ValueError(f"unknown task {task!r}; expected one of {self.TASKS}")

    # ------------------------------------------------------------------
    def forward(
        self, features: Dict[str, np.ndarray], task: str = "gmv"
    ) -> Tensor:
        """Encoder-path prediction for one task."""
        return self._head(task)(
            self.encoded_item_vectors(features), self.group_vectors(features)
        )

    def forward_generator(
        self, features: Dict[str, np.ndarray], task: str = "gmv"
    ) -> Tensor:
        """Generator-path prediction for one task (cold-start)."""
        return self._head(task)(
            self.generated_item_vectors(features), self.group_vectors(features)
        )

    def predict(
        self,
        features: Dict[str, np.ndarray],
        task: str,
        cold_start: bool = False,
        batch_size: int = 4096,
    ) -> np.ndarray:
        """Inference-mode predictions for one task.

        Parameters
        ----------
        features:
            Feature columns for (restaurant, user group) rows.
        task:
            ``"vppv"`` or ``"gmv"``.
        cold_start:
            Use the generator path (profiles only) instead of the encoder.
        batch_size:
            Inference chunk size.
        """
        was_training = self.training
        self.eval()
        try:
            n_rows = len(next(iter(features.values())))
            chunks = []
            with no_grad():
                for start in range(0, n_rows, batch_size):
                    chunk = {
                        name: col[start : start + batch_size]
                        for name, col in features.items()
                    }
                    if cold_start:
                        chunks.append(self.forward_generator(chunk, task).data)
                    else:
                        chunks.append(self.forward(chunk, task).data)
            return np.concatenate(chunks)
        finally:
            self.train(was_training)
