"""O(1) per-item popularity prediction via a stored mean user vector.

Section III-D of the paper: ranking all new arrivals against all users
would cost ``O(N_U * N_NA)`` pairwise scores.  Instead, ATNN selects a
user group (the most active new-arrival-loving users), pre-computes and
*stores the mean of their user vectors* at training time, and scores each
new item against that single vector — ``O(1)`` per item at serving time.

:class:`PopularityPredictor` implements both the fast path and the exact
pairwise baseline (used to quantify the approximation and the speedup).
The approximation is exact at the logit level for the
:class:`~repro.core.heads.WeightedDotHead`, whose logit is linear in the
user vector; only the final sigmoid makes the mean-of-scores differ from
the score-of-mean, and both induce the *same item ranking* for a fixed
mean direction.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

from repro.core.atnn import ATNN
from repro.core.two_tower import TwoTowerModel
from repro.data.dataset import FeatureTable
from repro.core.numeric import sigmoid
from repro.nn.tensor import Tensor, no_grad

__all__ = ["PopularityPredictor"]

ModelType = Union[ATNN, TwoTowerModel]


class PopularityPredictor:
    """Serving-side popularity scorer with a pre-learned mean user vector.

    Parameters
    ----------
    model:
        A trained :class:`~repro.core.atnn.ATNN` (new arrivals are scored
        with the generator path) or :class:`~repro.core.two_tower.TwoTowerModel`.
    batch_size:
        Chunk size for the tower forward passes.
    """

    def __init__(self, model: ModelType, batch_size: int = 4096) -> None:
        self.model = model
        self.batch_size = batch_size
        self.mean_user_vector: Optional[np.ndarray] = None
        self._user_vectors: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Training-time precomputation
    # ------------------------------------------------------------------
    def fit_user_group(self, users: FeatureTable, keep_individual: bool = False) -> np.ndarray:
        """Encode the user group and store its mean vector.

        Parameters
        ----------
        users:
            Feature table of the selected user group (the paper uses the
            top active users who prefer new arrivals).
        keep_individual:
            Also keep every individual user vector, enabling the exact
            pairwise baseline :meth:`score_items_exact`.

        Returns
        -------
        numpy.ndarray
            The stored mean user vector of shape ``(vector_dim,)``.
        """
        vectors = self._encode_users(users)
        self.mean_user_vector = vectors.mean(axis=0)
        self._user_vectors = vectors if keep_individual else None
        return self.mean_user_vector

    def _encode_users(self, users: FeatureTable) -> np.ndarray:
        was_training = self.model.training
        self.model.eval()
        try:
            chunks = []
            with no_grad():
                for start in range(0, len(users), self.batch_size):
                    chunk = {
                        name: col[start : start + self.batch_size]
                        for name, col in users.columns.items()
                    }
                    chunks.append(self.model.user_vectors(chunk).data)
            return np.concatenate(chunks, axis=0)
        finally:
            self.model.train(was_training)

    def _encode_items(self, items: FeatureTable) -> np.ndarray:
        was_training = self.model.training
        self.model.eval()
        encode = (
            self.model.generated_item_vectors
            if isinstance(self.model, ATNN)
            else self.model.item_vectors
        )
        try:
            chunks = []
            with no_grad():
                for start in range(0, len(items), self.batch_size):
                    chunk = {
                        name: col[start : start + self.batch_size]
                        for name, col in items.columns.items()
                    }
                    chunks.append(encode(chunk).data)
            return np.concatenate(chunks, axis=0)
        finally:
            self.model.train(was_training)

    # ------------------------------------------------------------------
    # Serving-time scoring
    # ------------------------------------------------------------------
    def score_items(self, items: FeatureTable) -> np.ndarray:
        """Popularity scores against the stored mean user vector.

        Cost per item is one tower forward plus a ``vector_dim`` dot
        product — independent of the user count (the paper's O(1) claim).

        Raises
        ------
        RuntimeError
            If :meth:`fit_user_group` has not been called.
        """
        if self.mean_user_vector is None:
            raise RuntimeError(
                "call fit_user_group() before scoring items"
            )
        item_vectors = self._encode_items(items)
        return self._head_scores(item_vectors, self.mean_user_vector[None, :])

    def score_item_vectors(self, item_vectors: np.ndarray) -> np.ndarray:
        """Score pre-encoded item vectors — the pure O(1) serving kernel."""
        if self.mean_user_vector is None:
            raise RuntimeError("call fit_user_group() before scoring items")
        return self._head_scores(item_vectors, self.mean_user_vector[None, :])

    def score_items_exact(self, items: FeatureTable) -> np.ndarray:
        """Exact mean pairwise score over every user in the group.

        The O(N_U)-per-item baseline the paper's trick replaces; requires
        ``fit_user_group(..., keep_individual=True)``.
        """
        if self._user_vectors is None:
            raise RuntimeError(
                "exact scoring needs fit_user_group(keep_individual=True)"
            )
        item_vectors = self._encode_items(items)
        scores = np.empty(item_vectors.shape[0])
        for index in range(item_vectors.shape[0]):
            pairwise = self._head_scores(
                np.broadcast_to(
                    item_vectors[index], self._user_vectors.shape
                ).copy(),
                self._user_vectors,
            )
            scores[index] = pairwise.mean()
        return scores

    def _head_scores(
        self, item_vectors: np.ndarray, user_vectors: np.ndarray
    ) -> np.ndarray:
        head = self.model.scoring_head
        weight = head.weight.data
        bias = head.bias.data[0]
        if user_vectors.shape[0] == 1:
            logits = item_vectors @ (weight * user_vectors[0]) + bias
        else:
            logits = np.einsum(
                "nd,nd->n", item_vectors * weight, user_vectors
            ) + bias
        return sigmoid(logits)
