"""Encoder towers mapping raw features to dense vectors.

A :class:`Tower` is the reusable building block of every model in the
paper's Figures 3-6: it embeds the categorical features of its feature
groups, concatenates the numeric features, runs the result through a DCN
(or a plain MLP for the TNN-FC baseline) and projects to the shared vector
space.  The generator of ATNN is itself just a Tower over the item-profile
group, optionally *sharing* its embedding bank with the item encoder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.schema import FeatureSchema
from repro.nn.layers import DCN, MLP, EmbeddingBag, FeatureEmbeddings
from repro.nn.module import Module
from repro.nn.tensor import Tensor, concat, get_default_dtype

__all__ = ["TowerConfig", "Tower"]


@dataclass(frozen=True)
class TowerConfig:
    """Architecture of one tower.

    Attributes
    ----------
    vector_dim:
        Dimension of the output vector (128 in the paper; towers in a model
        must agree so the scoring head can combine them).
    deep_dims:
        Widths of the deep branch inside the DCN (paper: 512-256-128).
    head_dims:
        Widths of the fully connected stack after the DCN (paper:
        256-256-256-128); the last width is overridden by ``vector_dim``.
    num_cross_layers:
        Cross-network depth; 0 yields the fully connected (TNN-FC) tower.
    dropout:
        Dropout probability inside the deep branches.
    """

    vector_dim: int = 32
    deep_dims: Tuple[int, ...] = (64, 32)
    head_dims: Tuple[int, ...] = (64,)
    num_cross_layers: int = 2
    dropout: float = 0.0

    def __post_init__(self) -> None:
        if self.vector_dim <= 0:
            raise ValueError(f"vector_dim must be positive, got {self.vector_dim}")
        if not self.deep_dims:
            raise ValueError("deep_dims must contain at least one width")
        if self.num_cross_layers < 0:
            raise ValueError(
                f"num_cross_layers must be >= 0, got {self.num_cross_layers}"
            )

    @staticmethod
    def paper() -> "TowerConfig":
        """The exact dimensions reported in the paper (Section IV-A3)."""
        return TowerConfig(
            vector_dim=128,
            deep_dims=(512, 256, 128),
            head_dims=(256, 256, 256),
            num_cross_layers=2,
        )


class Tower(Module):
    """Feature-group encoder producing a fixed-width vector.

    Parameters
    ----------
    schema:
        The dataset's feature schema.
    groups:
        Which feature groups this tower consumes (e.g. ``("user",)`` for
        the user tower, ``("item_profile", "item_stat")`` for the item
        encoder, ``("item_profile",)`` for the generator).
    config:
        Architecture hyper-parameters.
    embeddings:
        Optional pre-built embedding bank to *share* with another tower
        (the ATNN shared-embedding strategy).  Must cover exactly the
        categorical features of ``groups``.
    rng:
        Generator for weight initialisation.
    """

    def __init__(
        self,
        schema: FeatureSchema,
        groups: Sequence[str],
        config: TowerConfig,
        embeddings: Optional[FeatureEmbeddings] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.groups = tuple(groups)
        self.config = config
        self.numeric_names: List[str] = schema.numeric_names(*self.groups)

        expected_vocab = schema.vocab_sizes(*self.groups)
        if embeddings is None:
            embeddings = FeatureEmbeddings(
                expected_vocab, schema.embedding_dims(*self.groups), rng=rng
            )
        else:
            if set(embeddings.feature_names) != set(expected_vocab):
                raise ValueError(
                    "shared embedding bank covers features "
                    f"{sorted(embeddings.feature_names)} but tower groups "
                    f"{self.groups} need {sorted(expected_vocab)}"
                )
        self.embeddings = embeddings

        # Multi-valued categorical features get mean-pooled embedding bags.
        self.sequence_features = schema.sequence_in(*self.groups)
        self._sequence_bags: Dict[str, EmbeddingBag] = {}
        for feature in self.sequence_features:
            bag = EmbeddingBag(feature.vocab_size, feature.embedding_dim, rng=rng)
            self._sequence_bags[feature.name] = bag
            self.register_module(f"bag_{feature.name}", bag)

        in_width = (
            embeddings.output_dim
            + sum(f.embedding_dim for f in self.sequence_features)
            + len(self.numeric_names)
        )
        if in_width == 0:
            raise ValueError(f"tower over groups {self.groups} has no input features")
        self.in_width = in_width

        if config.num_cross_layers > 0:
            self.encoder = DCN(
                in_width,
                list(config.deep_dims),
                num_cross_layers=config.num_cross_layers,
                dropout=config.dropout,
                rng=rng,
            )
            encoder_out = self.encoder.out_features
        else:
            self.encoder = MLP(
                in_width, list(config.deep_dims), dropout=config.dropout, rng=rng
            )
            encoder_out = self.encoder.out_features

        head_dims = list(config.head_dims) + [config.vector_dim]
        self.head = MLP(
            encoder_out,
            head_dims,
            output_activation="identity",
            dropout=config.dropout,
            rng=rng,
        )
        self.vector_dim = config.vector_dim

    # ------------------------------------------------------------------
    def _assemble_input(self, features: Dict[str, np.ndarray]) -> Tensor:
        """Concatenate embedded categoricals, pooled bags and numerics."""
        parts: List[Tensor] = []
        if self.embeddings.feature_names:
            parts.append(self.embeddings(features))
        for feature in self.sequence_features:
            if feature.name not in features or feature.mask_name not in features:
                raise KeyError(
                    f"sequence feature {feature.name!r} needs both "
                    f"{feature.name!r} and {feature.mask_name!r} columns"
                )
            bag = self._sequence_bags[feature.name]
            parts.append(bag(features[feature.name], features[feature.mask_name]))
        if self.numeric_names:
            missing = [n for n in self.numeric_names if n not in features]
            if missing:
                raise KeyError(f"missing numeric features: {missing}")
            # Assemble numerics directly in the engine's compute dtype: a
            # hard-coded float64 here would silently promote the whole
            # concatenated input (and one extra astype copy) in f32 mode.
            dtype = get_default_dtype()
            numeric = np.column_stack(
                [np.asarray(features[name], dtype=dtype) for name in self.numeric_names]
            )
            parts.append(Tensor(numeric))
        if len(parts) == 1:
            return parts[0]
        return concat(parts, axis=-1)

    def forward(self, features: Dict[str, np.ndarray]) -> Tensor:
        """Encode a feature dict into ``(batch, vector_dim)`` vectors."""
        x = self._assemble_input(features)
        return self.head(self.encoder(x))
