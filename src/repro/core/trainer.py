"""Training loops for the two-tower baselines and the ATNN models.

Implements the paper's alternating optimisation:

* Algorithm 1 (e-commerce ATNN): per batch, first minimise ``L_i`` (encoder
  path), then minimise ``L_g + lambda * L_s`` (generator path with the
  similarity term against detached encoder vectors).
* Algorithm 2 (food-delivery multi-task ATNN): the same alternation with
  ``L^GMV + lambda_1 * L^VpPV`` on each path and ``lambda_2 * L_s``.

A single optimizer covers all unique parameters; each alternating step only
touches the parameters reachable from its loss graph (parameters without
gradients are skipped), so the alternation matches the paper's two-step
updates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.atnn import ATNN
from repro.core.multitask import MultiTaskATNN
from repro.core.two_tower import TwoTowerModel
from repro.data.dataset import InteractionDataset
from repro.metrics.auc import roc_auc
from repro.nn.losses import (
    binary_cross_entropy,
    mean_squared_error,
    similarity_loss,
)
from repro.nn.optim import Adam, Optimizer
from repro.nn.tensor import Tensor, no_grad, set_default_dtype
from repro.obs.callbacks import BatchStats, TrainerCallback, global_callbacks
from repro.obs.tracing import maybe_span

__all__ = [
    "EarlyStopping",
    "TrainingHistory",
    "TwoTowerTrainer",
    "ATNNTrainer",
    "MultiTaskTrainer",
    "set_trainer_defaults",
    "get_trainer_defaults",
]


# Ambient trainer defaults: process-wide knobs (CLI flags, experiment
# presets) consulted when a trainer is constructed without explicit
# values.  Experiments construct their trainers internally, so this is
# how ``--fuse`` / ``--n-workers`` reach them without threading new
# arguments through every registry entry.
_TRAINER_DEFAULTS: Dict[str, object] = {
    "fuse": False,
    "n_workers": 0,
    "start_method": None,
    "worker_spool_dir": None,
}


def set_trainer_defaults(**overrides) -> Dict[str, object]:
    """Update the ambient trainer defaults; returns the previous values.

    Recognised keys: ``fuse`` (apply the kernel-fusion pass to models at
    fit time), ``n_workers`` (0 = in-process training, N >= 1 = a
    data-parallel worker pool of N processes), ``start_method`` and
    ``worker_spool_dir`` (see :class:`repro.nn.parallel.WorkerPool`).
    """
    unknown = sorted(set(overrides) - set(_TRAINER_DEFAULTS))
    if unknown:
        raise KeyError(
            f"unknown trainer defaults {unknown}; "
            f"expected keys from {sorted(_TRAINER_DEFAULTS)}"
        )
    previous = {key: _TRAINER_DEFAULTS[key] for key in overrides}
    _TRAINER_DEFAULTS.update(overrides)
    return previous


def get_trainer_defaults() -> Dict[str, object]:
    """A copy of the ambient trainer defaults."""
    return dict(_TRAINER_DEFAULTS)


@dataclass(frozen=True)
class EarlyStopping:
    """Early-stopping policy on a recorded validation metric.

    Attributes
    ----------
    metric:
        History key to watch (e.g. ``valid_auc_encoder``,
        ``valid_mae_vppv``) — requires training with a validation set.
    mode:
        ``"max"`` (higher is better, AUC) or ``"min"`` (MAE/loss).
    patience:
        Epochs without improvement tolerated before stopping.
    restore_best:
        Reload the best epoch's weights when training ends.
    """

    metric: str
    mode: str = "max"
    patience: int = 2
    restore_best: bool = True

    def __post_init__(self) -> None:
        if self.mode not in ("max", "min"):
            raise ValueError(f"mode must be 'max' or 'min', got {self.mode!r}")
        if self.patience < 1:
            raise ValueError(f"patience must be >= 1, got {self.patience}")

    def improved(self, value: float, best: Optional[float]) -> bool:
        """Whether ``value`` beats the best seen so far."""
        if best is None:
            return True
        return value > best if self.mode == "max" else value < best


@dataclass
class TrainingHistory:
    """Per-epoch training diagnostics.

    ``records`` holds one dict per epoch with the mean batch losses (keys
    depend on the trainer) plus any validation metrics.
    """

    records: List[Dict[str, float]] = field(default_factory=list)

    def series(self, key: str) -> List[float]:
        """Values of one diagnostic across epochs (missing epochs skipped)."""
        return [record[key] for record in self.records if key in record]

    @property
    def n_epochs(self) -> int:
        return len(self.records)

    def last(self, key: str) -> float:
        """Most recent value of one diagnostic."""
        values = self.series(key)
        if not values:
            raise KeyError(f"no recorded values for {key!r}")
        return values[-1]

    def keys(self) -> List[str]:
        """All diagnostic keys, in order of first appearance."""
        seen: List[str] = []
        for record in self.records:
            for key in record:
                if key not in seen:
                    seen.append(key)
        return seen

    def to_dict(self) -> Dict[str, List[Dict[str, float]]]:
        """JSON-friendly payload; round-trips through :meth:`from_dict`."""
        return {"records": [dict(record) for record in self.records]}

    @classmethod
    def from_dict(cls, payload: Dict) -> "TrainingHistory":
        """Rebuild a history saved by :meth:`to_dict`."""
        records = payload.get("records")
        if not isinstance(records, list):
            raise ValueError("payload must contain a 'records' list")
        rebuilt = []
        for position, record in enumerate(records):
            if not isinstance(record, dict):
                raise ValueError(f"record #{position} is not a mapping")
            rebuilt.append({str(k): float(v) for k, v in record.items()})
        return cls(records=rebuilt)

    def summary(self) -> str:
        """One-line description: epoch count and first→last per diagnostic."""
        if not self.records:
            return "TrainingHistory: empty"
        parts = []
        for key in self.keys():
            values = self.series(key)
            if len(values) == 1:
                parts.append(f"{key} {values[0]:.4f}")
            else:
                parts.append(f"{key} {values[0]:.4f}→{values[-1]:.4f}")
        plural = "s" if self.n_epochs != 1 else ""
        return f"TrainingHistory: {self.n_epochs} epoch{plural}; " + ", ".join(parts)


class _BaseTrainer:
    """Shared epoch/batch plumbing."""

    def __init__(
        self,
        epochs: int = 3,
        batch_size: int = 512,
        lr: float = 1e-3,
        grad_clip: Optional[float] = 5.0,
        seed: int = 0,
        verbose: bool = False,
        on_epoch_end: Optional[Callable[[int, Dict[str, float]], None]] = None,
        early_stopping: Optional[EarlyStopping] = None,
        callbacks: Optional[Sequence[TrainerCallback]] = None,
        dtype=None,
        fuse: Optional[bool] = None,
        n_workers: Optional[int] = None,
        start_method: Optional[str] = None,
        worker_spool_dir=None,
    ) -> None:
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        # None means "use the ambient default" (set_trainer_defaults).
        defaults = _TRAINER_DEFAULTS
        self.fuse = bool(defaults["fuse"] if fuse is None else fuse)
        self.n_workers = int(
            defaults["n_workers"] if n_workers is None else n_workers  # type: ignore[arg-type]
        )
        if self.n_workers < 0:
            raise ValueError(f"n_workers must be >= 0, got {self.n_workers}")
        self.start_method = (
            defaults["start_method"] if start_method is None else start_method
        )
        self.worker_spool_dir = (
            defaults["worker_spool_dir"]
            if worker_spool_dir is None
            else worker_spool_dir
        )
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.grad_clip = grad_clip
        self.seed = seed
        self.verbose = verbose
        self.on_epoch_end = on_epoch_end
        self.early_stopping = early_stopping
        self.callbacks: List[TrainerCallback] = list(callbacks or [])
        # Compute dtype for the whole fit: np.float32 roughly halves the
        # memory traffic of the numpy kernels.  None keeps the engine-wide
        # default (float64).
        self.dtype = np.dtype(dtype) if dtype is not None else None
        self._previous_dtype = None
        self._best_value: Optional[float] = None
        self._best_state: Optional[Dict[str, np.ndarray]] = None
        self._active_callbacks: Tuple[TrainerCallback, ...] = ()
        self._parameter_groups: List[Tuple[str, List]] = []

    # ------------------------------------------------------------------
    # Telemetry plumbing
    # ------------------------------------------------------------------
    def _begin_fit(self, model) -> None:
        """Resolve callbacks, and enter the configured compute dtype.

        When ``fuse`` is enabled the kernel-fusion pass rewrites the
        model in place here (after any dtype change), so registry models
        pick up the fused Linear→ReLU / cross-layer kernels without
        model-code changes; the report lands on ``self.fusion_report``.
        """
        if self.dtype is not None:
            self._previous_dtype = set_default_dtype(self.dtype)
            model.to_dtype(self.dtype)
        self.fusion_report = None
        if self.fuse:
            from repro.nn.fusion import fuse

            self.fusion_report = fuse(model)
            if self.verbose:
                print(self.fusion_report.to_text())
        self._active_callbacks = tuple(self.callbacks) + global_callbacks()
        self._parameter_groups = []
        if self._active_callbacks:
            # Group parameters by the model's top-level submodule; a shared
            # parameter (the paper's embedding trick) counts once, under the
            # group that registered it first.
            groups: Dict[str, List] = {}
            seen_ids: set = set()
            for name, param in model.named_parameters():
                if id(param) in seen_ids:
                    continue
                seen_ids.add(id(param))
                group = name.split(".", 1)[0]
                groups.setdefault(group, []).append(param)
            self._parameter_groups = sorted(groups.items())
        for callback in self._active_callbacks:
            callback.on_train_begin(self, model)

    def _end_fit(self, history: "TrainingHistory") -> None:
        for callback in self._active_callbacks:
            callback.on_train_end(history)
        self._active_callbacks = ()
        self._parameter_groups = []
        if self._previous_dtype is not None:
            set_default_dtype(self._previous_dtype)
            self._previous_dtype = None

    @staticmethod
    def _grad_norm(parameters) -> float:
        total = 0.0
        for param in parameters:
            if param.grad is not None:
                total += float((param.grad ** 2).sum())
        return float(np.sqrt(total))

    def _on_batch(
        self,
        optimizer: Optimizer,
        path: str,
        losses: Dict[str, float],
    ) -> None:
        """Emit one :class:`BatchStats` (gradients still hold this step's values)."""
        if not self._active_callbacks:
            return
        stats = BatchStats(
            step=optimizer.step_count,
            path=path,
            losses=losses,
            grad_norm=self._grad_norm(optimizer.parameters),
            grad_norms={
                group: self._grad_norm(params)
                for group, params in self._parameter_groups
            },
            lr=optimizer.lr,
        )
        for callback in self._active_callbacks:
            callback.on_batch_end(stats)

    def _step(self, optimizer: Optimizer, loss: Tensor) -> float:
        value = loss.item()
        if not np.isfinite(value):
            raise RuntimeError(
                f"training diverged: loss is {value!r} at optimizer step "
                f"{optimizer.step_count}; lower the learning rate or enable "
                "gradient clipping"
            )
        optimizer.zero_grad()
        loss.backward()
        if self.grad_clip is not None:
            Optimizer.clip_gradients(optimizer.parameters, self.grad_clip)
        optimizer.step()
        return value

    def _emit_validation_scores(self, path: str, labels, scores) -> None:
        """Hand one validation pass's raw (labels, scores) to callbacks."""
        for callback in self._active_callbacks:
            callback.on_validation_scores(path, labels, scores)

    def _finish_epoch(
        self,
        epoch: int,
        record: Dict[str, float],
        history: TrainingHistory,
    ) -> None:
        history.records.append(record)
        if self.verbose:
            rendered = ", ".join(f"{k}={v:.4f}" for k, v in record.items())
            print(f"epoch {epoch + 1}/{self.epochs}: {rendered}")
        if self.on_epoch_end is not None:
            self.on_epoch_end(epoch, record)
        for callback in self._active_callbacks:
            callback.on_epoch_end(epoch, record)

    def _check_early_stop(self, record: Dict[str, float], model) -> bool:
        """Update the best snapshot; return True when patience is spent."""
        policy = self.early_stopping
        if policy is None:
            return False
        if policy.metric not in record:
            raise KeyError(
                f"early stopping watches {policy.metric!r} but the epoch "
                f"record only has {sorted(record)}; pass a validation set"
            )
        value = record[policy.metric]
        if policy.improved(value, self._best_value):
            self._best_value = value
            self._epochs_without_improvement = 0
            if policy.restore_best:
                self._best_state = model.state_dict()
        else:
            self._epochs_without_improvement = (
                getattr(self, "_epochs_without_improvement", 0) + 1
            )
        return getattr(self, "_epochs_without_improvement", 0) >= policy.patience

    def _maybe_restore_best(self, model) -> None:
        """Reload the best snapshot when configured."""
        if (
            self.early_stopping is not None
            and self.early_stopping.restore_best
            and self._best_state is not None
        ):
            model.load_state_dict(self._best_state)

    # ------------------------------------------------------------------
    # Multi-process data-parallel fit (n_workers >= 1)
    # ------------------------------------------------------------------
    def _fit_parallel(
        self,
        model,
        train: InteractionDataset,
        program,
        validate: Optional[Callable[[object, Dict[str, float]], None]] = None,
    ) -> TrainingHistory:
        """Generic epoch loop over a :class:`repro.nn.parallel.WorkerPool`.

        Workers compute per-shard gradients for each of ``program``'s
        paths; this parent merges them, clips, and applies the optimizer
        step to the shared parameter slab — so alternation semantics
        (the generator path seeing the encoder-path update) are
        preserved exactly.  ``validate`` receives ``(model, record)``
        after each epoch to append validation metrics.
        """
        from repro.nn.parallel import WorkerPool

        history = TrainingHistory()
        self._begin_fit(model)
        try:
            optimizer = Adam(model.parameters(), lr=self.lr)
            model.train()
            pool = WorkerPool(
                model,
                program,
                train,
                n_workers=self.n_workers,
                batch_size=self.batch_size,
                seed=self.seed,
                start_method=self.start_method,
                spool_dir=self.worker_spool_dir,
            )
            try:
                for epoch in range(self.epochs):
                    accumulated: Dict[str, List[float]] = {}
                    pool.begin_epoch()
                    with maybe_span("train.epoch"):
                        for _ in range(pool.steps_per_epoch):
                            for position, path in enumerate(program.paths()):
                                # zero_grad first: it also recycles the
                                # arena generation the previous step's
                                # optimizer scratch came from.
                                optimizer.zero_grad()
                                value, logs = pool.step(
                                    path, advance=(position == 0)
                                )
                                if not np.isfinite(value):
                                    raise RuntimeError(
                                        f"training diverged: loss is {value!r} "
                                        f"at optimizer step {optimizer.step_count}"
                                        f" on path {path!r}; lower the learning "
                                        "rate or enable gradient clipping"
                                    )
                                if self.grad_clip is not None:
                                    Optimizer.clip_gradients(
                                        optimizer.parameters, self.grad_clip
                                    )
                                optimizer.step()
                                for key, logged in logs.items():
                                    accumulated.setdefault(key, []).append(logged)
                                self._on_batch(optimizer, path, logs)
                    record = {
                        key: float(np.mean(values))
                        for key, values in accumulated.items()
                    }
                    if validate is not None:
                        validate(model, record)
                        model.train()
                    self._finish_epoch(epoch, record, history)
                    if self._check_early_stop(record, model):
                        break
                self._maybe_restore_best(model)
                model.eval()
            finally:
                pool.close()
        finally:
            self._end_fit(history)
        return history


class TwoTowerTrainer(_BaseTrainer):
    """Trains :class:`TwoTowerModel` on binary CTR labels."""

    def fit(
        self,
        model: TwoTowerModel,
        train: InteractionDataset,
        valid: Optional[InteractionDataset] = None,
        label: str = "ctr",
    ) -> TrainingHistory:
        """Run the training loop; returns per-epoch history.

        Parameters
        ----------
        model:
            The model to train in place.
        train:
            Training interactions.
        valid:
            Optional held-out interactions; when given, validation AUC is
            recorded each epoch.
        label:
            Which label column carries the click target.
        """
        if self.n_workers:
            from repro.nn.parallel import TwoTowerStepProgram

            def validate(model, record):
                if valid is None:
                    return
                valid_labels = valid.label(label)
                valid_scores = model.predict_proba(valid.features)
                record["valid_auc"] = roc_auc(valid_labels, valid_scores)
                self._emit_validation_scores("encoder", valid_labels, valid_scores)

            return self._fit_parallel(
                model, train, TwoTowerStepProgram(label), validate
            )
        rng = np.random.default_rng(self.seed)
        history = TrainingHistory()
        self._begin_fit(model)
        try:
            optimizer = Adam(model.parameters(), lr=self.lr)
            model.train()
            for epoch in range(self.epochs):
                losses: List[float] = []
                with maybe_span("train.epoch"):
                    for batch in train.iter_batches(self.batch_size, rng=rng):
                        probabilities = model(batch.features)
                        loss = binary_cross_entropy(probabilities, batch.label(label))
                        value = self._step(optimizer, loss)
                        losses.append(value)
                        self._on_batch(optimizer, "encoder", {"loss": value})
                record = {"loss": float(np.mean(losses))}
                if valid is not None:
                    valid_labels = valid.label(label)
                    valid_scores = model.predict_proba(valid.features)
                    record["valid_auc"] = roc_auc(valid_labels, valid_scores)
                    self._emit_validation_scores(
                        "encoder", valid_labels, valid_scores
                    )
                    model.train()
                self._finish_epoch(epoch, record, history)
                if self._check_early_stop(record, model):
                    break
            self._maybe_restore_best(model)
            model.eval()
        finally:
            self._end_fit(history)
        return history


class ATNNTrainer(_BaseTrainer):
    """Alternating trainer for :class:`ATNN` (Algorithm 1).

    Parameters
    ----------
    lambda_similarity:
        The paper's ``lambda`` weighting ``L_s`` in the generator step
        (0.1 in the paper's experiments; 0 disables distillation).
    """

    def __init__(self, lambda_similarity: float = 0.1, **kwargs) -> None:
        super().__init__(**kwargs)
        if lambda_similarity < 0:
            raise ValueError(
                f"lambda_similarity must be >= 0, got {lambda_similarity}"
            )
        self.lambda_similarity = lambda_similarity

    def fit(
        self,
        model: ATNN,
        train: InteractionDataset,
        valid: Optional[InteractionDataset] = None,
        label: str = "ctr",
    ) -> TrainingHistory:
        """Run Algorithm 1; records ``loss_i``, ``loss_g``, ``loss_s``.

        When ``valid`` is given, both the encoder-path AUC
        (``valid_auc_encoder``) and the cold-start generator-path AUC
        (``valid_auc_generator``) are recorded each epoch.
        """
        if self.n_workers:
            from repro.nn.parallel import ATNNStepProgram

            def validate(model, record):
                if valid is None:
                    return
                valid_labels = valid.label(label)
                encoder_scores = model.predict_proba(valid.features)
                generator_scores = model.predict_proba_cold_start(valid.features)
                record["valid_auc_encoder"] = roc_auc(valid_labels, encoder_scores)
                record["valid_auc_generator"] = roc_auc(
                    valid_labels, generator_scores
                )
                self._emit_validation_scores(
                    "encoder", valid_labels, encoder_scores
                )
                self._emit_validation_scores(
                    "generator", valid_labels, generator_scores
                )

            return self._fit_parallel(
                model,
                train,
                ATNNStepProgram(label, self.lambda_similarity),
                validate,
            )
        rng = np.random.default_rng(self.seed)
        history = TrainingHistory()
        self._begin_fit(model)
        try:
            optimizer = Adam(model.parameters(), lr=self.lr)
            model.train()
            for epoch in range(self.epochs):
                losses_i: List[float] = []
                losses_g: List[float] = []
                losses_s: List[float] = []
                with maybe_span("train.epoch"):
                    for batch in train.iter_batches(self.batch_size, rng=rng):
                        targets = batch.label(label)

                        # Step 1 — optimise the encoder path on L_i.
                        probabilities = model(batch.features)
                        loss_i = binary_cross_entropy(probabilities, targets)
                        value_i = self._step(optimizer, loss_i)
                        losses_i.append(value_i)
                        self._on_batch(optimizer, "encoder", {"loss_i": value_i})

                        # Step 2 — optimise the generator path on L_g + lambda*L_s.
                        with no_grad():
                            encoder_targets = model.encoded_item_vectors(
                                batch.features
                            )
                        generated = model.generated_item_vectors(batch.features)
                        user_vectors = model.user_vectors(batch.features)
                        generator_probabilities = model.scoring_head(
                            generated, user_vectors
                        )
                        loss_g = binary_cross_entropy(
                            generator_probabilities, targets
                        )
                        loss_s = similarity_loss(
                            generated, Tensor(encoder_targets.data)
                        )
                        combined = loss_g + self.lambda_similarity * loss_s
                        self._step(optimizer, combined)
                        losses_g.append(loss_g.item())
                        losses_s.append(loss_s.item())
                        self._on_batch(
                            optimizer,
                            "generator",
                            {"loss_g": losses_g[-1], "loss_s": losses_s[-1]},
                        )

                record = {
                    "loss_i": float(np.mean(losses_i)),
                    "loss_g": float(np.mean(losses_g)),
                    "loss_s": float(np.mean(losses_s)),
                }
                if valid is not None:
                    valid_labels = valid.label(label)
                    encoder_scores = model.predict_proba(valid.features)
                    generator_scores = model.predict_proba_cold_start(
                        valid.features
                    )
                    record["valid_auc_encoder"] = roc_auc(
                        valid_labels, encoder_scores
                    )
                    record["valid_auc_generator"] = roc_auc(
                        valid_labels, generator_scores
                    )
                    self._emit_validation_scores(
                        "encoder", valid_labels, encoder_scores
                    )
                    self._emit_validation_scores(
                        "generator", valid_labels, generator_scores
                    )
                    model.train()
                self._finish_epoch(epoch, record, history)
                if self._check_early_stop(record, model):
                    break
            self._maybe_restore_best(model)
            model.eval()
        finally:
            self._end_fit(history)
        return history


class MultiTaskTrainer(_BaseTrainer):
    """Alternating trainer for :class:`MultiTaskATNN` (Algorithm 2).

    Parameters
    ----------
    lambda_vppv:
        The paper's ``lambda_1`` weighting the VpPV loss against the GMV
        loss (100 in the paper).
    lambda_similarity:
        The paper's ``lambda_2`` weighting ``L_s`` (10 in the paper).
    adversarial:
        When False the generator step is skipped entirely — this is the
        TNN-DCN comparison model of Table IV trained on the same code path.
    """

    def __init__(
        self,
        lambda_vppv: float = 100.0,
        lambda_similarity: float = 10.0,
        adversarial: bool = True,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if lambda_vppv < 0 or lambda_similarity < 0:
            raise ValueError("loss weights must be >= 0")
        self.lambda_vppv = lambda_vppv
        self.lambda_similarity = lambda_similarity
        self.adversarial = adversarial

    def _task_loss(
        self,
        model: MultiTaskATNN,
        batch_features: Dict[str, np.ndarray],
        gmv_targets: np.ndarray,
        vppv_targets: np.ndarray,
        use_generator: bool,
    ) -> Tensor:
        if use_generator:
            item_vectors = model.generated_item_vectors(batch_features)
        else:
            item_vectors = model.encoded_item_vectors(batch_features)
        group_vectors = model.group_vectors(batch_features)
        gmv_prediction = model.gmv_head(item_vectors, group_vectors)
        vppv_prediction = model.vppv_head(item_vectors, group_vectors)
        return mean_squared_error(
            gmv_prediction, gmv_targets
        ) + self.lambda_vppv * mean_squared_error(vppv_prediction, vppv_targets)

    def fit(
        self,
        model: MultiTaskATNN,
        train: InteractionDataset,
        valid: Optional[InteractionDataset] = None,
    ) -> TrainingHistory:
        """Run Algorithm 2; records per-path losses and validation MAEs."""
        # Start each regression head at its label mean so early epochs fit
        # structure rather than climbing the output offset.
        model.gmv_head.set_output_bias(float(train.label("gmv").mean()))
        model.vppv_head.set_output_bias(float(train.label("vppv").mean()))
        if self.n_workers:
            from repro.nn.parallel import MultiTaskStepProgram

            def validate(model, record):
                if valid is None:
                    return
                for task in MultiTaskATNN.TASKS:
                    predictions = model.predict(
                        valid.features, task, cold_start=self.adversarial
                    )
                    errors = np.abs(predictions - valid.label(task))
                    record[f"valid_mae_{task}"] = float(errors.mean())

            return self._fit_parallel(
                model,
                train,
                MultiTaskStepProgram(
                    self.lambda_vppv, self.lambda_similarity, self.adversarial
                ),
                validate,
            )
        rng = np.random.default_rng(self.seed)
        history = TrainingHistory()
        self._begin_fit(model)
        try:
            optimizer = Adam(model.parameters(), lr=self.lr)
            model.train()
            for epoch in range(self.epochs):
                losses_r: List[float] = []
                losses_g: List[float] = []
                losses_s: List[float] = []
                with maybe_span("train.epoch"):
                    for batch in train.iter_batches(self.batch_size, rng=rng):
                        gmv_targets = batch.label("gmv")
                        vppv_targets = batch.label("vppv")

                        # Step 1 — encoder path: L_r^GMV + lambda_1 * L_r^VpPV.
                        loss_r = self._task_loss(
                            model, batch.features, gmv_targets, vppv_targets, False
                        )
                        value_r = self._step(optimizer, loss_r)
                        losses_r.append(value_r)
                        self._on_batch(optimizer, "encoder", {"loss_r": value_r})

                        if not self.adversarial:
                            continue

                        # Step 2 — generator path plus similarity distillation.
                        with no_grad():
                            encoder_targets = model.encoded_item_vectors(
                                batch.features
                            )
                        generated = model.generated_item_vectors(batch.features)
                        group_vectors = model.group_vectors(batch.features)
                        gmv_prediction = model.gmv_head(generated, group_vectors)
                        vppv_prediction = model.vppv_head(generated, group_vectors)
                        loss_g = mean_squared_error(
                            gmv_prediction, gmv_targets
                        ) + self.lambda_vppv * mean_squared_error(
                            vppv_prediction, vppv_targets
                        )
                        loss_s = similarity_loss(
                            generated, Tensor(encoder_targets.data)
                        )
                        combined = loss_g + self.lambda_similarity * loss_s
                        self._step(optimizer, combined)
                        losses_g.append(loss_g.item())
                        losses_s.append(loss_s.item())
                        self._on_batch(
                            optimizer,
                            "generator",
                            {"loss_g": losses_g[-1], "loss_s": losses_s[-1]},
                        )

                record: Dict[str, float] = {"loss_r": float(np.mean(losses_r))}
                if losses_g:
                    record["loss_g"] = float(np.mean(losses_g))
                    record["loss_s"] = float(np.mean(losses_s))
                if valid is not None:
                    for task in MultiTaskATNN.TASKS:
                        cold = self.adversarial
                        predictions = model.predict(
                            valid.features, task, cold_start=cold
                        )
                        errors = np.abs(predictions - valid.label(task))
                        record[f"valid_mae_{task}"] = float(errors.mean())
                    model.train()
                self._finish_epoch(epoch, record, history)
                if self._check_early_stop(record, model):
                    break
            self._maybe_restore_best(model)
            model.eval()
        finally:
            self._end_fit(history)
        return history
