"""Scoring heads combining an item vector and a user vector.

The paper's ``H(f_i(X_i), f_u(X_u))`` produces a CTR score from the two
tower outputs.  Two head families are provided:

* :class:`WeightedDotHead` — a learned elementwise-weighted inner product
  followed by a sigmoid.  Crucially it is **linear in the user vector**,
  which is the property the O(1) popularity trick relies on: the mean score
  over a user group is (up to the final sigmoid) the score of the *mean
  user vector*.
* :class:`ConcatMLPHead` — an MLP over ``[u, v, u*v]``; strictly more
  expressive but not mean-vector-exact.  Used by the multi-task regression
  heads where user groups are already aggregated.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.nn import init
from repro.nn.layers import MLP
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, concat

__all__ = ["WeightedDotHead", "ConcatMLPHead"]


class WeightedDotHead(Module):
    """CTR head: ``sigma(sum_d w_d * u_d * v_d + b)``.

    Parameters
    ----------
    vector_dim:
        Dimension of the tower vectors.
    rng:
        Generator for weight initialisation (weights start at 1/sqrt(dim)).
    """

    def __init__(self, vector_dim: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if vector_dim <= 0:
            raise ValueError(f"vector_dim must be positive, got {vector_dim}")
        self.vector_dim = vector_dim
        scale = 1.0 / np.sqrt(vector_dim)
        self.weight = Parameter(np.full((vector_dim,), scale), name="dot_weight")
        self.bias = Parameter(init.zeros((1,)), name="dot_bias")

    def logits(self, item_vectors: Tensor, user_vectors: Tensor) -> Tensor:
        """Raw pre-sigmoid scores, shape ``(batch,)``."""
        if item_vectors.shape != user_vectors.shape:
            raise ValueError(
                f"item and user vectors must match, got "
                f"{item_vectors.shape} vs {user_vectors.shape}"
            )
        interaction = item_vectors * user_vectors * self.weight
        return interaction.sum(axis=-1) + self.bias

    def forward(self, item_vectors: Tensor, user_vectors: Tensor) -> Tensor:
        """Click probabilities, shape ``(batch,)``."""
        return self.logits(item_vectors, user_vectors).sigmoid()


class ConcatMLPHead(Module):
    """Regression/score head: MLP over ``[u, v, u*v]``.

    Parameters
    ----------
    vector_dim:
        Dimension of the tower vectors.
    hidden_dims:
        MLP widths; a final scalar layer is appended.
    output_activation:
        ``"identity"`` for unconstrained regression (GMV/VpPV heads) or
        ``"sigmoid"`` for probabilities.
    rng:
        Generator for weight initialisation.
    """

    def __init__(
        self,
        vector_dim: int,
        hidden_dims: Sequence[int] = (32,),
        output_activation: str = "identity",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if vector_dim <= 0:
            raise ValueError(f"vector_dim must be positive, got {vector_dim}")
        self.vector_dim = vector_dim
        self.mlp = MLP(
            3 * vector_dim,
            list(hidden_dims) + [1],
            output_activation=output_activation,
            rng=rng,
        )

    def set_output_bias(self, value: float) -> None:
        """Initialise the final layer's bias (e.g. to the label mean).

        Regression targets far from zero (GMV in the paper's food-delivery
        task) otherwise waste early epochs climbing from the origin.
        """
        from repro.nn.layers import Linear

        final = None
        for layer in self.mlp.layers:
            if isinstance(layer, Linear):
                final = layer
        if final is None or final.bias is None:
            raise RuntimeError("head has no final linear bias to initialise")
        final.bias.assign_(float(value))

    def forward(self, item_vectors: Tensor, user_vectors: Tensor) -> Tensor:
        """Scalar outputs, shape ``(batch,)``."""
        if item_vectors.shape != user_vectors.shape:
            raise ValueError(
                f"item and user vectors must match, got "
                f"{item_vectors.shape} vs {user_vectors.shape}"
            )
        joined = concat(
            [user_vectors, item_vectors, user_vectors * item_vectors], axis=-1
        )
        return self.mlp(joined).reshape(-1)
