"""The Adversarial Two-tower Neural Network (ATNN) — Figure 4, Algorithm 1.

ATNN extends the two-tower model with an adversarial component:

* the **item encoder** ``f_i`` maps item profiles + item statistics to an
  item vector (the "real" vectors);
* the **generator** ``g`` maps item profiles *only* to a generated item
  vector;
* the **similarity loss** ``L_s = mean((1 - s)^2)`` (with ``s`` the cosine
  similarity between the two vectors) plays the adversarial game: the
  generator tries to make its vectors indistinguishable from the encoder's,
  while the encoder — updated on the CTR objective ``L_i`` in the
  alternating step — keeps the target distribution informative, acting as
  the discriminating signal;
* both vector families feed the same scoring head ``H`` against the user
  tower ``f_u``, giving losses ``L_i`` (encoder path) and ``L_g``
  (generator path);
* the generator **shares its embedding tables** with the item encoder
  (the paper's multi-task transfer trick).

Training alternates two updates per batch (Algorithm 1):

1. minimise ``L_i``;
2. minimise ``L_g + lambda * L_s`` (the encoder's vectors are treated as
   targets — detached — in ``L_s``).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.heads import WeightedDotHead
from repro.core.towers import Tower, TowerConfig
from repro.data.schema import (
    GROUP_ITEM_PROFILE,
    GROUP_ITEM_STAT,
    GROUP_USER,
    FeatureSchema,
)
from repro.nn.layers import FeatureEmbeddings
from repro.nn.module import Module
from repro.nn.tensor import Tensor, no_grad

__all__ = ["ATNN"]


class ATNN(Module):
    """Adversarial two-tower model for new-arrival CTR prediction.

    Parameters
    ----------
    schema:
        Dataset feature schema.
    config:
        Tower architecture (applied to encoder, generator and user tower —
        the paper uses identical structures for all three).
    share_embeddings:
        Whether generator and item encoder share the item-profile embedding
        tables (True in the paper; the ablation flips this off).
    rng:
        Generator for weight initialisation.
    """

    def __init__(
        self,
        schema: FeatureSchema,
        config: TowerConfig,
        share_embeddings: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.schema = schema
        self.config = config
        self.share_embeddings = share_embeddings

        # The item encoder consumes profiles + statistics.  Its categorical
        # features are exactly the item-profile ones (statistics are
        # numeric), so the embedding bank can be shared with the generator.
        profile_embeddings = FeatureEmbeddings(
            schema.vocab_sizes(GROUP_ITEM_PROFILE),
            schema.embedding_dims(GROUP_ITEM_PROFILE),
            rng=rng,
        )
        self.item_encoder = Tower(
            schema,
            (GROUP_ITEM_PROFILE, GROUP_ITEM_STAT),
            config,
            embeddings=profile_embeddings,
            rng=rng,
        )
        generator_embeddings = profile_embeddings if share_embeddings else None
        self.generator = Tower(
            schema,
            (GROUP_ITEM_PROFILE,),
            config,
            embeddings=generator_embeddings,
            rng=rng,
        )
        self.user_tower = Tower(schema, (GROUP_USER,), config, rng=rng)
        self.scoring_head = WeightedDotHead(config.vector_dim, rng=rng)

    # ------------------------------------------------------------------
    # Vector paths
    # ------------------------------------------------------------------
    def encoded_item_vectors(self, features: Dict[str, np.ndarray]) -> Tensor:
        """Item vectors from the encoder (profiles + statistics)."""
        return self.item_encoder(features)

    def generated_item_vectors(self, features: Dict[str, np.ndarray]) -> Tensor:
        """Item vectors from the generator (profiles only)."""
        return self.generator(features)

    def user_vectors(self, features: Dict[str, np.ndarray]) -> Tensor:
        """User vectors from the user tower."""
        return self.user_tower(features)

    # ------------------------------------------------------------------
    # Prediction paths
    # ------------------------------------------------------------------
    def forward(self, features: Dict[str, np.ndarray]) -> Tensor:
        """Encoder-path click probabilities (ordinary CTR prediction)."""
        return self.scoring_head(
            self.encoded_item_vectors(features), self.user_vectors(features)
        )

    def forward_generator(self, features: Dict[str, np.ndarray]) -> Tensor:
        """Generator-path click probabilities (cold-start CTR prediction)."""
        return self.scoring_head(
            self.generated_item_vectors(features), self.user_vectors(features)
        )

    def _predict(self, features, path: str, batch_size: int) -> np.ndarray:
        was_training = self.training
        self.eval()
        try:
            n_rows = len(next(iter(features.values())))
            chunks = []
            forward = self.forward if path == "encoder" else self.forward_generator
            with no_grad():
                for start in range(0, n_rows, batch_size):
                    chunk = {
                        name: col[start : start + batch_size]
                        for name, col in features.items()
                    }
                    chunks.append(forward(chunk).data)
            return np.concatenate(chunks)
        finally:
            self.train(was_training)

    def predict_proba(
        self, features: Dict[str, np.ndarray], batch_size: int = 4096
    ) -> np.ndarray:
        """Encoder-path probabilities (needs item statistics columns)."""
        return self._predict(features, "encoder", batch_size)

    def predict_proba_cold_start(
        self, features: Dict[str, np.ndarray], batch_size: int = 4096
    ) -> np.ndarray:
        """Generator-path probabilities — valid for brand-new items.

        Only item-profile and user features are read; statistics columns
        may be absent or zeroed.
        """
        return self._predict(features, "generator", batch_size)
