"""Two-tower CTR models: the TNN-FC and TNN-DCN baselines (Figure 3).

A :class:`TwoTowerModel` explicitly exposes the item vector and the user
vector (unlike the monolithic DNN of Figure 2), which is what makes the
mean-user-vector popularity trick and the adversarial generator possible.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.data.schema import GROUP_ITEM_PROFILE, GROUP_ITEM_STAT, GROUP_USER, FeatureSchema
from repro.core.heads import WeightedDotHead
from repro.core.towers import Tower, TowerConfig
from repro.nn.module import Module
from repro.nn.tensor import Tensor, no_grad

__all__ = ["TwoTowerModel"]


class TwoTowerModel(Module):
    """Item tower + user tower + scoring head.

    Parameters
    ----------
    schema:
        Dataset feature schema.
    config:
        Tower architecture.  ``config.num_cross_layers == 0`` gives the
        fully connected TNN-FC baseline; ``> 0`` gives TNN-DCN.
    item_groups:
        Feature groups the item tower consumes.  The complete-feature model
        uses ``(item_profile, item_stat)``; the cold-start variant trains
        on ``(item_profile,)`` alone.
    rng:
        Generator for weight initialisation.
    """

    def __init__(
        self,
        schema: FeatureSchema,
        config: TowerConfig,
        item_groups: Sequence[str] = (GROUP_ITEM_PROFILE, GROUP_ITEM_STAT),
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.schema = schema
        self.config = config
        self.item_groups = tuple(item_groups)
        self.item_tower = Tower(schema, self.item_groups, config, rng=rng)
        self.user_tower = Tower(schema, (GROUP_USER,), config, rng=rng)
        self.scoring_head = WeightedDotHead(config.vector_dim, rng=rng)

    # ------------------------------------------------------------------
    def item_vectors(self, features: Dict[str, np.ndarray]) -> Tensor:
        """Encode item features into item vectors."""
        return self.item_tower(features)

    def user_vectors(self, features: Dict[str, np.ndarray]) -> Tensor:
        """Encode user features into user vectors."""
        return self.user_tower(features)

    def forward(self, features: Dict[str, np.ndarray]) -> Tensor:
        """Click probabilities for each row of ``features``."""
        return self.scoring_head(self.item_vectors(features), self.user_vectors(features))

    # ------------------------------------------------------------------
    def predict_proba(
        self, features: Dict[str, np.ndarray], batch_size: int = 4096
    ) -> np.ndarray:
        """Inference-mode click probabilities as a numpy array."""
        was_training = self.training
        self.eval()
        try:
            n_rows = len(next(iter(features.values())))
            chunks = []
            with no_grad():
                for start in range(0, n_rows, batch_size):
                    chunk = {
                        name: col[start : start + batch_size]
                        for name, col in features.items()
                    }
                    chunks.append(self.forward(chunk).data)
            return np.concatenate(chunks)
        finally:
            self.train(was_training)
