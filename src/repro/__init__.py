"""Reproduction of "ATNN: Adversarial Two-Tower Neural Network for New
Item's Popularity Prediction in E-commerce" (ICDE 2021).

Subpackages
-----------
``repro.nn``
    From-scratch autograd engine, layers (DCN, embeddings), optimizers.
``repro.gbdt``
    Histogram gradient boosting (the paper's GBDT baseline).
``repro.data``
    Feature schemas, datasets, and synthetic Tmall / Ele.me worlds.
``repro.core``
    Two-tower models, ATNN (Algorithm 1), multi-task ATNN (Algorithm 2),
    the O(1) popularity service and the A/B-test simulators.
``repro.metrics``
    AUC, regression errors, business indicators.
``repro.experiments``
    Pipelines regenerating each of the paper's Tables I-V.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
