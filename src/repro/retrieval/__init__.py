"""Maximum-inner-product retrieval over two-tower item embeddings.

The serving engine and the retrieval-training evaluator share this one
subsystem: :class:`BruteForceIndex` is the exactness oracle (dense
matmul + ``argpartition``), :class:`IVFIndex` the approximate
partitioned index that scales top-k to million-item catalogues.  See
``docs/retrieval.md`` for the design and the measured recall/latency
trade-off.
"""

from typing import Optional

from repro.retrieval.index import BruteForceIndex, MIPSIndex, recall_at_k
from repro.retrieval.ivf import IVFIndex

__all__ = [
    "MIPSIndex",
    "BruteForceIndex",
    "IVFIndex",
    "make_index",
    "recall_at_k",
]


def make_index(
    kind: str,
    dim: int,
    *,
    nlist: Optional[int] = None,
    nprobe: int = 8,
    expected_size: Optional[int] = None,
    **kwargs,
) -> MIPSIndex:
    """Build a MIPS index by name (``"bruteforce"`` or ``"ivf"``).

    Parameters
    ----------
    kind:
        ``"bruteforce"`` for the exact oracle, ``"ivf"`` for the
        partitioned approximate index.
    dim:
        Embedding dimensionality.
    nlist:
        IVF partition count; when omitted it defaults to
        ``~sqrt(expected_size)`` (the classic IVF sizing rule), or 64
        when no expected size is given either.
    nprobe:
        IVF partitions probed per query.
    expected_size:
        Approximate corpus size, used only to size ``nlist``.
    kwargs:
        Passed through to the index constructor (``dtype``, ``seed``,
        ``imbalance_factor``, ...).
    """
    if kind == "bruteforce":
        if nlist is not None:
            raise ValueError("nlist only applies to the ivf index")
        return BruteForceIndex(dim, **kwargs)
    if kind == "ivf":
        if nlist is None:
            nlist = (
                max(1, int(round(expected_size ** 0.5)))
                if expected_size
                else 64
            )
        return IVFIndex(dim, nlist=nlist, nprobe=nprobe, **kwargs)
    raise ValueError(
        f"unknown index kind {kind!r}; expected 'bruteforce' or 'ivf'"
    )
