"""Partitioned (IVF-style) approximate MIPS index.

An inverted-file index over the two-tower item embeddings: a k-means
coarse quantizer (:func:`repro.core.clustering.kmeans`) splits the
corpus into ``nlist`` partitions stored as contiguous per-partition
matrices, and a query only scores the ``nprobe`` partitions whose
centroids have the largest inner product with it.  CBNS
(arXiv 2110.15154) observed that two-tower item encoders drift slowly,
which is exactly why a partitioning computed at refresh time stays
valid between refreshes.

Design points that matter for the serving engine:

* **Incremental inserts** — :meth:`add` assigns new vectors to their
  nearest partition and appends into preallocated (doubling) arrays, so
  cold-start vectors emitted by the ATNN generator are searchable
  immediately, with no rebuild.
* **In-place updates** — :meth:`update` rewrites rows by id; a vector
  whose nearest centroid changed migrates partitions (swap-with-last
  removal + append), so dirty-slot refreshes keep the index honest.
* **Amortised re-partitioning** — inserts skew partition sizes over
  time; when the largest partition exceeds ``imbalance_factor`` times
  the mean occupancy the index retrains its quantizer and reassigns
  everything (the "background" maintenance pass — it runs synchronously
  here but off the query path, and emits ``index.repartitions`` so
  flight-recorder postmortems can name it).
* **Cold behaviour** — below ``train_floor`` points the index keeps a
  single partition and is exactly brute force; the first build that
  crosses the floor trains the quantizer.

Scoring inside a probed partition is exact, so ``nprobe == nlist``
recovers the brute-force result bit-for-bit; recall@k degrades
gracefully as ``nprobe`` shrinks (see ``BENCH_retrieval.json`` for the
measured curve).
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

import numpy as np

from repro.core.clustering import kmeans
from repro.obs.metrics import get_active_registry
from repro.obs.tracing import maybe_span
from repro.retrieval.index import (
    MIPSIndex,
    _grown_capacity,
    _top_k_desc,
)

__all__ = ["IVFIndex"]


class IVFIndex(MIPSIndex):
    """Approximate MIPS via a k-means inverted file.

    Parameters
    ----------
    dim:
        Embedding dimensionality.
    nlist:
        Number of partitions the trained quantizer maintains.
    nprobe:
        Partitions scored per query (clamped to the live partition
        count; ``nprobe >= nlist`` makes the search exact).
    dtype:
        Storage dtype; defaults to the engine's configurable default.
    imbalance_factor:
        Re-partition when ``max(partition size) > factor * mean size``.
        ``None`` disables automatic maintenance (call
        :meth:`repartition` yourself).
    train_floor:
        Train the quantizer once at least this many vectors exist
        (default ``2 * nlist``); below it the index runs single-partition
        exact search.
    train_sample:
        k-means trains on at most this many sampled rows — quantizer
        quality saturates long before the full corpus size.
    kmeans_iterations:
        Lloyd iteration budget for quantizer training.
    seed:
        Seeds sampling and k-means initialisation (deterministic builds).
    """

    def __init__(
        self,
        dim: int,
        nlist: int = 64,
        nprobe: int = 8,
        dtype=None,
        imbalance_factor: Optional[float] = 4.0,
        train_floor: Optional[int] = None,
        train_sample: int = 65536,
        kmeans_iterations: int = 15,
        seed: int = 0,
    ) -> None:
        super().__init__(dim, dtype)
        if nlist < 1:
            raise ValueError(f"nlist must be >= 1, got {nlist}")
        if nprobe < 1:
            raise ValueError(f"nprobe must be >= 1, got {nprobe}")
        if imbalance_factor is not None and imbalance_factor <= 1.0:
            raise ValueError(
                f"imbalance_factor must be > 1, got {imbalance_factor}"
            )
        if train_sample < nlist:
            raise ValueError(
                f"train_sample must be >= nlist, got {train_sample} < {nlist}"
            )
        self.nlist = int(nlist)
        self.nprobe = int(nprobe)
        self.imbalance_factor = imbalance_factor
        self.train_floor = (
            int(train_floor) if train_floor is not None else 2 * self.nlist
        )
        self.train_sample = int(train_sample)
        self.kmeans_iterations = int(kmeans_iterations)
        self._rng = np.random.default_rng(seed)
        self.repartitions = 0
        self._repartitioned_at = 0
        self._reset_storage(n_parts=1)
        # Untrained: one catch-all partition, exact search.
        self._centroids: Optional[np.ndarray] = None
        self._neg_half_sq: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Storage plumbing
    # ------------------------------------------------------------------
    def _reset_storage(self, n_parts: int) -> None:
        self._part_vectors: List[np.ndarray] = [
            np.empty((0, self.dim), dtype=self.dtype) for _ in range(n_parts)
        ]
        self._part_ids: List[np.ndarray] = [
            np.empty(0, dtype=np.int64) for _ in range(n_parts)
        ]
        self._part_sizes = np.zeros(n_parts, dtype=np.int64)
        # id -> (partition, position) maps, grown alongside the corpus.
        self._id_part = np.empty(0, dtype=np.int64)
        self._id_pos = np.empty(0, dtype=np.int64)
        self._ntotal = 0

    @property
    def ntotal(self) -> int:
        return self._ntotal

    @property
    def trained(self) -> bool:
        """Whether a quantizer is live (False = single-partition exact)."""
        return self._centroids is not None

    @property
    def partition_sizes(self) -> np.ndarray:
        """Current per-partition occupancy (copy)."""
        return self._part_sizes.copy()

    def _reserve_ids(self, extra: int) -> None:
        needed = self._ntotal + extra
        if needed <= self._id_part.shape[0]:
            return
        capacity = _grown_capacity(self._id_part.shape[0], needed)
        for name in ("_id_part", "_id_pos"):
            grown = np.empty(capacity, dtype=np.int64)
            old = getattr(self, name)
            grown[: self._ntotal] = old[: self._ntotal]
            setattr(self, name, grown)

    def _append_to_partition(self, part: int, ids, vectors) -> None:
        size = int(self._part_sizes[part])
        needed = size + vectors.shape[0]
        if needed > self._part_vectors[part].shape[0]:
            capacity = _grown_capacity(self._part_vectors[part].shape[0], needed)
            grown_vecs = np.empty((capacity, self.dim), dtype=self.dtype)
            grown_vecs[:size] = self._part_vectors[part][:size]
            self._part_vectors[part] = grown_vecs
            grown_ids = np.empty(capacity, dtype=np.int64)
            grown_ids[:size] = self._part_ids[part][:size]
            self._part_ids[part] = grown_ids
        stop = size + vectors.shape[0]
        self._part_vectors[part][size:stop] = vectors
        self._part_ids[part][size:stop] = ids
        self._id_part[ids] = part
        self._id_pos[ids] = np.arange(size, stop)
        self._part_sizes[part] = stop

    def _remove_from_partition(self, row_id: int) -> None:
        """Swap-with-last removal keeping per-partition arrays packed."""
        part = int(self._id_part[row_id])
        pos = int(self._id_pos[row_id])
        last = int(self._part_sizes[part]) - 1
        if pos != last:
            moved_id = int(self._part_ids[part][last])
            self._part_vectors[part][pos] = self._part_vectors[part][last]
            self._part_ids[part][pos] = moved_id
            self._id_pos[moved_id] = pos
        self._part_sizes[part] = last

    # ------------------------------------------------------------------
    # Quantizer
    # ------------------------------------------------------------------
    def _set_centroids(self, centroids: np.ndarray) -> None:
        self._centroids = np.ascontiguousarray(centroids, dtype=self.dtype)
        # argmin ||x - c||² == argmax (x·c - ||c||²/2); precompute the bias
        # so assignment is one matmul per batch.
        self._neg_half_sq = -0.5 * (self._centroids ** 2).sum(axis=1)

    def _train_quantizer(self, vectors: np.ndarray) -> np.ndarray:
        sample = vectors
        if vectors.shape[0] > self.train_sample:
            rows = self._rng.choice(
                vectors.shape[0], size=self.train_sample, replace=False
            )
            sample = vectors[rows]
        result = kmeans(
            sample,
            k=min(self.nlist, sample.shape[0]),
            rng=self._rng,
            max_iterations=self.kmeans_iterations,
        )
        return result.centroids

    def _assign(self, vectors: np.ndarray, batch: int = 65536) -> np.ndarray:
        """Nearest-centroid partition per row (batched, index dtype)."""
        out = np.empty(vectors.shape[0], dtype=np.int64)
        for start in range(0, vectors.shape[0], batch):
            chunk = vectors[start : start + batch]
            affinity = chunk @ self._centroids.T + self._neg_half_sq
            out[start : start + batch] = affinity.argmax(axis=1)
        return out

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def rebuild(self, vectors: np.ndarray) -> None:
        """Replace the index contents; ids reset to ``0..n-1``."""
        vectors = self._coerce_vectors(vectors)
        with maybe_span("index.build"):
            if vectors.shape[0] >= max(self.train_floor, self.nlist):
                self._set_centroids(self._train_quantizer(vectors))
            else:
                self._centroids = None
                self._neg_half_sq = None
            self._partition_all(
                vectors, np.arange(vectors.shape[0], dtype=np.int64)
            )

    def _partition_all(self, vectors: np.ndarray, ids: np.ndarray) -> None:
        """Lay out ``vectors`` (keyed by ``ids``) under the current quantizer."""
        n_parts = self._centroids.shape[0] if self.trained else 1
        self._reset_storage(n_parts)
        n = vectors.shape[0]
        if n:
            self._reserve_ids(int(ids.max()) + 1)
            if not self.trained:
                self._append_to_partition(0, ids, vectors)
            else:
                assignments = self._assign(vectors)
                order = np.argsort(assignments, kind="stable")
                sorted_parts = assignments[order]
                boundaries = np.searchsorted(
                    sorted_parts, np.arange(n_parts + 1), side="left"
                )
                for part in range(n_parts):
                    rows = order[boundaries[part] : boundaries[part + 1]]
                    if not rows.size:
                        continue
                    self._part_vectors[part] = np.ascontiguousarray(vectors[rows])
                    self._part_ids[part] = ids[rows].astype(np.int64)
                    self._part_sizes[part] = rows.size
                    self._id_part[ids[rows]] = part
                    self._id_pos[ids[rows]] = np.arange(rows.size)
        self._ntotal = n

    def add(self, vectors: np.ndarray) -> np.ndarray:
        vectors = self._coerce_vectors(vectors)
        with maybe_span("index.insert"):
            start_id = self._ntotal
            ids = np.arange(
                start_id, start_id + vectors.shape[0], dtype=np.int64
            )
            self._reserve_ids(vectors.shape[0])
            self._ntotal += vectors.shape[0]
            if self.trained:
                assignments = self._assign(vectors)
                for part in np.unique(assignments):
                    rows = assignments == part
                    self._append_to_partition(
                        int(part), ids[rows], vectors[rows]
                    )
            else:
                self._append_to_partition(0, ids, vectors)
        registry = get_active_registry()
        if registry is not None:
            registry.counter("index.inserts").inc(vectors.shape[0])
        self._maybe_train()
        self._maybe_repartition()
        return ids

    def update(self, ids: np.ndarray, vectors: np.ndarray) -> None:
        ids = self._coerce_ids(ids)
        vectors = self._coerce_vectors(vectors)
        if vectors.shape[0] != ids.size:
            raise ValueError(
                f"ids/vectors length mismatch: {ids.size} vs {vectors.shape[0]}"
            )
        with maybe_span("index.update"):
            targets = (
                self._assign(vectors)
                if self.trained
                else np.zeros(ids.size, dtype=np.int64)
            )
            current = self._id_part[ids]
            stay_rows = np.flatnonzero(targets == current)
            # In-place overwrite for rows that keep their partition,
            # grouped so each partition gets one fancy-indexed write.
            for part in np.unique(current[stay_rows]):
                rows = stay_rows[current[stay_rows] == part]
                self._part_vectors[int(part)][self._id_pos[ids[rows]]] = (
                    vectors[rows]
                )
            # Migrate rows whose nearest centroid changed.
            for row in np.flatnonzero(targets != current):
                self._remove_from_partition(int(ids[row]))
                self._append_to_partition(
                    int(targets[row]), ids[row : row + 1], vectors[row : row + 1]
                )
        registry = get_active_registry()
        if registry is not None:
            registry.counter("index.updates").inc(ids.size)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _gather_all(self) -> Tuple[np.ndarray, np.ndarray]:
        ids = np.concatenate(
            [p[: int(s)] for p, s in zip(self._part_ids, self._part_sizes)]
        ) if self._ntotal else np.empty(0, dtype=np.int64)
        vectors = np.concatenate(
            [p[: int(s)] for p, s in zip(self._part_vectors, self._part_sizes)]
        ) if self._ntotal else np.empty((0, self.dim), dtype=self.dtype)
        return ids, vectors

    def _retrain(self) -> None:
        """Retrain the quantizer on the live corpus and relayout everything."""
        ids, vectors = self._gather_all()
        self._set_centroids(self._train_quantizer(vectors))
        self._partition_all(vectors, ids)

    def _maybe_train(self) -> None:
        # First crossing of the training floor: single-partition exact
        # mode graduates to a real inverted file (not a "repartition").
        if not self.trained and self._ntotal >= max(self.train_floor, self.nlist):
            with maybe_span("index.build"):
                self._retrain()

    def imbalance(self) -> float:
        """``max(partition size) / mean(partition size)`` (0 when empty)."""
        if not self._ntotal:
            return 0.0
        mean = self._ntotal / self._part_sizes.size
        return float(self._part_sizes.max() / mean)

    def _maybe_repartition(self) -> None:
        if (
            self.imbalance_factor is None
            or not self.trained
            or self._ntotal < max(self.train_floor, self.nlist)
        ):
            return
        # Cooldown: if the last repartition could not flatten an
        # intrinsically skewed distribution, don't thrash — wait for the
        # corpus to grow ~10% before retrying.
        if self._ntotal < int(self._repartitioned_at * 1.1):
            return
        if self.imbalance() > self.imbalance_factor:
            self.repartition()

    def repartition(self) -> None:
        """Retrain the quantizer and reassign every stored vector.

        Ids are preserved; only the physical partitioning changes.  This
        is the maintenance pass the index schedules for itself when
        inserts have skewed partition occupancy.
        """
        with maybe_span("index.repartition"):
            start = time.perf_counter()
            self._retrain()
            self.repartitions += 1
            self._repartitioned_at = self._ntotal
        registry = get_active_registry()
        if registry is not None:
            registry.counter("index.repartitions").inc()
            registry.histogram("index.repartition_seconds").observe(
                time.perf_counter() - start
            )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def search(
        self, queries: np.ndarray, k: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        queries, single = self._coerce_queries(queries)
        k = self._check_k(k)
        start = time.perf_counter()
        probed_total = 0
        with maybe_span("index.search"):
            ids = np.empty((queries.shape[0], k), dtype=np.int64)
            scores = np.empty((queries.shape[0], k), dtype=self.dtype)
            if not self.trained:
                live = self._part_vectors[0][: int(self._part_sizes[0])]
                part_ids = self._part_ids[0][: int(self._part_sizes[0])]
                affinity = queries @ live.T
                for row in range(queries.shape[0]):
                    top = _top_k_desc(affinity[row], k)
                    ids[row] = part_ids[top]
                    scores[row] = affinity[row, top]
                probed_total = queries.shape[0]
            else:
                nonempty = np.flatnonzero(self._part_sizes > 0)
                centroid_affinity = queries @ self._centroids[nonempty].T
                for row in range(queries.shape[0]):
                    probed = self._search_one(
                        queries[row], k, nonempty, centroid_affinity[row],
                        ids[row], scores[row],
                    )
                    probed_total += probed
        registry = get_active_registry()
        if registry is not None:
            registry.counter("index.searches").inc(queries.shape[0])
            registry.counter("index.probe_partitions").inc(probed_total)
            registry.histogram("index.search_seconds").observe(
                time.perf_counter() - start
            )
        if single:
            return ids[0], scores[0]
        return ids, scores

    def _search_one(
        self,
        query: np.ndarray,
        k: int,
        nonempty: np.ndarray,
        centroid_affinity: np.ndarray,
        out_ids: np.ndarray,
        out_scores: np.ndarray,
    ) -> int:
        """Probe partitions for one query; returns how many were probed.

        Probes the ``nprobe`` partitions with the largest centroid inner
        product, then widens until at least ``k`` candidates exist (so a
        valid ``k`` always yields ``k`` results).
        """
        order = np.argsort(centroid_affinity)[::-1]
        probe = min(self.nprobe, order.size)
        while True:
            chosen = nonempty[order[:probe]]
            if self._part_sizes[chosen].sum() >= k or probe >= order.size:
                break
            probe = min(probe * 2, order.size)
        candidate_scores = []
        candidate_ids = []
        for part in chosen:
            size = int(self._part_sizes[part])
            candidate_scores.append(self._part_vectors[part][:size] @ query)
            candidate_ids.append(self._part_ids[part][:size])
        flat_scores = np.concatenate(candidate_scores)
        flat_ids = np.concatenate(candidate_ids)
        top = _top_k_desc(flat_scores, k)
        out_ids[:] = flat_ids[top]
        out_scores[:] = flat_scores[top]
        return int(probe)
