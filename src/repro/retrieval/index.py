"""Maximum-inner-product search (MIPS) indexes.

The serving engine's two hot queries — catalogue-wide ``top_k`` and
per-user ``recommend_for_user`` — both reduce to a maximum-inner-product
search: the :class:`~repro.core.heads.WeightedDotHead` logit is
``item_vector · (weight ⊙ user_vector) + bias`` and the sigmoid is
monotone, so the top-k by popularity *is* the top-k by inner product
against one transformed query vector.  This module provides the common
:class:`MIPSIndex` interface plus the exactness oracle,
:class:`BruteForceIndex`; the approximate partitioned index lives in
:mod:`repro.retrieval.ivf`.

Identifiers are assigned densely in insertion order (``0..ntotal-1``),
which makes them interchangeable with the engine's catalogue slots: the
catalogue only ever appends, and so does the index.

All embedding storage honours :func:`repro.nn.tensor.get_default_dtype`
— an index built in float32 mode keeps float32 matrices end to end (see
``docs/performance.md`` for why silent float64 promotion matters).
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

import numpy as np

from repro.nn.tensor import get_default_dtype
from repro.obs.metrics import get_active_registry
from repro.obs.tracing import maybe_span

__all__ = ["MIPSIndex", "BruteForceIndex", "recall_at_k"]

# Freshly allocated index storage starts at this capacity and doubles.
_MIN_CAPACITY = 64


class MIPSIndex:
    """Interface shared by every maximum-inner-product index.

    Concrete indexes store item embeddings and answer *top-k by inner
    product* queries.  The contract:

    * ``add(vectors)`` appends rows and returns their assigned ids —
      consecutive integers continuing from ``ntotal`` (catalogue slots);
    * ``update(ids, vectors)`` overwrites existing rows in place, so a
      dirty-slot refresh never needs a rebuild;
    * ``rebuild(vectors)`` replaces the whole index contents (ids reset
      to ``0..n-1``);
    * ``search(queries, k)`` returns ``(ids, scores)`` sorted by
      descending inner product.  A single ``(dim,)`` query yields
      ``(k,)`` arrays; a ``(q, dim)`` batch yields ``(q, k)`` arrays.
    """

    def __init__(self, dim: int, dtype=None) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self.dim = int(dim)
        self.dtype = np.dtype(dtype) if dtype is not None else get_default_dtype()

    # -- size ----------------------------------------------------------
    @property
    def ntotal(self) -> int:
        raise NotImplementedError

    def __len__(self) -> int:
        return self.ntotal

    # -- mutation ------------------------------------------------------
    def add(self, vectors: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def update(self, ids: np.ndarray, vectors: np.ndarray) -> None:
        raise NotImplementedError

    def rebuild(self, vectors: np.ndarray) -> None:
        raise NotImplementedError

    # -- queries -------------------------------------------------------
    def search(
        self, queries: np.ndarray, k: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    # -- shared validation helpers --------------------------------------
    def _coerce_vectors(self, vectors: np.ndarray) -> np.ndarray:
        """Validate shape and cast to the index dtype, contiguous."""
        vectors = np.ascontiguousarray(vectors, dtype=self.dtype)
        if vectors.ndim != 2 or vectors.shape[1] != self.dim:
            raise ValueError(
                f"vectors must be (n, {self.dim}), got {vectors.shape}"
            )
        return vectors

    def _coerce_queries(self, queries: np.ndarray) -> Tuple[np.ndarray, bool]:
        """Normalise queries to 2-D; flag whether the input was a single row."""
        queries = np.asarray(queries, dtype=self.dtype)
        single = queries.ndim == 1
        if single:
            queries = queries[None, :]
        if queries.ndim != 2 or queries.shape[1] != self.dim:
            raise ValueError(
                f"queries must be ({self.dim},) or (q, {self.dim}), "
                f"got {np.asarray(queries).shape}"
            )
        return queries, single

    def _check_k(self, k: int) -> int:
        if not 1 <= k <= self.ntotal:
            raise ValueError(f"k must be in [1, {self.ntotal}], got {k}")
        return int(k)

    def _coerce_ids(self, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.int64).reshape(-1)
        if ids.size and (ids.min() < 0 or ids.max() >= self.ntotal):
            raise IndexError(
                f"ids must be in [0, {self.ntotal}), got range "
                f"[{ids.min()}, {ids.max()}]"
            )
        return ids


def _grown_capacity(current: int, needed: int) -> int:
    capacity = max(current, _MIN_CAPACITY)
    while capacity < needed:
        capacity *= 2
    return capacity


def _top_k_desc(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest entries of a 1-D array, best first."""
    if k >= scores.size:
        return np.argsort(scores)[::-1]
    top = np.argpartition(scores, -k)[-k:]
    return top[np.argsort(scores[top])[::-1]]


class BruteForceIndex(MIPSIndex):
    """Exact MIPS over one contiguous embedding matrix.

    The baseline every approximate index is measured against: a dense
    ``queries @ matrix.T`` followed by ``np.argpartition`` top-k.  The
    matrix grows by doubling so repeated :meth:`add` calls stay amortised
    O(1) per row, and rows are updated in place by id.
    """

    def __init__(self, dim: int, dtype=None) -> None:
        super().__init__(dim, dtype)
        self._matrix = np.empty((0, self.dim), dtype=self.dtype)
        self._size = 0

    @property
    def ntotal(self) -> int:
        return self._size

    @property
    def vectors(self) -> np.ndarray:
        """Read-only view of the live rows (no copy)."""
        view = self._matrix[: self._size]
        view.flags.writeable = False
        return view

    def _reserve(self, extra: int) -> None:
        needed = self._size + extra
        if needed <= self._matrix.shape[0]:
            return
        grown = np.empty(
            (_grown_capacity(self._matrix.shape[0], needed), self.dim),
            dtype=self.dtype,
        )
        grown[: self._size] = self._matrix[: self._size]
        self._matrix = grown

    def add(self, vectors: np.ndarray) -> np.ndarray:
        vectors = self._coerce_vectors(vectors)
        with maybe_span("index.insert"):
            self._reserve(vectors.shape[0])
            start = self._size
            self._matrix[start : start + vectors.shape[0]] = vectors
            self._size += vectors.shape[0]
        registry = get_active_registry()
        if registry is not None:
            registry.counter("index.inserts").inc(vectors.shape[0])
        return np.arange(start, self._size, dtype=np.int64)

    def update(self, ids: np.ndarray, vectors: np.ndarray) -> None:
        ids = self._coerce_ids(ids)
        vectors = self._coerce_vectors(vectors)
        if vectors.shape[0] != ids.size:
            raise ValueError(
                f"ids/vectors length mismatch: {ids.size} vs {vectors.shape[0]}"
            )
        self._matrix[ids] = vectors

    def rebuild(self, vectors: np.ndarray) -> None:
        vectors = self._coerce_vectors(vectors)
        self._matrix = vectors.copy()
        self._size = vectors.shape[0]

    def search(
        self, queries: np.ndarray, k: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        queries, single = self._coerce_queries(queries)
        k = self._check_k(k)
        start = time.perf_counter()
        with maybe_span("index.search"):
            live = self._matrix[: self._size]
            scores = queries @ live.T
            ids = np.empty((queries.shape[0], k), dtype=np.int64)
            out = np.empty((queries.shape[0], k), dtype=scores.dtype)
            for row in range(queries.shape[0]):
                top = _top_k_desc(scores[row], k)
                ids[row] = top
                out[row] = scores[row, top]
        registry = get_active_registry()
        if registry is not None:
            registry.counter("index.searches").inc(queries.shape[0])
            registry.histogram("index.search_seconds").observe(
                time.perf_counter() - start
            )
        if single:
            return ids[0], out[0]
        return ids, out


def recall_at_k(reference_ids: np.ndarray, candidate_ids: np.ndarray) -> float:
    """Fraction of reference ids recovered by the candidate lists.

    Both arguments are ``(q, k)`` id matrices (or ``(k,)`` for a single
    query): the exact oracle's top-k and an approximate index's top-k.
    This is the recall@k an IVF sweep reports against the brute-force
    baseline.
    """
    reference_ids = np.atleast_2d(np.asarray(reference_ids))
    candidate_ids = np.atleast_2d(np.asarray(candidate_ids))
    if reference_ids.shape != candidate_ids.shape:
        raise ValueError(
            f"shape mismatch: {reference_ids.shape} vs {candidate_ids.shape}"
        )
    hits = 0
    for row in range(reference_ids.shape[0]):
        hits += np.isin(
            reference_ids[row], candidate_ids[row], assume_unique=True
        ).sum()
    return float(hits / reference_ids.size)
