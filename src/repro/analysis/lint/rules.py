"""The engine-aware lint rules (codes ``ATN001``–``ATN005``).

Each rule encodes one invariant of this repo's autograd engine — they are
not generic style checks.  ``ATN000`` (suppression without a reason) is
emitted by the engine itself in :mod:`repro.analysis.lint.engine`.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

import numpy as np

from repro.analysis.lint.engine import Finding, LintRule
from repro.nn.sparse import SparseGrad

__all__ = [
    "TensorDataMutationRule",
    "Float64LiteralRule",
    "DenseScatterAddRule",
    "SparseGradDuckTypingRule",
    "GlobalRngRule",
    "BackwardAllocationRule",
    "default_rules",
]


def _matches_path(relpath: str, fragments: Tuple[str, ...]) -> bool:
    return any(fragment in relpath for fragment in fragments)


def _is_np_attr(node: ast.AST, *chain: str) -> bool:
    """Whether ``node`` is ``np.<chain>`` / ``numpy.<chain>``."""
    for attr in reversed(chain):
        if not isinstance(node, ast.Attribute) or node.attr != attr:
            return False
        node = node.value
    return isinstance(node, ast.Name) and node.id in ("np", "numpy")


class TensorDataMutationRule(LintRule):
    """ATN001: no raw writes to ``tensor.data`` outside the engine.

    Raw ``x.data[...] = ...`` / ``x.data += ...`` bypasses the version
    counter the runtime sanitizer relies on, so a buffer saved for
    backward can go stale invisibly.  Model and experiment code must use
    ``Tensor.assign_`` (or optimizer steps), which bump the version.
    The engine modules that *implement* those sanctioned channels are
    exempt.
    """

    code = "ATN001"
    name = "tensor-data-mutation"
    description = "raw mutation of Tensor.data outside whitelisted engine modules"

    _EXEMPT = (
        "repro/nn/tensor.py",
        "repro/nn/module.py",
        "repro/nn/optim/",
        "repro/nn/gradcheck.py",
    )

    def applies_to(self, relpath: str) -> bool:
        return not _matches_path(relpath, self._EXEMPT)

    @staticmethod
    def _is_data_target(node: ast.AST) -> bool:
        if isinstance(node, ast.Attribute) and node.attr == "data":
            return True
        if isinstance(node, ast.Subscript):
            value = node.value
            return isinstance(value, ast.Attribute) and value.attr == "data"
        return False

    def run(self, tree: ast.AST, relpath: str) -> Iterator[Finding]:
        message = (
            "raw mutation of a .data buffer bypasses the engine's version "
            "tracking; use Tensor.assign_(...) or an optimizer step"
        )
        for node in ast.walk(tree):
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            for target in targets:
                if self._is_data_target(target):
                    yield Finding(self.code, node.lineno, node.col_offset, message)


class Float64LiteralRule(LintRule):
    """ATN002: no ``np.float64`` literals in dtype-configurable paths.

    The engine has a configurable default dtype
    (:func:`repro.nn.tensor.set_default_dtype`); a hard-coded
    ``np.float64`` silently promotes every downstream op in float32 mode
    and doubles its memory traffic.  Scoped to the engine/model layers;
    ``tensor.py`` itself (which defines the default) is exempt.
    """

    code = "ATN002"
    name = "float64-literal"
    description = "np.float64 literal in a dtype-configurable code path"

    _SCOPE = (
        "repro/nn/",
        "repro/core/",
        "repro/baselines/",
        "repro/retrieval/",
        "benchmarks/",
    )
    _EXEMPT = ("repro/nn/tensor.py",)

    def applies_to(self, relpath: str) -> bool:
        return _matches_path(relpath, self._SCOPE) and not _matches_path(
            relpath, self._EXEMPT
        )

    def run(self, tree: ast.AST, relpath: str) -> Iterator[Finding]:
        message = (
            "hard-coded np.float64 defeats the engine's configurable dtype; "
            "use repro.nn.tensor.get_default_dtype()"
        )
        for node in ast.walk(tree):
            if _is_np_attr(node, "float64"):
                yield Finding(self.code, node.lineno, node.col_offset, message)


class DenseScatterAddRule(LintRule):
    """ATN003: no ``np.add.at`` scatter-adds outside the engine.

    ``np.add.at`` is an order of magnitude slower than the engine's
    sort/segment-sum kernel and materialises dense embedding-table
    gradients; the one sanctioned use is the legacy dense fallback inside
    ``tensor.py``.  Everything else should route through
    :class:`repro.nn.sparse.SparseGrad`.
    """

    code = "ATN003"
    name = "dense-scatter-add"
    description = "np.add.at scatter-add outside the engine's dense fallback"

    _EXEMPT = ("repro/nn/tensor.py",)

    def applies_to(self, relpath: str) -> bool:
        return not _matches_path(relpath, self._EXEMPT)

    def run(self, tree: ast.AST, relpath: str) -> Iterator[Finding]:
        message = (
            "np.add.at materialises dense scatter updates; use the "
            "SparseGrad segment-sum path (SparseGrad.from_rows / add_into)"
        )
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and _is_np_attr(node.func, "add", "at"):
                yield Finding(self.code, node.lineno, node.col_offset, message)


def _grad_attr_partition() -> Tuple[frozenset, frozenset]:
    """Public attrs on exactly one of ``np.ndarray`` / ``SparseGrad``.

    Computed from the live classes, so the rule tracks the engine: adding
    a method to ``SparseGrad`` automatically unflags it.
    """
    ndarray_attrs = {a for a in dir(np.ndarray) if not a.startswith("_")}
    sparse_attrs = {a for a in dir(SparseGrad) if not a.startswith("_")}
    return (
        frozenset(ndarray_attrs - sparse_attrs),
        frozenset(sparse_attrs - ndarray_attrs),
    )


class SparseGradDuckTypingRule(LintRule):
    """ATN004: ``.grad`` consumers must stick to the shared ndarray/SparseGrad API.

    A parameter's ``.grad`` is an ``np.ndarray`` *or* a
    :class:`~repro.nn.sparse.SparseGrad` depending on the layer and the
    sparse-grads switch.  Accessing an attribute that exists on only one
    of the two (``.astype`` is dense-only, ``.nnz_rows`` sparse-only) is a
    latent crash on the other path; the engine internals that branch on
    ``isinstance`` first are exempt.
    """

    code = "ATN004"
    name = "sparse-grad-duck-typing"
    description = "attribute on .grad that only one gradient representation has"

    _EXEMPT = ("repro/nn/",)

    def __init__(self) -> None:
        self._dense_only, self._sparse_only = _grad_attr_partition()

    def applies_to(self, relpath: str) -> bool:
        return not _matches_path(relpath, self._EXEMPT)

    def run(self, tree: ast.AST, relpath: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Attribute)
                and node.value.attr == "grad"
            ):
                continue
            if node.attr in self._dense_only:
                which = "np.ndarray"
            elif node.attr in self._sparse_only:
                which = "SparseGrad"
            else:
                continue
            yield Finding(
                self.code,
                node.lineno,
                node.col_offset,
                f".grad.{node.attr} exists only on {which}; .grad may be a "
                "dense array or a SparseGrad — guard with isinstance or use "
                "the shared API (dtype/ndim/size/sum/__array__)",
            )


class GlobalRngRule(LintRule):
    """ATN005: no sampling through numpy's process-global RNG.

    ``np.random.rand`` / ``np.random.seed`` and friends share one hidden
    RNG across the whole process, so test order and benchmark warm-up
    change results invisibly.  Everything must thread an explicit
    ``np.random.default_rng(seed)`` generator — that is what keeps
    tier-1 and bench-smoke runs reproducible.
    """

    code = "ATN005"
    name = "global-rng"
    description = "call through numpy's process-global RNG instead of default_rng"

    _ALLOWED = ("default_rng", "Generator", "SeedSequence")

    def run(self, tree: ast.AST, relpath: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr not in self._ALLOWED
                and _is_np_attr(func.value, "random")
            ):
                continue
            yield Finding(
                self.code,
                node.lineno,
                node.col_offset,
                f"np.random.{func.attr} uses the shared process-global RNG; "
                "thread a seeded np.random.default_rng(seed) generator "
                "instead",
            )


class BackwardAllocationRule(LintRule):
    """ATN006: no fresh numpy allocations inside backward closures.

    Backward closures run once per parameter per step; a ``np.zeros`` /
    ``np.empty`` / ``np.copy`` (or ``*_like``) there allocates a
    gradient-sized buffer on *every* step, which is exactly the traffic
    the :class:`repro.nn.arena.BufferArena` exists to recycle.  Engine
    backward code must rent scratch via ``arena_empty`` /
    ``arena_zeros`` (they fall back to fresh numpy allocation when no
    arena is active).  Scoped to ``repro/nn/``; suppressions require a
    reason, e.g. the legacy dense embedding fallback whose table-sized
    buffer should never be pooled.
    """

    code = "ATN006"
    name = "backward-allocation"
    description = "fresh numpy allocation inside a backward closure"

    _SCOPE = ("repro/nn/",)
    _FLAGGED = ("zeros", "zeros_like", "empty", "empty_like", "copy")

    def applies_to(self, relpath: str) -> bool:
        return _matches_path(relpath, self._SCOPE)

    def run(self, tree: ast.AST, relpath: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.FunctionDef) and node.name == "backward"
            ):
                continue
            for inner in ast.walk(node):
                if not isinstance(inner, ast.Call):
                    continue
                allocator = next(
                    (
                        name
                        for name in self._FLAGGED
                        if _is_np_attr(inner.func, name)
                    ),
                    None,
                )
                if allocator is None:
                    continue
                yield Finding(
                    self.code,
                    inner.lineno,
                    inner.col_offset,
                    f"np.{allocator} inside a backward closure allocates a "
                    "fresh buffer every step; rent scratch from the buffer "
                    "arena instead (repro.nn.arena.arena_empty/arena_zeros)",
                )


def default_rules() -> List[LintRule]:
    """The rule set ``python -m repro.analysis lint`` runs."""
    return [
        TensorDataMutationRule(),
        Float64LiteralRule(),
        DenseScatterAddRule(),
        SparseGradDuckTypingRule(),
        GlobalRngRule(),
        BackwardAllocationRule(),
    ]
