"""Rule framework for the engine-aware AST lint pass.

Rules are small classes with a stable code (``ATN001`` ...), a path
scope, and a ``run`` method yielding findings over a parsed module.  The
engine walks the requested paths, parses each Python file once, applies
every in-scope rule and reconciles the findings with inline suppression
comments::

    param.grad.copy()  # repro-lint: disable=ATN004 -- dense-only test path

The suppression *must* carry a ``-- reason`` tail; a bare ``disable=``
is itself reported as ``ATN000`` so the lint gate cannot be muted
silently.  Codes are comma-separable (``disable=ATN001,ATN002``) and the
special code ``ALL`` suppresses every rule on that line.

Run programmatically via :func:`run_lint` or from the CLI::

    python -m repro.analysis lint src tests
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import ERROR, Diagnostic

__all__ = ["LintRule", "Finding", "run_lint", "lint_file", "iter_python_files"]

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<codes>[A-Z0-9,\s]+?)"
    r"(?:\s*--\s*(?P<reason>\S.*))?\s*$"
)


@dataclass(frozen=True)
class Finding:
    """A raw rule hit before suppression filtering."""

    code: str
    line: int
    col: int
    message: str


class LintRule:
    """Base class: subclasses set ``code``/``name``/``description``.

    ``applies_to`` scopes the rule by repo-relative posix path; ``run``
    yields :class:`Finding` values for one parsed file.
    """

    code: str = ""
    name: str = ""
    description: str = ""

    def applies_to(self, relpath: str) -> bool:
        return True

    def run(self, tree: ast.AST, relpath: str) -> Iterator[Finding]:
        raise NotImplementedError


@dataclass(frozen=True)
class _Suppression:
    line: int
    codes: Tuple[str, ...]
    reason: Optional[str]

    def covers(self, code: str) -> bool:
        return "ALL" in self.codes or code in self.codes


def _parse_suppressions(source: str) -> Dict[int, _Suppression]:
    """Map line number -> suppression directive found in its comment."""
    suppressions: Dict[int, _Suppression] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            codes = tuple(
                code.strip() for code in match.group("codes").split(",") if code.strip()
            )
            suppressions[token.start[0]] = _Suppression(
                line=token.start[0], codes=codes, reason=match.group("reason")
            )
    except tokenize.TokenError:
        pass  # the ast.parse failure is reported separately
    return suppressions


def lint_file(
    path: Path, rules: Sequence[LintRule], root: Optional[Path] = None
) -> List[Diagnostic]:
    """Lint one file: parse, run in-scope rules, apply suppressions."""
    try:
        relpath = (path.relative_to(root) if root else path).as_posix()
    except ValueError:
        relpath = path.as_posix()
    source = path.read_text(encoding="utf-8")
    diagnostics: List[Diagnostic] = []
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        diagnostics.append(
            Diagnostic.make(
                "parse-error",
                ERROR,
                f"file does not parse: {error.msg}",
                location=f"{relpath}:{error.lineno or 0}:{error.offset or 0}",
            )
        )
        return diagnostics

    suppressions = _parse_suppressions(source)
    for suppression in suppressions.values():
        if not suppression.reason:
            diagnostics.append(
                Diagnostic.make(
                    "ATN000",
                    ERROR,
                    "suppression without a reason; write "
                    "'# repro-lint: disable=CODE -- why it is safe here'",
                    location=f"{relpath}:{suppression.line}:0",
                )
            )

    for rule in rules:
        if not rule.applies_to(relpath):
            continue
        for finding in rule.run(tree, relpath):
            suppression = suppressions.get(finding.line)
            if suppression is not None and suppression.covers(finding.code):
                continue
            diagnostics.append(
                Diagnostic.make(
                    finding.code,
                    ERROR,
                    finding.message,
                    location=f"{relpath}:{finding.line}:{finding.col}",
                    rule=rule.name,
                )
            )
    return diagnostics


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` (files pass through), sorted."""
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        yield from sorted(
            p
            for p in path.rglob("*.py")
            if not any(part.startswith(".") for part in p.parts)
        )


def run_lint(
    paths: Sequence[str],
    rules: Optional[Sequence[LintRule]] = None,
    root: Optional[Path] = None,
) -> List[Diagnostic]:
    """Lint every Python file under ``paths`` with ``rules``.

    ``root`` (default: the current directory) anchors the repo-relative
    paths rules scope on; pass the repo root when invoking from
    elsewhere.
    """
    if rules is None:
        from repro.analysis.lint.rules import default_rules

        rules = default_rules()
    root = root if root is not None else Path.cwd()
    diagnostics: List[Diagnostic] = []
    for path in iter_python_files(Path(p) for p in paths):
        resolved = path if path.is_absolute() else root / path
        diagnostics.extend(lint_file(resolved, rules, root=root))
    return diagnostics
