"""Engine-aware AST lint: rule framework plus the ATN rule set."""

from repro.analysis.lint.engine import (
    Finding,
    LintRule,
    iter_python_files,
    lint_file,
    run_lint,
)
from repro.analysis.lint.rules import (
    DenseScatterAddRule,
    Float64LiteralRule,
    SparseGradDuckTypingRule,
    TensorDataMutationRule,
    default_rules,
)

__all__ = [
    "Finding",
    "LintRule",
    "iter_python_files",
    "lint_file",
    "run_lint",
    "DenseScatterAddRule",
    "Float64LiteralRule",
    "SparseGradDuckTypingRule",
    "TensorDataMutationRule",
    "default_rules",
]
