"""Shared diagnostic record for the static-analysis subsystem.

Every pass in :mod:`repro.analysis` — the graph checker, the runtime
sanitizer and the AST lint — reports problems as :class:`Diagnostic`
values, so CLI drivers and tests can rank, filter and render findings
from any pass with one code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

__all__ = ["Diagnostic", "ERROR", "WARNING", "has_errors", "render_diagnostics"]

ERROR = "error"
WARNING = "warning"

_SEVERITY_RANK = {ERROR: 0, WARNING: 1}


@dataclass(frozen=True)
class Diagnostic:
    """One finding from an analysis pass.

    Attributes
    ----------
    code:
        Stable machine-readable identifier (``ATN001`` for lint rules,
        ``shape-error`` / ``dtype-promotion`` / ... for the graph checker,
        ``stale-saved-buffer`` / ``nonfinite`` for the sanitizer).
    severity:
        ``"error"`` (fails the pass) or ``"warning"``.
    message:
        Human-readable, single-line description.
    location:
        Where the problem was found — ``path:line:col`` for lint,
        a dotted module path (e.g. ``item_encoder.head``) for the graph
        checker, an op label for the sanitizer.
    details:
        Free-form extra context (shapes, dtypes, versions, ...).
    """

    code: str
    severity: str
    message: str
    location: str = ""
    details: Tuple[Tuple[str, str], ...] = field(default=())

    @staticmethod
    def make(
        code: str,
        severity: str,
        message: str,
        location: str = "",
        **details: object,
    ) -> "Diagnostic":
        """Build a diagnostic, normalising ``details`` to sorted pairs."""
        if severity not in _SEVERITY_RANK:
            raise ValueError(f"severity must be error|warning, got {severity!r}")
        pairs = tuple(sorted((key, str(value)) for key, value in details.items()))
        return Diagnostic(code, severity, message, location, pairs)

    @property
    def is_error(self) -> bool:
        return self.severity == ERROR

    def sort_key(self):
        return (_SEVERITY_RANK.get(self.severity, 9), self.location, self.code)

    def format(self) -> str:
        """One-line rendering: ``location: severity CODE message [k=v ...]``."""
        prefix = f"{self.location}: " if self.location else ""
        suffix = ""
        if self.details:
            suffix = " [" + " ".join(f"{k}={v}" for k, v in self.details) + "]"
        return f"{prefix}{self.severity} {self.code} {self.message}{suffix}"

    def detail(self, key: str) -> str:
        """Look up one ``details`` value (empty string when absent)."""
        return dict(self.details).get(key, "")

    def to_json(self) -> Dict[str, object]:
        """JSON-serialisable dict; inverse of :meth:`from_json`."""
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "location": self.location,
            "details": {key: value for key, value in self.details},
        }

    @staticmethod
    def from_json(payload: Dict[str, object]) -> "Diagnostic":
        """Rebuild a diagnostic from :meth:`to_json` output."""
        details = payload.get("details", {})
        if not isinstance(details, dict):
            raise ValueError(f"details must be an object, got {details!r}")
        return Diagnostic.make(
            str(payload["code"]),
            str(payload["severity"]),
            str(payload["message"]),
            location=str(payload.get("location", "")),
            **details,
        )


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    """Whether any diagnostic is error-severity."""
    return any(d.is_error for d in diagnostics)


def render_diagnostics(diagnostics: Iterable[Diagnostic]) -> str:
    """Sorted, one-per-line rendering used by the CLI drivers."""
    ordered: List[Diagnostic] = sorted(diagnostics, key=Diagnostic.sort_key)
    return "\n".join(d.format() for d in ordered)
