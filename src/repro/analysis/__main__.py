"""CLI driver: ``python -m repro.analysis {lint,effects,check-model,sanitize-smoke}``.

Sub-commands
------------
``lint [paths...]``
    Run the engine-aware AST rules (``ATN001``–``ATN005``) over the
    given paths (default ``src tests benchmarks``).  Exit 1 on any
    finding.
``effects``
    Run the interprocedural effect & aliasing analyzer
    (``EFF001``–``EFF008``) over ``src/repro``, apply the
    reason-mandatory baseline, and check the generated reports for
    drift.  ``--write-reports`` regenerates
    ``docs/thread_hostility.md`` and ``docs/metrics_manifest.md``.
``check-model [names...]``
    Run the static graph checker over registry models (default: all)
    against a structurally complete demo schema, optionally under both
    float dtypes.  Exit 1 if any model fails.
``sanitize-smoke``
    Train a small ATNN for a few steps with the runtime sanitizer fully
    armed (version checks, content fingerprints, NaN/Inf taint).  Exit 1
    on any sanitizer finding or non-finite loss — the CI proof that the
    engine's buffer discipline holds on the real training path.

``lint`` and ``effects`` take ``--format {text,json,github}``;
``github`` emits workflow-command annotations so CI failures render
inline on the diff.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

import numpy as np

__all__ = ["main"]


def _split_location(location: str):
    """``path:line:col`` / ``path:line`` / ``path`` -> (path, line, col)."""
    parts = location.split(":")
    path, line, col = parts[0], 0, 0
    if len(parts) > 1 and parts[1].isdigit():
        line = int(parts[1])
    if len(parts) > 2 and parts[2].isdigit():
        col = int(parts[2])
    return path, line, col


def _emit_diagnostics(diagnostics, fmt: str) -> None:
    from repro.analysis.diagnostics import Diagnostic, render_diagnostics

    ordered = sorted(diagnostics, key=Diagnostic.sort_key)
    if fmt == "json":
        print(json.dumps([d.to_json() for d in ordered], indent=2))
    elif fmt == "github":
        for d in ordered:
            path, line, _ = _split_location(d.location)
            anchor = f" file={path},line={max(line, 1)}," if path else " "
            # https://docs.github.com/actions: workflow commands render
            # ::error/::warning lines as inline annotations on the diff.
            print(f"::{d.severity}{anchor}title={d.code}::{d.message}")
    else:
        print(render_diagnostics(ordered))


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.lint import run_lint

    diagnostics = run_lint(args.paths)
    if diagnostics:
        _emit_diagnostics(diagnostics, args.format)
        print(f"lint: {len(diagnostics)} finding(s)", file=sys.stderr)
        return 1
    if args.format == "json":
        # An empty array, not empty output: consumers parse stdout either way.
        _emit_diagnostics([], args.format)
    else:
        print(f"lint: clean ({', '.join(args.paths)})")
    return 0


def _cmd_effects(args: argparse.Namespace) -> int:
    from repro.analysis.effects import run_effects

    result = run_effects(
        Path(args.root),
        baseline_path=Path(args.baseline) if args.baseline else None,
        write_reports=args.write_reports,
    )
    summary = (
        f"effects: {len(result.analysis.modules)} modules, "
        f"{len(result.analysis.functions)} functions, "
        f"{len(result.manifest.names())} instrument names, "
        f"{len(result.suppressed)} baselined finding(s)"
    )
    if result.diagnostics:
        _emit_diagnostics(result.diagnostics, args.format)
        print(
            f"{summary}, {len(result.diagnostics)} unsuppressed finding(s)",
            file=sys.stderr,
        )
        return 1
    if args.format == "json":
        _emit_diagnostics([], args.format)
    else:
        written = " (reports written)" if args.write_reports else ""
        print(f"{summary} — clean{written}")
    return 0


def _cmd_check_model(args: argparse.Namespace) -> int:
    from repro.analysis.checker import check_model, demo_schema
    from repro.core.registry import available_models, build_model
    from repro.core.towers import TowerConfig
    from repro.nn.tensor import default_dtype

    names = args.models or available_models()
    dtypes = {
        "float64": [np.float64],
        "float32": [np.float32],
        "both": [np.float64, np.float32],
    }[args.dtype]
    config = TowerConfig(
        vector_dim=8, deep_dims=(16, 8), head_dims=(16,), num_cross_layers=1
    )
    schema = demo_schema()
    failures = 0
    for dtype in dtypes:
        with default_dtype(dtype):
            for name in names:
                model = build_model(
                    name, schema, config, rng=np.random.default_rng(args.seed)
                )
                report = check_model(
                    model,
                    schema,
                    seed=args.seed,
                    model_name=f"{name}[{np.dtype(dtype).name}]",
                )
                print(report.format(show_table=args.table))
                if not report.ok:
                    failures += 1
    if failures:
        print(f"check-model: {failures} model(s) failed")
        return 1
    return 0


def _cmd_sanitize_smoke(args: argparse.Namespace) -> int:
    from repro.analysis.checker import demo_schema, schema_inputs
    from repro.analysis.sanitizer import GradSanitizer
    from repro.core.atnn import ATNN
    from repro.core.towers import TowerConfig
    from repro.nn.optim import Adam
    from repro.nn.tensor import Tensor, get_default_dtype

    rng = np.random.default_rng(args.seed)
    schema = demo_schema()
    model = ATNN(
        schema,
        TowerConfig(vector_dim=8, deep_dims=(16, 8), head_dims=(16,), num_cross_layers=1),
        rng=rng,
    )
    optimizer = Adam(model.parameters(), lr=1e-2)
    losses: List[float] = []
    sanitizer = GradSanitizer(track_nonfinite=True, check_content=True)
    with sanitizer:
        for step in range(args.steps):
            features = schema_inputs(schema, args.batch_size, rng)
            labels = Tensor(
                (rng.random(args.batch_size) < 0.3).astype(get_default_dtype())
            )
            forward = model.forward if step % 2 == 0 else model.forward_generator
            optimizer.zero_grad()
            loss = ((forward(features) - labels) ** 2).mean()
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
    print(
        f"sanitize-smoke: {args.steps} steps, "
        f"loss {losses[0]:.4f} -> {losses[-1]:.4f}, stats={sanitizer.stats}"
    )
    if sanitizer.diagnostics:
        for diagnostic in sanitizer.diagnostics:
            print("  " + diagnostic.format())
        return 1
    if not all(np.isfinite(losses)):
        print("sanitize-smoke: non-finite loss")
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static and runtime analysis passes for the ATNN repo.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser("lint", help="run the engine-aware AST lint rules")
    lint.add_argument("paths", nargs="*", default=["src", "tests", "benchmarks"])
    lint.add_argument(
        "--format", default="text", choices=["text", "json", "github"]
    )
    lint.set_defaults(func=_cmd_lint)

    effects = sub.add_parser(
        "effects", help="interprocedural effect & aliasing analysis"
    )
    effects.add_argument("--root", default=".", help="repo root (default: cwd)")
    effects.add_argument(
        "--baseline",
        default=None,
        help="baseline file (default: <root>/effects_baseline.json)",
    )
    effects.add_argument(
        "--write-reports",
        action="store_true",
        help="regenerate docs/thread_hostility.md and docs/metrics_manifest.md",
    )
    effects.add_argument(
        "--format", default="text", choices=["text", "json", "github"]
    )
    effects.set_defaults(func=_cmd_effects)

    check = sub.add_parser("check-model", help="static graph checks over models")
    check.add_argument("models", nargs="*", help="registry names (default: all)")
    check.add_argument(
        "--dtype", default="float64", choices=["float64", "float32", "both"]
    )
    check.add_argument("--table", action="store_true", help="print symbolic shapes")
    check.add_argument("--seed", type=int, default=0)
    check.set_defaults(func=_cmd_check_model)

    smoke = sub.add_parser(
        "sanitize-smoke", help="short sanitizer-armed ATNN training run"
    )
    smoke.add_argument("--steps", type=int, default=6)
    smoke.add_argument("--batch-size", type=int, default=32)
    smoke.add_argument("--seed", type=int, default=0)
    smoke.set_defaults(func=_cmd_sanitize_smoke)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream consumer (e.g. ``... | head``) closed the pipe;
        # redirect stdout to devnull so the interpreter shutdown does
        # not print a second traceback, and exit with the shell's
        # SIGPIPE convention.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(141)
