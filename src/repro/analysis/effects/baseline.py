"""Reason-mandatory baseline for the effects pass.

The effects analyzer is a *may* analysis: it over-approximates, and some
findings are deliberate (the ambient scoping stacks exist precisely to
be process-global).  Those accepted findings live in a checked-in JSON
baseline instead of inline suppressions because they are properties of
call *chains*, not single lines.

Baseline semantics are strict in both directions:

* every entry MUST carry a non-empty ``reason`` — an entry without one
  is itself an error (mirrors the lint's ``ATN000`` rule);
* an entry that no longer matches any finding is *stale* and is also an
  error — the baseline may only shrink as findings get fixed, never
  accumulate dead weight.

Entries are keyed ``(code, symbol, detail)`` — the diagnostic's rule
code, the qualname of the function it is attached to, and its channel /
callee detail — so the baseline survives line-number churn.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from repro.analysis.diagnostics import ERROR, Diagnostic

__all__ = ["BaselineEntry", "Baseline", "apply_baseline"]

BASELINE_VERSION = 1

# Key fields a diagnostic must expose (via ``details``) to be
# baseline-addressable.
Key = Tuple[str, str, str]


@dataclass(frozen=True)
class BaselineEntry:
    code: str
    symbol: str
    detail: str
    reason: str = ""

    @property
    def key(self) -> Key:
        return (self.code, self.symbol, self.detail)


@dataclass
class Baseline:
    entries: Dict[Key, BaselineEntry]

    @staticmethod
    def empty() -> "Baseline":
        return Baseline(entries={})

    @staticmethod
    def load(path: Path) -> "Baseline":
        """Parse a baseline file; malformed structure raises ValueError."""
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not valid JSON ({exc})") from exc
        if not isinstance(payload, dict) or "entries" not in payload:
            raise ValueError(f"{path}: expected an object with 'entries'")
        entries: Dict[Key, BaselineEntry] = {}
        for raw in payload["entries"]:
            if not isinstance(raw, dict):
                raise ValueError(f"{path}: entry is not an object: {raw!r}")
            entry = BaselineEntry(
                code=str(raw.get("code", "")),
                symbol=str(raw.get("symbol", "")),
                detail=str(raw.get("detail", "")),
                reason=str(raw.get("reason", "")),
            )
            if not entry.code or not entry.symbol:
                raise ValueError(
                    f"{path}: entry missing code/symbol: {raw!r}"
                )
            if entry.key in entries:
                raise ValueError(
                    f"{path}: duplicate baseline entry {entry.key}"
                )
            entries[entry.key] = entry
        return Baseline(entries=entries)

    def merge(self, other: "Baseline") -> "Baseline":
        """Union of two baselines; conflicting keys keep ``self``'s reason."""
        merged = dict(other.entries)
        merged.update(self.entries)
        return Baseline(entries=merged)

    def to_json(self) -> str:
        ordered = sorted(self.entries.values(), key=lambda e: e.key)
        payload = {
            "version": BASELINE_VERSION,
            "entries": [
                {
                    "code": e.code,
                    "symbol": e.symbol,
                    "detail": e.detail,
                    "reason": e.reason,
                }
                for e in ordered
            ],
        }
        return json.dumps(payload, indent=2) + "\n"

    def save(self, path: Path) -> None:
        path.write_text(self.to_json(), encoding="utf-8")


def _diagnostic_key(diagnostic: Diagnostic) -> Key:
    return (
        diagnostic.code,
        diagnostic.detail("symbol"),
        diagnostic.detail("channel"),
    )


def apply_baseline(
    diagnostics: Iterable[Diagnostic], baseline: Baseline
) -> Tuple[List[Diagnostic], List[Diagnostic]]:
    """Split findings against the baseline.

    Returns ``(kept, suppressed)``.  ``kept`` additionally contains one
    synthetic ``EFF000`` error per reason-less matching entry and per
    stale entry, so a drifting baseline fails CI exactly like a new
    finding would.
    """
    kept: List[Diagnostic] = []
    suppressed: List[Diagnostic] = []
    used: Dict[Key, bool] = {key: False for key in baseline.entries}
    for diagnostic in diagnostics:
        entry = baseline.entries.get(_diagnostic_key(diagnostic))
        if entry is None:
            kept.append(diagnostic)
            continue
        used[entry.key] = True
        if not entry.reason.strip():
            kept.append(
                Diagnostic.make(
                    "EFF000",
                    ERROR,
                    "baseline entry suppresses a finding without a reason",
                    location=diagnostic.location,
                    symbol=entry.symbol,
                    channel=entry.detail,
                    suppressed_code=entry.code,
                )
            )
            continue
        suppressed.append(diagnostic)
    for key, was_used in sorted(used.items()):
        if was_used:
            continue
        code, symbol, detail = key
        kept.append(
            Diagnostic.make(
                "EFF000",
                ERROR,
                "stale baseline entry no longer matches any finding"
                " — delete it",
                symbol=symbol,
                channel=detail,
                suppressed_code=code,
            )
        )
    return kept, suppressed
