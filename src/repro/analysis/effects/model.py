"""Data model for the interprocedural effect & aliasing analyzer.

The analyzer (see :mod:`repro.analysis.effects`) works in three stages:

1. **Harvest** (:mod:`repro.analysis.effects.harvest`) parses every
   module under a source root and extracts *local* facts per function —
   which parameters it writes in place, which module-level globals it
   reads or writes, which ambient ``get_active_*`` channels it touches,
   whether it returns a view of a parameter or attribute, whether it
   uses numpy's process-global RNG, and every call site with its
   argument bindings.
2. **Resolution** (:mod:`repro.analysis.effects.callgraph`) turns the
   symbolic call references into function qualnames using the module
   import tables, ``self.attr`` type inference, parameter / return
   annotations, and the class hierarchy (a call through a base type
   conservatively reaches every override).
3. **Propagation** (:mod:`repro.analysis.effects.propagate`) composes
   the local facts through the resolved call graph to a fixpoint so an
   :class:`EffectSignature` describes the *transitive* behaviour of
   each function.

Everything here is a plain container; the stages own the logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

__all__ = [
    "ArgRef",
    "CallSite",
    "ViewSource",
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "EffectSignature",
    "EffectAnalysis",
]

# How a call argument relates to the caller's own state:
#   ("param", name)  — the caller's parameter, verbatim
#   ("local", name)  — a caller local
#   ("attr", name)   — ``self.<name>``
#   ("other", "")    — anything more complex
ArgRef = Tuple[str, str]

# What a returned value aliases:
#   ("param", name) — (a slice/index of) a parameter
#   ("attr", name)  — (a slice/index of) ``self.<name>``
ViewSource = Tuple[str, str]


@dataclass
class CallSite:
    """One call expression inside a function body.

    ``ref`` is the unresolved callee reference produced by the harvester:

    * ``("name", n)`` — bare-name call ``n(...)``
    * ``("self", m)`` — ``self.m(...)``
    * ``("obj", base, m)`` — ``base.m(...)`` where ``base`` is a local,
      parameter, or module alias
    * ``("self_attr", a, m)`` — ``self.a.m(...)``
    """

    ref: Tuple[str, ...]
    args: Tuple[ArgRef, ...]
    kwargs: Tuple[Tuple[str, ArgRef], ...]
    lineno: int
    # Local name the result is bound to (``x = f(...)``), when simple.
    result_local: Optional[str] = None
    # True when the call appears as a ``with``-statement item, in which
    # case the resolver also adds ``__enter__`` / ``__exit__`` edges.
    is_with_item: bool = False


@dataclass
class FunctionInfo:
    """Local (intraprocedural) facts about one function or method."""

    module: str
    qualname: str
    name: str
    relpath: str
    lineno: int
    class_name: Optional[str] = None
    params: Tuple[str, ...] = ()
    # Parameter name -> annotation text (resolved later against imports).
    param_annotations: Dict[str, str] = field(default_factory=dict)
    return_annotation: Optional[str] = None

    # --- local effects -------------------------------------------------
    # Parameter name -> first line where it is written in place.
    mutated_params: Dict[str, int] = field(default_factory=dict)
    # ``self.<attr>`` names assigned anywhere in the body.
    attr_writes: Set[str] = field(default_factory=set)
    # ``self.<attr>`` -> textual type hint (constructor name, annotation,
    # or ``@return:<method>``), consumed by ClassInfo.attr_types.
    attr_type_hints: Dict[str, str] = field(default_factory=dict)
    # Fully qualified module-global name -> first write line.
    global_writes: Dict[str, int] = field(default_factory=dict)
    # Fully qualified module-global names read (mutable state only; the
    # propagation stage intersects against the repo-wide written set).
    global_reads: Dict[str, int] = field(default_factory=dict)
    # Ambient channel (e.g. "registry") -> first read line.
    ambient_reads: Dict[str, int] = field(default_factory=dict)
    # Ambient channel -> first line writing through the handle/stack.
    ambient_writes: Dict[str, int] = field(default_factory=dict)
    # Lines calling numpy's process-global RNG (np.random.rand, ...).
    rng_global: Dict[str, int] = field(default_factory=dict)
    # Lines with an (unsuppressed) np.float64 literal.
    float64_sites: List[int] = field(default_factory=list)
    # What ``return`` statements may alias.
    returns_views: Set[ViewSource] = field(default_factory=set)
    # Every call expression, in source order.
    call_sites: List[CallSite] = field(default_factory=list)
    # (call_sites index, mutation line) — the bound result of that call
    # was later written in place by this function.
    result_mutations: List[Tuple[int, int]] = field(default_factory=list)
    # Nested closures: (closure name, def line, captured local -> line of
    # a mutation of that local occurring *after* the def).
    closure_mutations: List[Tuple[str, int, str, int]] = field(
        default_factory=list
    )
    # Captured local -> (closure name, call_sites index) for captures
    # passed to a callee after the closure definition (the callee may
    # mutate them — resolved during rule evaluation).
    closure_escapes: List[Tuple[str, str, int]] = field(default_factory=list)

    def location(self) -> str:
        return f"{self.relpath}:{self.lineno}"


@dataclass
class ClassInfo:
    """One class definition: methods, bases, inferred attribute types."""

    module: str
    qualname: str
    name: str
    bases: List[str] = field(default_factory=list)  # unresolved base refs
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    # ``self.<attr>`` -> annotation/constructor text inferred from
    # ``__init__`` and friends (resolved against imports later).
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module: imports, globals, classes, functions."""

    name: str
    relpath: str
    # Local alias -> fully qualified target ("np" -> "numpy",
    # "kmeans" -> "repro.core.clustering.kmeans").
    imports: Dict[str, str] = field(default_factory=dict)
    # Module-level data names (assignments that are not defs/imports).
    data_globals: Set[str] = field(default_factory=set)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class EffectSignature:
    """Transitive effect summary of one function after propagation.

    Every dict maps a channel to the qualname of the function whose
    *local* fact introduced it, so diagnostics can name the origin even
    when the effect arrived through a call chain.
    """

    mutated_params: Set[str] = field(default_factory=set)
    global_writes: Dict[str, str] = field(default_factory=dict)
    global_reads: Dict[str, str] = field(default_factory=dict)
    ambient_reads: Dict[str, str] = field(default_factory=dict)
    ambient_writes: Dict[str, str] = field(default_factory=dict)
    rng_global: Dict[str, str] = field(default_factory=dict)
    float64_taint: Optional[str] = None  # origin qualname or None
    returns_views: Set[ViewSource] = field(default_factory=set)

    def merge_channels(self, other: "EffectSignature", origin: str) -> bool:
        """Fold ``other``'s channel effects in; returns True on change.

        Channel effects (globals, ambient, RNG, dtype taint) compose
        context-insensitively: if a callee touches a channel, so does
        the caller.  ``origin`` tags effects first introduced by the
        callee itself.
        """
        changed = False
        for mine, theirs in (
            (self.global_writes, other.global_writes),
            (self.global_reads, other.global_reads),
            (self.ambient_reads, other.ambient_reads),
            (self.ambient_writes, other.ambient_writes),
            (self.rng_global, other.rng_global),
        ):
            for channel, via in theirs.items():
                if channel not in mine:
                    mine[channel] = via or origin
                    changed = True
        if self.float64_taint is None and other.float64_taint is not None:
            self.float64_taint = other.float64_taint
            changed = True
        return changed


@dataclass
class EffectAnalysis:
    """The fully propagated analysis over one source root."""

    modules: Dict[str, ModuleInfo]
    functions: Dict[str, FunctionInfo]  # qualname -> info
    classes: Dict[str, ClassInfo]  # qualname -> info
    # Resolved call graph: caller qualname -> list of
    # (call_sites index, callee qualname).
    calls: Dict[str, List[Tuple[int, str]]]
    signatures: Dict[str, EffectSignature]
    # Names written by *someone* — the repo-wide mutable-global set.
    mutable_globals: Set[str] = field(default_factory=set)

    def callees(self, qualname: str) -> List[str]:
        return sorted({callee for _, callee in self.calls.get(qualname, [])})

    def reachable(self, roots: List[str]) -> Dict[str, Tuple[str, ...]]:
        """BFS closure from ``roots``: qualname -> example call path."""
        paths: Dict[str, Tuple[str, ...]] = {}
        queue: List[str] = []
        for root in roots:
            if root in self.functions and root not in paths:
                paths[root] = (root,)
                queue.append(root)
        while queue:
            current = queue.pop(0)
            for callee in self.callees(current):
                if callee not in paths and callee in self.functions:
                    paths[callee] = paths[current] + (callee,)
                    queue.append(callee)
        return paths
