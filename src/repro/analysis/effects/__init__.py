"""Interprocedural effect & aliasing analysis (``python -m repro.analysis effects``).

The pipeline (see the stage modules for the details):

1. :mod:`~repro.analysis.effects.harvest` — per-function local facts;
2. :mod:`~repro.analysis.effects.callgraph` — call resolution;
3. :mod:`~repro.analysis.effects.propagate` — fixpoint signatures;
4. :mod:`~repro.analysis.effects.rules` — ``EFF001``–``EFF005`` packs;
5. :mod:`~repro.analysis.effects.manifest` — instrument-name inventory
   (``EFF006``/``EFF007``);
6. :mod:`~repro.analysis.effects.baseline` — reason-mandatory accepted
   findings (``EFF000`` on drift);
7. :mod:`~repro.analysis.effects.report` — the thread-hostility report.

:func:`run_effects` is the single entry point the CLI, CI gate and
tests share.  It returns an :class:`EffectsResult` whose
``diagnostics`` are the *unsuppressed* findings (plus baseline/report
drift), i.e. non-empty means the gate fails.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.diagnostics import ERROR, Diagnostic
from repro.analysis.effects.baseline import Baseline, apply_baseline
from repro.analysis.effects.manifest import (
    NameManifest,
    build_manifest,
    manifest_diagnostics,
    render_manifest,
)
from repro.analysis.effects.model import EffectAnalysis
from repro.analysis.effects.propagate import analyze
from repro.analysis.effects.report import render_thread_hostility
from repro.analysis.effects.rules import run_rules

__all__ = [
    "EffectsResult",
    "run_effects",
    "analyze",
    "Baseline",
    "apply_baseline",
    "DEFAULT_BASELINE",
    "REPORT_PATHS",
]

# Repo-relative defaults shared by the CLI, CI and tests.
DEFAULT_BASELINE = "effects_baseline.json"
HOSTILITY_REPORT = "docs/thread_hostility.md"
MANIFEST_REPORT = "docs/metrics_manifest.md"
REPORT_PATHS = (HOSTILITY_REPORT, MANIFEST_REPORT)
OBSERVABILITY_DOC = "docs/observability.md"


@dataclass
class EffectsResult:
    analysis: EffectAnalysis
    manifest: NameManifest
    diagnostics: List[Diagnostic]  # unsuppressed — non-empty fails the gate
    suppressed: List[Diagnostic]  # accepted via the baseline
    # Report relpath -> regenerated content (written by --write-reports).
    reports: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.diagnostics


def _report_drift(
    repo_root: Path, reports: Dict[str, str]
) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for relpath, content in reports.items():
        path = repo_root / relpath
        committed = path.read_text(encoding="utf-8") if path.exists() else None
        if committed == content:
            continue
        problem = "missing" if committed is None else "stale"
        out.append(
            Diagnostic.make(
                "EFF008",
                ERROR,
                f"committed report is {problem}; regenerate with "
                "'python -m repro.analysis effects --write-reports'",
                location=relpath,
                symbol=relpath,
                channel="report-drift",
            )
        )
    return out


def run_effects(
    repo_root: Path,
    baseline_path: Optional[Path] = None,
    write_reports: bool = False,
) -> EffectsResult:
    """Run the full effects pass rooted at ``repo_root``.

    ``write_reports`` regenerates the committed reports in place;
    otherwise drift between the committed copies and the analyzer's
    output is itself a finding (``EFF008``) so CI keeps them honest.
    """
    repo_root = repo_root.resolve()
    analysis = analyze(repo_root / "src", "repro")
    manifest = build_manifest([repo_root / "src" / "repro"], repo_root)

    # Rule locations are src-root-relative (that is what the harvester
    # sees); rebase to repo-relative so editors and CI annotations agree
    # with the lint's paths.
    findings = [
        replace(d, location=f"src/{d.location}")
        if d.location.startswith("repro/")
        else d
        for d in run_rules(analysis)
    ]
    findings.extend(
        manifest_diagnostics(
            manifest, repo_root / OBSERVABILITY_DOC, OBSERVABILITY_DOC
        )
    )

    if baseline_path is None:
        baseline_path = repo_root / DEFAULT_BASELINE
    baseline = (
        Baseline.load(baseline_path)
        if baseline_path.exists()
        else Baseline.empty()
    )
    kept, suppressed = apply_baseline(findings, baseline)

    reports = {
        HOSTILITY_REPORT: render_thread_hostility(analysis),
        MANIFEST_REPORT: render_manifest(manifest),
    }
    if write_reports:
        for relpath, content in reports.items():
            target = repo_root / relpath
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(content, encoding="utf-8")
    else:
        kept.extend(_report_drift(repo_root, reports))

    kept.sort(key=Diagnostic.sort_key)
    return EffectsResult(
        analysis=analysis,
        manifest=manifest,
        diagnostics=kept,
        suppressed=suppressed,
        reports=reports,
    )
