"""Rule packs over propagated effect signatures (codes ``EFF001``–``EFF005``).

Each rule is an invariant the repo's runtime layers depend on but cannot
check themselves:

``EFF001`` view-escape
    A caller mutates the result of a call whose callee returns a view of
    its own parameter or attribute — the write lands in the owner's
    buffer (the feature-store / retrieval aliasing class of bug).
``EFF002`` saved-buffer mutation
    A local captured by a ``backward`` closure is written — directly or
    by a parameter-mutating callee — after the closure is defined.  This
    is the static complement to the runtime GradSanitizer.
``EFF003`` thread-hostility
    A module-global or ambient write is reachable from a
    ``RealTimeEngine`` serving entry point.  Every finding is a blocker
    (or an explicitly accepted hazard) for the sharded serving harness;
    the full set renders as ``docs/thread_hostility.md``.
``EFF004`` ambient-discipline
    The ``_ACTIVE_*`` scope stacks may only be written by their module's
    own scoping constructs (``use_*`` / ``set_active_*`` /
    ``__enter__``/``__exit__``) and only read from other modules through
    the ``get_active_*`` accessors.
``EFF005`` interprocedural dtype promotion
    A function in ATN002's dtype-configurable scope calls an
    out-of-scope helper whose signature carries float64 taint — the
    promotion ATN002 cannot see because the literal lives in the helper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.diagnostics import ERROR, Diagnostic
from repro.analysis.effects.model import EffectAnalysis, FunctionInfo

__all__ = [
    "ENGINE_CLASS",
    "HostileChannel",
    "engine_entry_points",
    "thread_hostility_channels",
    "run_rules",
]

ENGINE_CLASS = "repro.serving.engine.RealTimeEngine"

# ATN002's scope and exemption, reused so the interprocedural extension
# agrees with the per-file rule about where dtype discipline applies.
_DTYPE_SCOPE = (
    "repro/nn/",
    "repro/core/",
    "repro/baselines/",
    "repro/retrieval/",
)
_DTYPE_EXEMPT = ("repro/nn/tensor.py",)


def _in_dtype_scope(relpath: str) -> bool:
    return any(f in relpath for f in _DTYPE_SCOPE) and not any(
        f in relpath for f in _DTYPE_EXEMPT
    )


def _is_backward_closure(name: str) -> bool:
    return "backward" in name


# ----------------------------------------------------------------------
# EFF001 — view-escape
# ----------------------------------------------------------------------
def _view_escape(analysis: EffectAnalysis) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for qualname, info in analysis.functions.items():
        edges = analysis.calls.get(qualname, [])
        by_site: Dict[int, List[str]] = {}
        for site_index, callee in edges:
            by_site.setdefault(site_index, []).append(callee)
        for site_index, line in info.result_mutations:
            for callee in by_site.get(site_index, ()):
                views = analysis.signatures[callee].returns_views
                if not views:
                    continue
                sources = ", ".join(
                    f"{kind} '{name}'" for kind, name in sorted(views)
                )
                out.append(
                    Diagnostic.make(
                        "EFF001",
                        ERROR,
                        f"mutating the result of {callee}() writes through "
                        f"a view of its {sources}; copy before writing "
                        "(or have the callee return a copy)",
                        location=f"{info.relpath}:{line}",
                        symbol=qualname,
                        channel=callee,
                    )
                )
    return out


# ----------------------------------------------------------------------
# EFF002 — saved-buffer mutation
# ----------------------------------------------------------------------
def _saved_buffer(analysis: EffectAnalysis) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for qualname, info in analysis.functions.items():
        for closure, def_line, var, line in info.closure_mutations:
            if not _is_backward_closure(closure):
                continue
            out.append(
                Diagnostic.make(
                    "EFF002",
                    ERROR,
                    f"'{var}' is captured by the backward closure "
                    f"'{closure}' (defined at line {def_line}) and mutated "
                    "afterwards; the gradient will read the clobbered "
                    "buffer — save a copy for backward instead",
                    location=f"{info.relpath}:{line}",
                    symbol=qualname,
                    channel=f"{closure}:{var}",
                )
            )
        edges: Dict[int, List[str]] = {}
        for site_index, callee in analysis.calls.get(qualname, []):
            edges.setdefault(site_index, []).append(callee)
        seen: Set[Tuple[str, str, str]] = set()
        for var, closure, site_index in info.closure_escapes:
            if not _is_backward_closure(closure):
                continue
            site = info.call_sites[site_index]
            for callee in edges.get(site_index, ()):
                mutated = analysis.signatures[callee].mutated_params
                if not mutated:
                    continue
                callee_info = analysis.functions[callee]
                hit = _binds_mutated_param(site, var, callee_info, mutated)
                if hit is None:
                    continue
                key = (var, closure, callee)
                if key in seen:
                    continue
                seen.add(key)
                out.append(
                    Diagnostic.make(
                        "EFF002",
                        ERROR,
                        f"'{var}' is captured by the backward closure "
                        f"'{closure}' but later passed to {callee}(), "
                        f"which mutates its parameter '{hit}' in place; "
                        "the saved buffer goes stale — pass a copy",
                        location=f"{info.relpath}:{site.lineno}",
                        symbol=qualname,
                        channel=f"{closure}:{var}->{callee}",
                    )
                )
    return out


def _binds_mutated_param(
    site, var: str, callee_info: FunctionInfo, mutated: Set[str]
) -> Optional[str]:
    """Name of the mutated callee parameter ``var`` binds to, if any."""
    for position, (kind, name) in enumerate(site.args):
        if kind in ("param", "local") and name == var:
            if position < len(callee_info.params):
                param = callee_info.params[position]
                if param in mutated:
                    return param
    for keyword, (kind, name) in site.kwargs:
        if kind in ("param", "local") and name == var and keyword in mutated:
            return keyword
    return None


# ----------------------------------------------------------------------
# EFF003 — thread-hostility
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HostileChannel:
    """One global/ambient write reachable from serving entry points."""

    kind: str  # "global-write" | "ambient-write" | "global-rng"
    channel: str  # fully qualified global name or ambient channel
    origin: str  # qualname of the function whose local fact introduced it
    line: int  # line of the write inside the origin function
    entries: Tuple[str, ...]  # entry-point method names that reach it
    path: Tuple[str, ...]  # example call path entry -> origin


def engine_entry_points(analysis: EffectAnalysis) -> List[str]:
    """Public ``RealTimeEngine`` methods, as qualnames."""
    cls = analysis.classes.get(ENGINE_CLASS)
    if cls is None:
        return []
    return [
        info.qualname
        for name, info in sorted(cls.methods.items())
        if not name.startswith("_")
    ]


def _origin_line(info: FunctionInfo, kind: str, channel: str) -> int:
    if kind == "global-write":
        return info.global_writes.get(channel, info.lineno)
    if kind == "ambient-write":
        return info.ambient_writes.get(channel, info.lineno)
    return info.rng_global.get(channel, info.lineno)


def thread_hostility_channels(
    analysis: EffectAnalysis,
) -> List[HostileChannel]:
    """Every (channel, origin) pair reachable from engine entry points."""
    entries = engine_entry_points(analysis)
    found: Dict[Tuple[str, str, str], Dict] = {}
    for entry in entries:
        signature = analysis.signatures.get(entry)
        if signature is None:
            continue
        paths = analysis.reachable([entry])
        tables = (
            ("global-write", signature.global_writes),
            ("ambient-write", signature.ambient_writes),
            ("global-rng", signature.rng_global),
        )
        entry_method = entry.rsplit(".", 1)[-1]
        for kind, table in tables:
            for channel, origin in table.items():
                key = (kind, channel, origin)
                record = found.setdefault(
                    key, {"entries": [], "path": paths.get(origin, (entry,))}
                )
                record["entries"].append(entry_method)
    out: List[HostileChannel] = []
    for (kind, channel, origin), record in sorted(found.items()):
        info = analysis.functions[origin]
        out.append(
            HostileChannel(
                kind=kind,
                channel=channel,
                origin=origin,
                line=_origin_line(info, kind, channel),
                entries=tuple(sorted(set(record["entries"]))),
                path=tuple(record["path"]),
            )
        )
    return out


def _thread_hostility(analysis: EffectAnalysis) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for hostile in thread_hostility_channels(analysis):
        info = analysis.functions[hostile.origin]
        noun = {
            "global-write": "module global",
            "ambient-write": "ambient channel",
            "global-rng": "process-global RNG",
        }[hostile.kind]
        out.append(
            Diagnostic.make(
                "EFF003",
                ERROR,
                f"write to {noun} '{hostile.channel}' is reachable from "
                f"RealTimeEngine.{'/'.join(hostile.entries)}; serving "
                "cannot shard until this is per-engine or accepted in "
                "the baseline",
                location=f"{info.relpath}:{hostile.line}",
                symbol=hostile.origin,
                channel=hostile.channel,
                entries=",".join(hostile.entries),
            )
        )
    return out


# ----------------------------------------------------------------------
# EFF004 — ambient-context discipline
# ----------------------------------------------------------------------
_SCOPE_METHOD_NAMES = ("__enter__", "__exit__")
_SCOPE_FUNC_PREFIXES = ("use_", "set_active_", "get_active_", "push_", "pop_")


def _is_scoping_construct(info: FunctionInfo) -> bool:
    if info.name in _SCOPE_METHOD_NAMES:
        return True
    return info.name.startswith(_SCOPE_FUNC_PREFIXES)


def _ambient_discipline(analysis: EffectAnalysis) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for qualname, info in analysis.functions.items():
        flagged_writes = set()
        for channel, line in sorted(info.global_writes.items()):
            owner, _, leaf = channel.rpartition(".")
            if not leaf.startswith("_ACTIVE"):
                continue
            if owner == info.module and _is_scoping_construct(info):
                continue
            flagged_writes.add(channel)
            out.append(
                Diagnostic.make(
                    "EFF004",
                    ERROR,
                    f"'{leaf}' is a scope stack; only {owner}'s own "
                    "use_*/set_active_* constructs may write it — wrap "
                    "the mutation in the module's context manager",
                    location=f"{info.relpath}:{line}",
                    symbol=qualname,
                    channel=channel,
                )
            )
        for channel, line in sorted(info.global_reads.items()):
            owner, _, leaf = channel.rpartition(".")
            if not leaf.startswith("_ACTIVE"):
                continue
            if owner == info.module or channel in flagged_writes:
                continue
            out.append(
                Diagnostic.make(
                    "EFF004",
                    ERROR,
                    f"cross-module read of scope stack '{leaf}'; go "
                    f"through {owner}'s get_active_* accessor so scoping "
                    "stays observable in one place",
                    location=f"{info.relpath}:{line}",
                    symbol=qualname,
                    channel=channel,
                )
            )
    return out


# ----------------------------------------------------------------------
# EFF005 — interprocedural dtype promotion
# ----------------------------------------------------------------------
def _dtype_promotion(analysis: EffectAnalysis) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for qualname, info in analysis.functions.items():
        if not _in_dtype_scope(info.relpath):
            continue
        seen: Set[str] = set()
        for site_index, callee in analysis.calls.get(qualname, []):
            callee_info = analysis.functions[callee]
            if _in_dtype_scope(callee_info.relpath):
                continue  # the callee is ATN002/EFF005's own problem
            taint = analysis.signatures[callee].float64_taint
            if taint is None or callee in seen:
                continue
            seen.add(callee)
            site = info.call_sites[site_index]
            out.append(
                Diagnostic.make(
                    "EFF005",
                    ERROR,
                    f"call to {callee}() promotes to float64 (literal in "
                    f"{taint}); ATN002's scope keeps this path "
                    "dtype-configurable — take/return "
                    "get_default_dtype() arrays across this boundary",
                    location=f"{info.relpath}:{site.lineno}",
                    symbol=qualname,
                    channel=callee,
                    origin=taint,
                )
            )
    return out


def run_rules(analysis: EffectAnalysis) -> List[Diagnostic]:
    """All rule packs over one propagated analysis, unsorted."""
    out: List[Diagnostic] = []
    out.extend(_view_escape(analysis))
    out.extend(_saved_buffer(analysis))
    out.extend(_thread_hostility(analysis))
    out.extend(_ambient_discipline(analysis))
    out.extend(_dtype_promotion(analysis))
    return out
