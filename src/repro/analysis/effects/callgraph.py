"""Call-graph resolution over harvested modules.

Turns the symbolic call references recorded by the harvester into
function qualnames:

* bare names resolve through the module import table (and module-local
  definitions);
* ``self.m(...)`` resolves through the enclosing class's MRO **and**
  every subclass override (the receiver's runtime type may be any
  subclass, so reachability must include them);
* ``obj.m(...)`` resolves when ``obj`` is a module alias, an annotated
  parameter, or a ``self.<attr>`` whose type was inferred from its
  constructor call / annotation;
* a call used as a ``with`` item additionally contributes
  ``__enter__`` / ``__exit__`` edges of the context-manager class
  (resolved from the callee class, or from a function callee's return
  annotation).

Resolution is deliberately best-effort: an unresolvable reference adds
no edge (the analysis under-approximates reachability there), while a
call through a base type adds every override (over-approximates).  Both
choices favour a stable, reviewable report over precision.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.effects.model import (
    CallSite,
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
)

__all__ = ["CallGraphBuilder"]

_WRAPPER_RE = re.compile(
    r"^(?:typing\.)?(?:Optional|List|Sequence|Tuple|Dict|Iterable|"
    r"Iterator|Union)\[(?P<inner>.*)\]$"
)


class CallGraphBuilder:
    """Resolves call sites against the full set of harvested modules."""

    def __init__(self, modules: Dict[str, ModuleInfo]) -> None:
        self.modules = modules
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        for module in modules.values():
            for info in module.functions.values():
                self.functions[info.qualname] = info
            for cls in module.classes.values():
                self.classes[cls.qualname] = cls
                for info in cls.methods.values():
                    self.functions[info.qualname] = info
        self._resolved_bases: Dict[str, List[str]] = {}
        self._subclasses: Dict[str, Set[str]] = {}
        self._build_hierarchy()

    # ------------------------------------------------------------------
    # Class hierarchy
    # ------------------------------------------------------------------
    def _resolve_class_name(
        self, text: str, module: ModuleInfo
    ) -> Optional[str]:
        """Textual annotation / base reference -> class qualname."""
        text = text.strip().strip("\"'")
        match = _WRAPPER_RE.match(text)
        if match:
            # Optional[X] / Union[X, None] -> first non-None member.
            inner = match.group("inner")
            for piece in inner.split(","):
                piece = piece.strip()
                if piece and piece != "None":
                    return self._resolve_class_name(piece, module)
            return None
        if text in module.classes:
            return module.classes[text].qualname
        target = module.imports.get(text)
        if target is not None and target in self.classes:
            return target
        if text in self.classes:
            return text
        # Dotted references ("module.Class") through an import alias.
        if "." in text:
            head, _, tail = text.partition(".")
            base = module.imports.get(head)
            if base is not None and f"{base}.{tail}" in self.classes:
                return f"{base}.{tail}"
        return None

    def _build_hierarchy(self) -> None:
        for cls in self.classes.values():
            module = self.modules[cls.module]
            resolved = []
            for base in cls.bases:
                base_qualname = self._resolve_class_name(base, module)
                if base_qualname is not None:
                    resolved.append(base_qualname)
            self._resolved_bases[cls.qualname] = resolved
            for base_qualname in resolved:
                self._subclasses.setdefault(base_qualname, set()).add(
                    cls.qualname
                )

    def mro(self, class_qualname: str) -> List[str]:
        """Linearised ancestry by simple DFS (no diamond precision needed)."""
        out: List[str] = []
        stack = [class_qualname]
        seen: Set[str] = set()
        while stack:
            current = stack.pop(0)
            if current in seen or current not in self.classes:
                continue
            seen.add(current)
            out.append(current)
            stack.extend(self._resolved_bases.get(current, []))
        return out

    def all_subclasses(self, class_qualname: str) -> Set[str]:
        out: Set[str] = set()
        stack = list(self._subclasses.get(class_qualname, ()))
        while stack:
            current = stack.pop()
            if current in out:
                continue
            out.add(current)
            stack.extend(self._subclasses.get(current, ()))
        return out

    # ------------------------------------------------------------------
    # Method / callable resolution
    # ------------------------------------------------------------------
    def _method_in_mro(
        self, class_qualname: str, method: str
    ) -> Optional[str]:
        for ancestor in self.mro(class_qualname):
            cls = self.classes.get(ancestor)
            if cls is not None and method in cls.methods:
                return cls.methods[method].qualname
        return None

    def method_targets(self, class_qualname: str, method: str) -> List[str]:
        """MRO resolution plus every subclass override."""
        targets: List[str] = []
        base = self._method_in_mro(class_qualname, method)
        if base is not None:
            targets.append(base)
        for sub in self.all_subclasses(class_qualname):
            cls = self.classes.get(sub)
            if cls is not None and method in cls.methods:
                targets.append(cls.methods[method].qualname)
        return sorted(set(targets))

    def _attr_class(self, cls: ClassInfo, attr: str) -> Optional[str]:
        """Inferred class of ``self.<attr>`` (searching the MRO)."""
        for ancestor in self.mro(cls.qualname):
            ancestor_cls = self.classes.get(ancestor)
            if ancestor_cls is None:
                continue
            hint = ancestor_cls.attr_types.get(attr)
            if hint is None:
                continue
            module = self.modules[ancestor_cls.module]
            if hint.startswith("@return:"):
                method = self._method_in_mro(
                    ancestor_cls.qualname, hint[len("@return:"):]
                )
                if method is None:
                    return None
                annotation = self.functions[method].return_annotation
                if annotation is None:
                    return None
                return self._resolve_class_name(
                    annotation, self.modules[self.functions[method].module]
                )
            return self._resolve_class_name(hint, module)
        return None

    def _global_callable(
        self, name: str, module: ModuleInfo
    ) -> Optional[str]:
        """Bare-name callee -> function or class qualname."""
        if name in module.functions:
            return module.functions[name].qualname
        if name in module.classes:
            return module.classes[name].qualname
        target = module.imports.get(name)
        if target is None:
            return None
        if target in self.functions or target in self.classes:
            return target
        return None

    # ------------------------------------------------------------------
    # Site resolution
    # ------------------------------------------------------------------
    def _context_manager_edges(self, class_qualname: str) -> List[str]:
        edges: List[str] = []
        for dunder in ("__enter__", "__exit__"):
            edges.extend(self.method_targets(class_qualname, dunder))
        return edges

    def _expand_callable(
        self, target: str, is_with_item: bool
    ) -> List[str]:
        """A resolved callable -> concrete function edges."""
        edges: List[str] = []
        if target in self.classes:
            init = self._method_in_mro(target, "__init__")
            if init is not None:
                edges.append(init)
            if is_with_item:
                edges.extend(self._context_manager_edges(target))
        elif target in self.functions:
            edges.append(target)
            if is_with_item:
                annotation = self.functions[target].return_annotation
                if annotation is not None:
                    returned = self._resolve_class_name(
                        annotation,
                        self.modules[self.functions[target].module],
                    )
                    if returned is not None:
                        edges.extend(self._context_manager_edges(returned))
        return edges

    def resolve_site(
        self, caller: FunctionInfo, site: CallSite
    ) -> List[str]:
        module = self.modules[caller.module]
        ref = site.ref
        if ref[0] == "name":
            target = self._global_callable(ref[1], module)
            if target is None:
                return []
            return self._expand_callable(target, site.is_with_item)
        if ref[0] == "self":
            if caller.class_name is None:
                return []
            cls = module.classes.get(caller.class_name)
            if cls is None:
                return []
            return self.method_targets(cls.qualname, ref[1])
        if ref[0] == "obj":
            _, base, method = ref
            imported = module.imports.get(base)
            if imported is not None and imported in self.modules:
                target_module = self.modules[imported]
                if method in target_module.functions:
                    return self._expand_callable(
                        target_module.functions[method].qualname,
                        site.is_with_item,
                    )
                if method in target_module.classes:
                    return self._expand_callable(
                        target_module.classes[method].qualname,
                        site.is_with_item,
                    )
                return []
            annotation = caller.param_annotations.get(base)
            if annotation is not None:
                class_qualname = self._resolve_class_name(annotation, module)
                if class_qualname is not None:
                    return self.method_targets(class_qualname, method)
            return []
        if ref[0] == "self_attr":
            _, attr, method = ref
            if caller.class_name is None:
                return []
            cls = module.classes.get(caller.class_name)
            if cls is None:
                return []
            class_qualname = self._attr_class(cls, attr)
            if class_qualname is None:
                return []
            return self.method_targets(class_qualname, method)
        return []

    def build(self) -> Dict[str, List[Tuple[int, str]]]:
        """Resolve every call site of every function."""
        calls: Dict[str, List[Tuple[int, str]]] = {}
        for qualname, info in self.functions.items():
            edges: List[Tuple[int, str]] = []
            for index, site in enumerate(info.call_sites):
                for callee in self.resolve_site(info, site):
                    edges.append((index, callee))
            calls[qualname] = edges
        return calls
