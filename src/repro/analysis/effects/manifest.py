"""Metrics/span name manifest: every instrument name the code can emit.

Instrument names are stringly-typed (``registry.counter("engine.refreshes")``,
``maybe_span("index.search")``) so nothing stops two call sites from
registering the same name as different kinds — which raises at runtime
only when both paths execute — or the docs from drifting.  This pass
extracts every literal (and f-string-prefixed) name from the
``counter(`` / ``histogram(`` / ``gauge(`` / span call sites, then:

* lints kind conflicts (one name, two instrument kinds) and
  metric/span collisions — ``EFF006``;
* checks drift against the metric tables in ``docs/observability.md``
  (a documented name that no call site can emit, or whose documented
  kind disagrees with the code) — ``EFF007``;
* renders ``docs/metrics_manifest.md``, the generated inventory the
  observability docs link to.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.diagnostics import ERROR, Diagnostic
from repro.analysis.lint.engine import iter_python_files

__all__ = [
    "ManifestEntry",
    "NameManifest",
    "build_manifest",
    "manifest_diagnostics",
    "render_manifest",
]

_METRIC_METHODS = ("counter", "gauge", "histogram")
_SPAN_CALLEES = ("maybe_span", "span")


@dataclass
class ManifestEntry:
    """One instrument/span name (or dynamic-name pattern) in the code."""

    name: str  # literal name, or pattern like "trainer.grad_norm.*"
    kind: str  # "counter" | "gauge" | "histogram" | "span"
    dynamic: bool  # True when the name has a non-literal component
    sites: List[Tuple[str, int]] = field(default_factory=list)


@dataclass
class NameManifest:
    # (name, kind) -> entry; one name may appear under several kinds,
    # which is exactly what the conflict lint reports.
    entries: Dict[Tuple[str, str], ManifestEntry] = field(default_factory=dict)

    def add(
        self, name: str, kind: str, dynamic: bool, relpath: str, line: int
    ) -> None:
        entry = self.entries.setdefault(
            (name, kind), ManifestEntry(name=name, kind=kind, dynamic=dynamic)
        )
        entry.sites.append((relpath, line))

    def kinds_for(self, name: str) -> List[str]:
        return sorted(kind for (n, kind) in self.entries if n == name)

    def names(self) -> List[str]:
        return sorted({name for (name, _) in self.entries})

    def site_count(self) -> int:
        return sum(len(e.sites) for e in self.entries.values())

    def can_emit(self, name: str, kind: str) -> bool:
        """Whether some call site emits ``name`` as ``kind`` (patterns count)."""
        if (name, kind) in self.entries:
            return True
        for (candidate, entry_kind), entry in self.entries.items():
            if entry_kind != kind or not entry.dynamic:
                continue
            prefix = candidate[:-1] if candidate.endswith("*") else candidate
            if name.startswith(prefix):
                return True
        return False


def _name_from_arg(node: ast.AST) -> Optional[Tuple[str, bool]]:
    """Extract ``(name, dynamic)`` from a name argument expression."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value, False
    if isinstance(node, ast.JoinedStr):
        prefix = ""
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                prefix += value.value
            else:
                break
        return prefix + "*", True
    if isinstance(node, ast.Name):
        return f"<{node.id}>", True
    return None


def _classify_call(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Attribute):
        if func.attr in _METRIC_METHODS:
            return func.attr
        if func.attr in _SPAN_CALLEES:
            return "span"
        return None
    if isinstance(func, ast.Name) and func.id in _SPAN_CALLEES:
        return "span"
    return None


def build_manifest(paths: Iterable[Path], root: Path) -> NameManifest:
    """Scan python files for instrument/span registrations."""
    manifest = NameManifest()
    for path in iter_python_files(paths):
        relpath = path.relative_to(root).as_posix()
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except SyntaxError:
            continue
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            kind = _classify_call(node)
            if kind is None or not node.args:
                continue
            extracted = _name_from_arg(node.args[0])
            if extracted is None:
                continue
            name, dynamic = extracted
            manifest.add(name, kind, dynamic, relpath, node.lineno)
    return manifest


# ----------------------------------------------------------------------
# Lint: kind conflicts and metric/span collisions (EFF006)
# ----------------------------------------------------------------------
def _conflict_diagnostics(manifest: NameManifest) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for name in manifest.names():
        if name.endswith("*") or name.startswith("<"):
            continue  # dynamic patterns cannot be compared reliably
        kinds = manifest.kinds_for(name)
        metric_kinds = [k for k in kinds if k != "span"]
        if len(metric_kinds) > 1:
            sites = manifest.entries[(name, metric_kinds[0])].sites
            relpath, line = sites[0]
            out.append(
                Diagnostic.make(
                    "EFF006",
                    ERROR,
                    f"'{name}' is registered as {' and '.join(metric_kinds)};"
                    " re-registering a name as a different kind raises at"
                    " runtime — rename one of them",
                    location=f"{relpath}:{line}",
                    symbol=name,
                    channel=",".join(metric_kinds),
                )
            )
        if "span" in kinds and metric_kinds:
            sites = manifest.entries[(name, "span")].sites
            relpath, line = sites[0]
            out.append(
                Diagnostic.make(
                    "EFF006",
                    ERROR,
                    f"'{name}' names both a span and a "
                    f"{'/'.join(metric_kinds)}; shared names make traces "
                    "and metrics impossible to correlate — rename one",
                    location=f"{relpath}:{line}",
                    symbol=name,
                    channel="span," + ",".join(metric_kinds),
                )
            )
    return out


# ----------------------------------------------------------------------
# Docs drift (EFF007)
# ----------------------------------------------------------------------
_BACKTICK_RE = re.compile(r"`([^`]+)`")
_DOC_KINDS = {"counter", "gauge", "histogram"}


def documented_metrics(doc_text: str) -> List[Tuple[str, str, int]]:
    """``(name, kind, line)`` rows from markdown metric tables.

    A table row counts when its second column is purely instrument
    kinds (``counter``, ``histogram / gauge``, ...); names come from the
    backticked entries of the first column, paired positionally with
    the kinds (a single kind covers every name in the row).
    """
    rows: List[Tuple[str, str, int]] = []
    for lineno, line in enumerate(doc_text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped.startswith("|"):
            continue
        cells = [c.strip() for c in stripped.strip("|").split("|")]
        if len(cells) < 2:
            continue
        kinds = [k.strip().lower() for k in cells[1].split("/")]
        if not kinds or any(k not in _DOC_KINDS for k in kinds):
            continue
        names = _BACKTICK_RE.findall(cells[0])
        if not names:
            continue
        for index, name in enumerate(names):
            kind = kinds[index] if index < len(kinds) else kinds[-1]
            rows.append((name, kind, lineno))
    return rows


def _drift_diagnostics(
    manifest: NameManifest, docs_path: Path, docs_relpath: str
) -> List[Diagnostic]:
    if not docs_path.exists():
        return []
    out: List[Diagnostic] = []
    for name, kind, line in documented_metrics(
        docs_path.read_text(encoding="utf-8")
    ):
        if manifest.can_emit(name, kind):
            continue
        actual = [k for k in manifest.kinds_for(name) if k != "span"]
        if actual:
            problem = f"the code registers it as a {'/'.join(actual)}"
        else:
            problem = "no call site can emit it"
        out.append(
            Diagnostic.make(
                "EFF007",
                ERROR,
                f"docs list '{name}' as a {kind} but {problem}; "
                "update the table or the instrumentation",
                location=f"{docs_relpath}:{line}",
                symbol=name,
                channel=kind,
            )
        )
    return out


def manifest_diagnostics(
    manifest: NameManifest, docs_path: Path, docs_relpath: str
) -> List[Diagnostic]:
    out = _conflict_diagnostics(manifest)
    out.extend(_drift_diagnostics(manifest, docs_path, docs_relpath))
    return out


# ----------------------------------------------------------------------
# Rendering (docs/metrics_manifest.md)
# ----------------------------------------------------------------------
_MANIFEST_HEADER = """\
# Metrics & span name manifest

<!-- Generated by `python -m repro.analysis effects --write-reports`.
     Do not edit by hand; CI fails when this file drifts from the
     analyzer's output. -->

Every instrument and span name the code can emit, extracted from the
`counter(` / `gauge(` / `histogram(` / span call sites by
[`repro.analysis.effects.manifest`](../src/repro/analysis/effects/manifest.py).
Dynamic names (f-strings, variables) appear as `prefix.*` patterns.
The narrative docs live in [observability.md](observability.md); the
analyzer cross-checks its metric tables against this inventory.
"""


def render_manifest(manifest: NameManifest) -> str:
    lines: List[str] = [_MANIFEST_HEADER]
    lines.append(
        f"**{len(manifest.names())} name(s)** across "
        f"{manifest.site_count()} call site(s).\n"
    )
    for kind in ("counter", "gauge", "histogram", "span"):
        entries = sorted(
            (e for (_, k), e in manifest.entries.items() if k == kind),
            key=lambda e: e.name,
        )
        if not entries:
            continue
        lines.append(f"## {kind}\n")
        lines.append("| name | call sites |")
        lines.append("| --- | --- |")
        for entry in entries:
            sites = ", ".join(
                f"[{relpath}:{line}](../{relpath}#L{line})"
                for relpath, line in sorted(set(entry.sites))
            )
            label = f"`{entry.name}`" + (" *(dynamic)*" if entry.dynamic else "")
            lines.append(f"| {label} | {sites} |")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
