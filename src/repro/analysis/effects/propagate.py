"""Signature propagation: compose local facts through the call graph.

Channel effects (module-global reads/writes, ambient ``get_active_*``
channels, process-global RNG, float64 taint) propagate
context-insensitively: a caller inherits every channel its callees
touch, tagged with the qualname of the function whose *local* fact
introduced the effect, so diagnostics can always name the origin.

Parameter-mutation effects propagate with argument binding: when ``g``
mutates its parameter ``buf`` and ``f`` calls ``g(x)`` with its own
parameter ``x`` in that position, ``f`` mutates ``x`` too.  Run to a
fixpoint this composes through arbitrarily deep chains of direct
parameter forwarding (the common helper idiom); anything fancier
(captured in a container, re-sliced, ...) is out of scope and covered
by the runtime GradSanitizer instead.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.effects.callgraph import CallGraphBuilder
from repro.analysis.effects.harvest import harvest_module
from repro.analysis.effects.model import (
    EffectAnalysis,
    EffectSignature,
    FunctionInfo,
    ModuleInfo,
)

__all__ = ["analyze", "propagate"]

# Effects the analyzer cannot see through the AST but knows by contract.
# ``maybe_span`` hands back a Span that records onto the *ambient*
# tracer on exit; the harvest sees only the constructor call.
_STUB_AMBIENT_WRITES: Dict[str, Tuple[str, ...]] = {
    "repro.obs.tracing.maybe_span": ("tracer.span",),
}

_MAX_PASSES = 64


def _filter_globals(
    modules: Dict[str, ModuleInfo], functions: Dict[str, FunctionInfo]
) -> None:
    """Drop recorded global refs that are not repo module data globals.

    The harvester records a candidate for every imported dotted name; a
    reference only counts when its target module was parsed and the leaf
    is genuine module-level data (this is what separates
    ``from x import _ACTIVE_CONTEXTS`` from ``from x import kmeans``).
    """
    for info in functions.values():
        for table in (info.global_writes, info.global_reads):
            for target in list(table):
                mod, _, leaf = target.rpartition(".")
                if mod == info.module:
                    continue
                owner = modules.get(mod)
                if owner is None or leaf not in owner.data_globals:
                    del table[target]


def propagate(
    modules: Dict[str, ModuleInfo],
) -> EffectAnalysis:
    """Resolve calls and run the effect fixpoint over harvested modules."""
    builder = CallGraphBuilder(modules)
    functions = builder.functions
    _filter_globals(modules, functions)
    calls = builder.build()

    mutable_globals: Set[str] = set()
    for info in functions.values():
        mutable_globals.update(info.global_writes)

    signatures: Dict[str, EffectSignature] = {}
    for qualname, info in functions.items():
        signature = EffectSignature(
            mutated_params=set(info.mutated_params),
            global_writes={ch: qualname for ch in info.global_writes},
            global_reads={
                ch: qualname
                for ch in info.global_reads
                if ch in mutable_globals
            },
            ambient_reads={ch: qualname for ch in info.ambient_reads},
            ambient_writes={ch: qualname for ch in info.ambient_writes},
            rng_global={ch: qualname for ch in info.rng_global},
            float64_taint=qualname if info.float64_sites else None,
            returns_views=set(info.returns_views),
        )
        for channel in _STUB_AMBIENT_WRITES.get(qualname, ()):
            signature.ambient_writes.setdefault(channel, qualname)
        signatures[qualname] = signature

    for _ in range(_MAX_PASSES):
        changed = False
        for qualname, info in functions.items():
            signature = signatures[qualname]
            for site_index, callee in calls.get(qualname, ()):
                callee_sig = signatures.get(callee)
                if callee_sig is None:
                    continue
                if signature.merge_channels(callee_sig, callee):
                    changed = True
                # Parameter-mutation binding through direct forwarding.
                if callee_sig.mutated_params:
                    site = info.call_sites[site_index]
                    callee_info = functions[callee]
                    bound: List[Tuple[str, str]] = []
                    for position, arg in enumerate(site.args):
                        if position < len(callee_info.params):
                            bound.append((callee_info.params[position], arg))
                    for keyword, arg in site.kwargs:
                        bound.append((keyword, arg))
                    for callee_param, (kind, name) in bound:
                        if (
                            kind == "param"
                            and callee_param in callee_sig.mutated_params
                            and name not in signature.mutated_params
                        ):
                            signature.mutated_params.add(name)
                            changed = True
        if not changed:
            break

    return EffectAnalysis(
        modules=modules,
        functions=functions,
        classes=builder.classes,
        calls=calls,
        signatures=signatures,
        mutable_globals=mutable_globals,
    )


def iter_source_files(src_root: Path) -> Iterable[Path]:
    for path in sorted(src_root.rglob("*.py")):
        if any(part.startswith(".") for part in path.parts):
            continue
        yield path


def analyze(
    src_root: Path, package: Optional[str] = None
) -> EffectAnalysis:
    """Harvest + resolve + propagate everything under ``src_root``.

    ``src_root`` is the import root (the directory on ``sys.path``);
    ``package`` optionally restricts the scan to one top-level package
    beneath it (e.g. ``"repro"``).
    """
    scan_root = src_root / package if package else src_root
    modules: Dict[str, ModuleInfo] = {}
    for path in iter_source_files(scan_root):
        module = harvest_module(path, src_root)
        if module is not None:
            modules[module.name] = module
    return propagate(modules)
