"""AST harvesting: per-function local effect facts.

One pass over every module under a source root produces
:class:`~repro.analysis.effects.model.ModuleInfo` records whose
functions carry *intraprocedural* facts only — parameter writes, global
and ambient state access, RNG usage, float64 literals, returned views,
and symbolic call sites.  Nothing here follows a call; composition is
the propagation stage's job.

The harvester is deliberately a *may*-analysis: an ``x[i] = v`` or
``x += v`` on a name is treated as an in-place write of whatever object
the name denotes (for an ndarray it is; for an int it is a rebind), and
a basic ``Subscript`` of a parameter or attribute is treated as a view
(for an ndarray a slice is; fancy indexing copies).  Rules that consume
these facts are gated by a reason-mandatory baseline, so the occasional
conservative over-approximation is recorded rather than fatal.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.effects.model import (
    ArgRef,
    CallSite,
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
)
from repro.analysis.lint.engine import _parse_suppressions

__all__ = ["harvest_module", "harvest_tree", "module_name_for"]

# In-place container/array mutators: calling one of these on a name is
# treated as a write to the object the name denotes.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "add",
        "discard",
        "update",
        "setdefault",
        "sort",
        "reverse",
        "fill",
        "setflags",
        "assign_",
        "resize",
        "put",
        "partial_fit",
    }
)

# Attribute accesses that preserve view-ness on ndarrays.
_VIEW_ATTRS = frozenset({"T", "data", "real", "imag", "flat"})

# numpy legacy global-RNG entry points (module-level ``np.random.*``
# functions that mutate the process-wide RandomState).
_LEGACY_NP_RANDOM = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "standard_normal",
        "poisson",
        "binomial",
        "beta",
        "gamma",
        "exponential",
        "geometric",
        "multinomial",
        "get_state",
        "set_state",
    }
)

# Suppression codes that mute a float64 literal as an EFF005 taint
# source (a reasoned ATN002 suppression documents the promotion).
_FLOAT64_SUPPRESSORS = ("ATN002", "EFF005")


def module_name_for(relpath: str) -> str:
    """``repro/obs/tracing.py`` -> ``repro.obs.tracing`` (posix relpath)."""
    parts = Path(relpath).with_suffix("").parts
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _is_np_random(node: ast.AST) -> Optional[str]:
    """``np.random.<fn>`` / ``numpy.random.<fn>`` -> fn name, else None."""
    if not isinstance(node, ast.Attribute):
        return None
    inner = node.value
    if (
        isinstance(inner, ast.Attribute)
        and inner.attr == "random"
        and isinstance(inner.value, ast.Name)
        and inner.value.id in ("np", "numpy")
    ):
        return node.attr
    return None


def _is_np_float64(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "float64"
        and isinstance(node.value, ast.Name)
        and node.value.id in ("np", "numpy")
    )


def _assigned_names(tree: ast.AST) -> Set[str]:
    """Every Name bound anywhere in a function body (locals pre-scan)."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            names.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(node.name)
        elif isinstance(node, ast.comprehension):
            for target in ast.walk(node.target):
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _free_reads(func: ast.AST, enclosing_locals: Set[str]) -> Set[str]:
    """Names a nested function reads that are locals of its parent."""
    own = _assigned_names(func)
    own.update(
        arg.arg
        for arg in ast.walk(func)
        if isinstance(arg, ast.arg)
    )
    reads: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if node.id in enclosing_locals and node.id not in own:
                reads.add(node.id)
    return reads


class _FunctionHarvester:
    """Walks one function body in statement order, filling FunctionInfo."""

    def __init__(
        self,
        info: FunctionInfo,
        node: ast.FunctionDef,
        module_globals: Set[str],
        imports: Dict[str, str],
        suppressed_float64: Set[int],
    ) -> None:
        self.info = info
        self.node = node
        self.module_globals = module_globals
        self.imports = imports
        self.suppressed_float64 = suppressed_float64
        self.locals: Set[str] = set(info.params) | _assigned_names(node)
        self.declared_globals: Set[str] = set()
        # Aliasing state, updated in statement order.
        self.param_aliases: Dict[str, str] = {p: p for p in info.params}
        self.view_locals: Dict[str, Tuple[str, str]] = {}
        self.handle_locals: Dict[str, str] = {}  # local -> ambient channel
        self.call_results: Dict[str, int] = {}  # local -> call_sites index
        # Closures seen so far: name -> (def line, captured names).
        self.closures: Dict[str, Tuple[int, Set[str]]] = {}

    # -- name classification -------------------------------------------
    def _global_target(self, name: str) -> Optional[str]:
        """Fully qualified global this name denotes, or None."""
        if name in self.declared_globals:
            return f"{self.info.module}.{name}"
        if name in self.locals:
            return None
        if name in self.module_globals:
            return f"{self.info.module}.{name}"
        target = self.imports.get(name)
        if target is not None and "." in target:
            # Cross-module data reference; the analyzer validates that
            # the target really is a data global after all modules parse.
            return target
        return None

    def _note_global_write(self, name: str, line: int) -> None:
        target = self._global_target(name)
        if target is not None:
            self.info.global_writes.setdefault(target, line)

    def _note_global_read(self, name: str, line: int) -> None:
        target = self._global_target(name)
        if target is not None:
            self.info.global_reads.setdefault(target, line)

    def _note_name_mutation(self, name: str, line: int) -> None:
        """An in-place write through ``name`` — classify the object."""
        if name in self.param_aliases:
            self.info.mutated_params.setdefault(self.param_aliases[name], line)
        if name in self.call_results:
            self.info.result_mutations.append((self.call_results[name], line))
        self._note_global_write(name, line)
        for closure, (def_line, captured) in self.closures.items():
            if name in captured and line > def_line:
                self.info.closure_mutations.append(
                    (closure, def_line, name, line)
                )

    # -- expression classification -------------------------------------
    def _arg_ref(self, node: ast.AST) -> ArgRef:
        if isinstance(node, ast.Name):
            if node.id in self.param_aliases:
                return ("param", self.param_aliases[node.id])
            return ("local", node.id)
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return ("attr", node.attr)
        if isinstance(node, ast.Starred):
            return self._arg_ref(node.value)
        return ("other", "")

    def _view_source(self, node: ast.AST) -> Optional[Tuple[str, str]]:
        """What ``node`` may alias: a param or a self attribute."""
        if isinstance(node, ast.Name):
            if node.id in self.param_aliases:
                return ("param", self.param_aliases[node.id])
            return self.view_locals.get(node.id)
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return ("attr", node.attr)
            if node.attr in _VIEW_ATTRS:
                return self._view_source(node.value)
            return None
        if isinstance(node, ast.Subscript):
            return self._view_source(node.value)
        return None

    def _call_ref(self, func: ast.AST) -> Optional[Tuple[str, ...]]:
        if isinstance(func, ast.Name):
            return ("name", func.id)
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name):
                if base.id == "self":
                    return ("self", func.attr)
                return ("obj", base.id, func.attr)
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
            ):
                return ("self_attr", base.attr, func.attr)
        return None

    # -- call handling --------------------------------------------------
    def _handle_call(
        self,
        node: ast.Call,
        result_local: Optional[str] = None,
        is_with_item: bool = False,
    ) -> Optional[int]:
        """Record one call site; returns its index (None if opaque)."""
        fn = _is_np_random(node.func)
        if fn is not None and fn in _LEGACY_NP_RANDOM:
            if fn != "default_rng":
                self.info.rng_global.setdefault(
                    f"np.random.{fn}", node.lineno
                )
            return None

        ref = self._call_ref(node.func)
        line = node.lineno

        # Ambient channels: get_active_*/set_active_* by local name or
        # import target, plus method calls on handles obtained that way.
        if ref is not None and ref[0] == "name":
            name = ref[1]
            target = self.imports.get(name, name)
            leaf = target.rsplit(".", 1)[-1]
            if leaf.startswith("get_active_"):
                channel = leaf[len("get_active_"):]
                self.info.ambient_reads.setdefault(channel, line)
                if result_local is not None:
                    self.handle_locals[result_local] = channel
                return None
            if leaf.startswith("set_active_"):
                self.info.ambient_writes.setdefault(
                    leaf[len("set_active_"):], line
                )
                return None
        if ref is not None and ref[0] == "obj":
            _, base, method = ref
            if base in self.handle_locals:
                channel = self.handle_locals[base]
                self.info.ambient_writes.setdefault(
                    f"{channel}.{method}", line
                )
                return None
            if method in _MUTATOR_METHODS:
                self._note_name_mutation(base, line)
        if ref is not None and ref[0] == "self_attr":
            # self.attr.mutator(...) is an attr write, not a call edge we
            # lose: the edge is recorded below via the resolver.
            if ref[2] in _MUTATOR_METHODS:
                self.info.attr_writes.add(ref[1])

        if ref is None:
            return None
        args = tuple(self._arg_ref(arg) for arg in node.args)
        kwargs = tuple(
            (kw.arg, self._arg_ref(kw.value))
            for kw in node.keywords
            if kw.arg is not None
        )
        site = CallSite(
            ref=ref,
            args=args,
            kwargs=kwargs,
            lineno=line,
            result_local=result_local,
            is_with_item=is_with_item,
        )
        self.info.call_sites.append(site)
        index = len(self.info.call_sites) - 1

        # Captured locals handed to a callee after a closure definition.
        for position, (kind, name) in enumerate(args):
            if kind not in ("param", "local"):
                continue
            for closure, (def_line, captured) in self.closures.items():
                if name in captured and line > def_line:
                    self.info.closure_escapes.append((name, closure, index))
        return index

    # -- statement walk -------------------------------------------------
    def run(self) -> None:
        for statement in self.node.body:
            self._visit(statement)

    def _visit(self, node: ast.AST) -> None:
        method = getattr(self, f"_visit_{type(node).__name__}", None)
        if method is not None:
            method(node)
            return
        self._generic(node)

    def _generic(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    # Nested defs become closure records; we do not descend.
    def _visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        captured = _free_reads(node, self.locals | set(self.info.params))
        self.closures[node.name] = (node.lineno, captured)

    _visit_AsyncFunctionDef = _visit_FunctionDef

    def _visit_Lambda(self, node: ast.Lambda) -> None:
        captured = _free_reads(node, self.locals | set(self.info.params))
        self.closures[f"<lambda:{node.lineno}>"] = (node.lineno, captured)

    def _visit_Global(self, node: ast.Global) -> None:
        self.declared_globals.update(node.names)

    def _visit_Assign(self, node: ast.Assign) -> None:
        sole_name = (
            node.targets[0].id
            if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name)
            else None
        )
        if isinstance(node.value, ast.Call):
            # Visit the call's children only (nested calls in arguments
            # record themselves), rebind the targets, then record the
            # call with its result binding — in that order, so the
            # rebind does not clear the binding the call establishes.
            for child in ast.iter_child_nodes(node.value):
                self._visit(child)
            for target in node.targets:
                self._assign_target(target, node.value, node.lineno)
            call_index = self._handle_call(node.value, result_local=sole_name)
            if sole_name is not None and call_index is not None:
                self.call_results[sole_name] = call_index
        else:
            self._visit(node.value)
            for target in node.targets:
                self._assign_target(target, node.value, node.lineno)

    def _visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is None:
            return
        if isinstance(node.value, ast.Call):
            for child in ast.iter_child_nodes(node.value):
                self._visit(child)
            self._assign_target(node.target, node.value, node.lineno)
            self._handle_call(node.value)
        else:
            self._visit(node.value)
            self._assign_target(node.target, node.value, node.lineno)

    def _assign_target(
        self, target: ast.AST, value: ast.AST, line: int
    ) -> None:
        if isinstance(target, ast.Name):
            name = target.id
            if name in self.declared_globals:
                self._note_global_write(name, line)
            # Rebinding kills previous alias classifications.
            self.param_aliases.pop(name, None)
            self.view_locals.pop(name, None)
            self.handle_locals.pop(name, None)
            self.call_results.pop(name, None)
            if isinstance(value, ast.Name) and value.id in self.param_aliases:
                self.param_aliases[name] = self.param_aliases[value.id]
            else:
                source = self._view_source(value)
                if source is not None:
                    self.view_locals[name] = source
        elif isinstance(target, ast.Tuple):
            if isinstance(value, ast.Tuple) and len(value.elts) == len(
                target.elts
            ):
                for sub_target, sub_value in zip(target.elts, value.elts):
                    self._assign_target(sub_target, sub_value, line)
            else:
                for sub_target in target.elts:
                    if isinstance(sub_target, ast.Name):
                        self._assign_target(
                            sub_target, ast.Constant(value=None), line
                        )
        elif isinstance(target, ast.Subscript):
            if isinstance(target.value, ast.Name):
                self._note_name_mutation(target.value.id, line)
            else:
                source = self._view_source(target.value)
                if source is not None and source[0] == "param":
                    self.info.mutated_params.setdefault(source[1], line)
                elif (
                    isinstance(target.value, ast.Attribute)
                    and isinstance(target.value.value, ast.Name)
                    and target.value.value.id == "self"
                ):
                    self.info.attr_writes.add(target.value.attr)
            self._visit(target.value)
            self._visit(target.slice)
        elif isinstance(target, ast.Attribute):
            base = target.value
            if isinstance(base, ast.Name):
                if base.id == "self":
                    self.info.attr_writes.add(target.attr)
                    self._infer_attr_type(target.attr, value)
                elif base.id in self.param_aliases:
                    self.info.mutated_params.setdefault(
                        self.param_aliases[base.id], line
                    )
                else:
                    self._note_name_mutation(base.id, line)
            self._visit(base)

    def _infer_attr_type(self, attr: str, value: ast.AST) -> None:
        """Record a type hint for ``self.<attr>`` (textual, resolved later)."""
        hint: Optional[str] = None
        if isinstance(value, ast.Call):
            if isinstance(value.func, ast.Name):
                hint = value.func.id
            elif (
                isinstance(value.func, ast.Attribute)
                and isinstance(value.func.value, ast.Name)
                and value.func.value.id == "self"
            ):
                hint = f"@return:{value.func.attr}"
        elif isinstance(value, ast.Name):
            annotation = self.info.param_annotations.get(value.id)
            if annotation is not None:
                hint = annotation
        if hint is not None:
            self.info.attr_type_hints.setdefault(attr, hint)

    def _visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._visit(node.value)
        target = node.target
        if isinstance(target, ast.Name):
            self._note_name_mutation(target.id, node.lineno)
        elif isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Name
        ):
            self._note_name_mutation(target.value.id, node.lineno)
        elif isinstance(target, ast.Attribute):
            base = target.value
            if isinstance(base, ast.Name):
                if base.id == "self":
                    self.info.attr_writes.add(target.attr)
                elif base.id in self.param_aliases:
                    self.info.mutated_params.setdefault(
                        self.param_aliases[base.id], node.lineno
                    )
        elif isinstance(target, ast.Subscript):
            source = self._view_source(target.value)
            if source is not None and source[0] == "param":
                self.info.mutated_params.setdefault(source[1], node.lineno)

    def _visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Name
            ):
                self._note_name_mutation(target.value.id, node.lineno)
            self._visit(target)

    def _visit_Return(self, node: ast.Return) -> None:
        if node.value is None:
            return
        self._visit(node.value)
        values = (
            node.value.elts
            if isinstance(node.value, ast.Tuple)
            else [node.value]
        )
        for value in values:
            source = self._view_source(value)
            if source is not None:
                self.info.returns_views.add(source)

    def _visit_With(self, node: ast.With) -> None:
        for item in node.items:
            if isinstance(item.context_expr, ast.Call):
                result = (
                    item.optional_vars.id
                    if isinstance(item.optional_vars, ast.Name)
                    else None
                )
                for arg in item.context_expr.args:
                    self._visit(arg)
                self._handle_call(
                    item.context_expr, result_local=result, is_with_item=True
                )
            else:
                self._visit(item.context_expr)
        for statement in node.body:
            self._visit(statement)

    _visit_AsyncWith = _visit_With

    def _visit_Call(self, node: ast.Call) -> None:
        for child in ast.iter_child_nodes(node):
            self._visit(child)
        self._handle_call(node)

    def _visit_Attribute(self, node: ast.Attribute) -> None:
        if _is_np_float64(node):
            if node.lineno not in self.suppressed_float64:
                self.info.float64_sites.append(node.lineno)
        self._generic(node)

    def _visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self._note_global_read(node.id, node.lineno)


def _harvest_function(
    node: ast.FunctionDef,
    module: ModuleInfo,
    qualname: str,
    class_name: Optional[str],
    suppressed_float64: Set[int],
) -> FunctionInfo:
    params: List[str] = []
    annotations: Dict[str, str] = {}
    all_args = (
        list(node.args.posonlyargs)
        + list(node.args.args)
        + list(node.args.kwonlyargs)
    )
    for arg in all_args:
        if arg.arg in ("self", "cls"):
            continue
        params.append(arg.arg)
        if arg.annotation is not None:
            annotations[arg.arg] = ast.unparse(arg.annotation)
    info = FunctionInfo(
        module=module.name,
        qualname=qualname,
        name=node.name,
        relpath=module.relpath,
        lineno=node.lineno,
        class_name=class_name,
        params=tuple(params),
        param_annotations=annotations,
        return_annotation=(
            ast.unparse(node.returns) if node.returns is not None else None
        ),
    )
    harvester = _FunctionHarvester(
        info, node, module.data_globals, module.imports, suppressed_float64
    )
    harvester.run()
    return info


def harvest_tree(
    tree: ast.Module, name: str, relpath: str, source: str = ""
) -> ModuleInfo:
    """Harvest one parsed module (``source`` enables suppression parsing)."""
    module = ModuleInfo(name=name, relpath=relpath)

    suppressed: Set[int] = set()
    if source:
        for suppression in _parse_suppressions(source).values():
            if suppression.reason and any(
                suppression.covers(code) for code in _FLOAT64_SUPPRESSORS
            ):
                suppressed.add(suppression.line)

    # Imports and module-level data globals.
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    module.imports[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    module.imports[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports are not used in this repo
            for alias in node.names:
                local = alias.asname or alias.name
                module.imports[local] = f"{node.module}.{alias.name}"
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    module.data_globals.add(target.id)

    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            qualname = f"{name}.{node.name}"
            module.functions[node.name] = _harvest_function(
                node, module, qualname, None, suppressed
            )
        elif isinstance(node, ast.ClassDef):
            cls = ClassInfo(
                module=name,
                qualname=f"{name}.{node.name}",
                name=node.name,
                bases=[
                    ast.unparse(base)
                    for base in node.bases
                    if not isinstance(base, ast.Subscript)
                ],
            )
            for member in node.body:
                if isinstance(member, ast.FunctionDef):
                    qualname = f"{name}.{node.name}.{member.name}"
                    info = _harvest_function(
                        member, module, qualname, node.name, suppressed
                    )
                    cls.methods[member.name] = info
                    for attr, hint in info.attr_type_hints.items():
                        cls.attr_types.setdefault(attr, hint)
            module.classes[node.name] = cls
    return module


def harvest_module(path: Path, src_root: Path) -> Optional[ModuleInfo]:
    """Parse and harvest one file; returns None when it does not parse."""
    relpath = path.relative_to(src_root).as_posix()
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError:
        return None
    return harvest_tree(tree, module_name_for(relpath), relpath, source)
