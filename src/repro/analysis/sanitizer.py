"""Runtime autograd sanitizer: stale-buffer and non-finite detection.

The engine's performance work (sparse gradients, owned-buffer reuse, lazy
optimizer row updates) leans on a buffer discipline that is invisible at
the call site: arrays captured by backward closures must not change
between the forward op and its gradient function, and gradient
accumulation must never scatter a buffer into itself.  The
:class:`GradSanitizer` makes violations loud:

* **Saved-buffer versioning** — every ``Tensor`` carries a version
  counter bumped by each sanctioned in-place write (optimizer steps,
  ``assign_``, ``load_state_dict``, ``to_dtype``).  While the sanitizer
  is enabled, each recorded op remembers the versions of the tensors its
  backward closure captured; running ``backward`` after one of them was
  mutated raises a :class:`SanitizerError` naming the op and the tensor.
  ``check_content=True`` additionally fingerprints the saved arrays so
  *unsanctioned* writes (raw ``tensor.data[...] = ...`` that never bump
  the version) are caught too.
* **Aliased accumulation** — the engine consults the active sanitizer at
  its four in-place gradient-accumulation sites; a gradient that shares
  memory with its accumulation target raises immediately instead of
  silently double-counting.
* **Non-finite taint tracking** (``track_nonfinite=True``) — the first op
  whose output contains NaN/Inf from finite inputs is recorded on the
  output tensor's ``taint`` slot and propagated through downstream ops,
  so a NaN observed in the loss names the op (and shape/dtype) where it
  was born, not where it surfaced.

The sanitizer is strictly opt-in and patch-on-enable (the pattern of
:class:`repro.obs.AutogradProfiler`): when disabled the engine runs the
original methods and the only residual cost is the integer version bump
in the optimizers.  Enable it around a suspect training loop::

    from repro.analysis import GradSanitizer

    with GradSanitizer(track_nonfinite=True) as sanitizer:
        loss = model(batch)
        loss.backward()
    print(sanitizer.stats)
"""

from __future__ import annotations

import functools
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.analysis.diagnostics import ERROR, WARNING, Diagnostic
from repro.nn.arena import get_active_arena
from repro.nn.sparse import SparseGrad
from repro.nn.tensor import Tensor, get_active_sanitizer, set_active_sanitizer
from repro.obs.autograd import PROFILED_OPS
from repro.obs.logging import get_logger, kv
from repro.obs.metrics import get_active_registry

__all__ = ["GradSanitizer", "SanitizerError", "TaintRecord", "sanitizer_active"]

_logger = get_logger("analysis.sanitizer")


class SanitizerError(RuntimeError):
    """A buffer-discipline violation detected at runtime."""

    def __init__(self, diagnostic: Diagnostic) -> None:
        super().__init__(diagnostic.format())
        self.diagnostic = diagnostic


@dataclass(frozen=True)
class TaintRecord:
    """Provenance of the first non-finite value on a tensor's path."""

    op: str
    shape: Tuple[int, ...]
    dtype: str
    nonfinite_count: int

    def describe(self) -> str:
        return (
            f"non-finite values first produced by op {self.op!r} "
            f"(shape={self.shape}, dtype={self.dtype}, "
            f"count={self.nonfinite_count})"
        )


def sanitizer_active() -> bool:
    """Whether a :class:`GradSanitizer` is currently installed."""
    return get_active_sanitizer() is not None


def _fingerprint(array: np.ndarray) -> int:
    """Cheap content hash of an array (deep-check mode only)."""
    return zlib.crc32(np.ascontiguousarray(array).tobytes())


# Only one sanitizer may patch the Tensor class at a time.
_ENABLED_SANITIZER: Optional["GradSanitizer"] = None


class GradSanitizer:
    """Opt-in runtime checks over the autograd engine.

    Parameters
    ----------
    track_nonfinite:
        Scan every op output for NaN/Inf and attach taint provenance.
    check_content:
        Fingerprint saved-for-backward arrays so mutations that bypass
        the version counter (raw ``.data`` writes) are detected.  This is
        the deep mode: it hashes every saved buffer once at op-record
        time and once at backward time.
    raise_on_nonfinite:
        Escalate the first non-finite detection from a recorded warning
        to a :class:`SanitizerError`.
    """

    def __init__(
        self,
        track_nonfinite: bool = False,
        check_content: bool = False,
        raise_on_nonfinite: bool = False,
    ) -> None:
        self.track_nonfinite = bool(track_nonfinite)
        self.check_content = bool(check_content)
        self.raise_on_nonfinite = bool(raise_on_nonfinite)
        self.diagnostics: List[Diagnostic] = []
        self.stats: Dict[str, int] = {
            "forward_ops": 0,
            "backward_checks": 0,
            "accumulate_checks": 0,
            "stale_buffers": 0,
            "unsanctioned_mutations": 0,
            "aliased_accumulations": 0,
            "recycled_arena_buffers": 0,
            "nonfinite_ops": 0,
        }
        self._originals: List[Tuple[str, object]] = []
        self._reported_nonfinite_ops: Set[str] = set()

    # ------------------------------------------------------------------
    # Reporting plumbing
    # ------------------------------------------------------------------
    def _count(self, key: str) -> None:
        self.stats[key] += 1
        registry = get_active_registry()
        if registry is not None:
            registry.counter(
                f"analysis.sanitizer.{key}",
                help="GradSanitizer event total",
            ).inc()

    def _record(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)
        _logger.warning(
            kv(
                "sanitizer finding",
                code=diagnostic.code,
                location=diagnostic.location,
            )
        )

    # ------------------------------------------------------------------
    # Engine callbacks
    # ------------------------------------------------------------------
    def check_inplace_accumulate(self, dest, incoming, tensor: Tensor) -> None:
        """Called by the engine before each in-place gradient accumulation.

        ``dest`` is the dense buffer about to be mutated; ``incoming`` is
        the dense array or :class:`SparseGrad` about to be added into it.
        Overlapping storage means the scatter/add would read values it has
        already rewritten — silent corruption — so it raises.
        """
        self.stats["accumulate_checks"] += 1
        buffer = incoming.rows if isinstance(incoming, SparseGrad) else incoming
        if buffer is not None and np.may_share_memory(dest, buffer):
            self._count("aliased_accumulations")
            diagnostic = Diagnostic.make(
                "aliased-grad-accumulation",
                ERROR,
                "incoming gradient shares memory with its accumulation "
                "target; in-place add would corrupt both",
                location=tensor.name or f"tensor(shape={tensor.shape})",
                dest_shape=dest.shape,
                incoming_type=type(incoming).__name__,
            )
            self._record(diagnostic)
            raise SanitizerError(diagnostic)

    # ------------------------------------------------------------------
    # Saved-buffer verification
    # ------------------------------------------------------------------
    def _snapshot(self, out: Tensor) -> List[Tuple[Tensor, int, Optional[int], object, Optional[int]]]:
        """Record (tensor, version, fingerprint, arena, generation) per saved buffer.

        Backward closures capture their parents' ``data`` and, for ops
        like ``exp``/``sigmoid``, the output's own ``data`` — both sets
        must stay untouched until the gradient function runs.  When a
        saved buffer is owned by the active :class:`~repro.nn.arena.
        BufferArena`, its rental generation is recorded too: if the arena
        advances (recycling the buffer) before the gradient runs, the
        saved contents may have been clobbered by an unrelated rental.
        """
        arena = get_active_arena()
        tracked = list(out._parents) + [out]
        snapshot = []
        for tensor in tracked:
            fp = _fingerprint(tensor.data) if self.check_content else None
            generation = (
                arena.generation_of(tensor.data) if arena is not None else None
            )
            snapshot.append((tensor, tensor._version, fp, arena, generation))
        return snapshot

    def _verify(self, label: str, snapshot) -> None:
        self.stats["backward_checks"] += 1
        for tensor, version, fp, arena, generation in snapshot:
            where = tensor.name or f"tensor(shape={tensor.shape})"
            if generation is not None and (
                arena.generation != generation
                or arena.generation_of(tensor.data) != generation
            ):
                self._count("recycled_arena_buffers")
                diagnostic = Diagnostic.make(
                    "recycled-arena-buffer",
                    ERROR,
                    f"buffer saved for backward of op {label!r} was rented "
                    f"from the arena in generation {generation}, but the "
                    "arena has advanced — the storage may have been "
                    "recycled into an unrelated rental (copy arena buffers "
                    "before wrapping them in Tensors that outlive a step)",
                    location=where,
                    op=label,
                    rented_generation=generation,
                    current_generation=arena.generation,
                )
                self._record(diagnostic)
                raise SanitizerError(diagnostic)
            if tensor._version != version:
                self._count("stale_buffers")
                diagnostic = Diagnostic.make(
                    "stale-saved-buffer",
                    ERROR,
                    f"buffer saved for backward of op {label!r} was mutated "
                    "in place before the gradient ran (run backward before "
                    "optimizer/assign_ updates, or detach first)",
                    location=where,
                    op=label,
                    saved_version=version,
                    current_version=tensor._version,
                )
                self._record(diagnostic)
                raise SanitizerError(diagnostic)
            if fp is not None and _fingerprint(tensor.data) != fp:
                self._count("unsanctioned_mutations")
                diagnostic = Diagnostic.make(
                    "unsanctioned-mutation",
                    ERROR,
                    f"buffer saved for backward of op {label!r} changed "
                    "content without a version bump — a raw .data write "
                    "bypassed the engine's sanctioned mutation channels",
                    location=where,
                    op=label,
                )
                self._record(diagnostic)
                raise SanitizerError(diagnostic)

    # ------------------------------------------------------------------
    # Non-finite taint tracking
    # ------------------------------------------------------------------
    @staticmethod
    def _tensor_args(args) -> List[Tensor]:
        found: List[Tensor] = []
        for arg in args:
            if isinstance(arg, Tensor):
                found.append(arg)
            elif isinstance(arg, (list, tuple)):
                found.extend(a for a in arg if isinstance(a, Tensor))
        return found

    def _check_nonfinite(self, label: str, args, out: Tensor) -> None:
        # Inherit taint from any input first: downstream ops report the
        # original source, not themselves.
        for tensor in self._tensor_args(args):
            if tensor._taint is not None:
                out._taint = tensor._taint
                return
        data = out.data
        if data.dtype.kind != "f":
            return
        finite = np.isfinite(data)
        if finite.all():
            return
        taint = TaintRecord(
            op=label,
            shape=tuple(data.shape),
            dtype=str(data.dtype),
            nonfinite_count=int(data.size - np.count_nonzero(finite)),
        )
        out._taint = taint
        if label not in self._reported_nonfinite_ops:
            self._reported_nonfinite_ops.add(label)
            self._count("nonfinite_ops")
            diagnostic = Diagnostic.make(
                "nonfinite",
                ERROR if self.raise_on_nonfinite else WARNING,
                taint.describe(),
                location=label,
                shape=taint.shape,
                dtype=taint.dtype,
            )
            self._record(diagnostic)
            if self.raise_on_nonfinite:
                raise SanitizerError(diagnostic)

    # ------------------------------------------------------------------
    # Patching
    # ------------------------------------------------------------------
    def _wrap(self, label: str, fn):
        sanitizer = self

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            out = fn(*args, **kwargs)
            sanitizer.stats["forward_ops"] += 1
            if isinstance(out, Tensor):
                if sanitizer.track_nonfinite:
                    sanitizer._check_nonfinite(label, args, out)
                if out._backward_fn is not None:
                    snapshot = sanitizer._snapshot(out)
                    inner = out._backward_fn

                    def checked_backward(grad):
                        sanitizer._verify(label, snapshot)
                        return inner(grad)

                    out._backward_fn = checked_backward
            return out

        return wrapper

    def enable(self) -> "GradSanitizer":
        """Patch the Tensor op methods; raises if another sanitizer is on."""
        global _ENABLED_SANITIZER
        if _ENABLED_SANITIZER is self:
            return self
        if _ENABLED_SANITIZER is not None:
            raise RuntimeError("another GradSanitizer is already enabled")
        for method_name, label in PROFILED_OPS.items():
            original = Tensor.__dict__[method_name]
            self._originals.append((method_name, original))
            fn = original.__func__ if isinstance(original, staticmethod) else original
            wrapped = self._wrap(label, fn)
            if isinstance(original, staticmethod):
                setattr(Tensor, method_name, staticmethod(wrapped))
            else:
                setattr(Tensor, method_name, wrapped)
        set_active_sanitizer(self)
        _ENABLED_SANITIZER = self
        return self

    def disable(self) -> None:
        """Restore the original Tensor methods (idempotent)."""
        global _ENABLED_SANITIZER
        if _ENABLED_SANITIZER is not self:
            return
        for method_name, original in self._originals:
            setattr(Tensor, method_name, original)
        self._originals.clear()
        set_active_sanitizer(None)
        _ENABLED_SANITIZER = None

    @property
    def enabled(self) -> bool:
        return _ENABLED_SANITIZER is self

    def __enter__(self) -> "GradSanitizer":
        return self.enable()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.disable()
