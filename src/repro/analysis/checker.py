"""Static graph checker: shape/dtype inference over abstract batches.

The checker runs a model's forward paths on *abstract* inputs — synthetic
feature columns drawn from the model's :class:`FeatureSchema` at two
co-prime batch sizes — and aligns the two traces to recover symbolic
shapes (``(B, 32)`` instead of ``(7, 32)``).  Anything that does not
scale with the batch the way it should is reported as a
:class:`~repro.analysis.diagnostics.Diagnostic`:

* ``shape-error`` — an op raised during tracing (mismatched widths,
  bad matmul operands); the diagnostic names the deepest module that was
  executing.
* ``dtype-promotion`` — an op consumed mixed float32/float64 inputs, or
  silently widened its output dtype; the classic way a float32 run
  quietly pays float64 memory traffic.
* ``batch-broadcast-blowup`` — an op output carries more batch-sized
  axes than any input, the ``(B,) + (B,1) -> (B, B)`` accident.
* ``detached-subgraph`` — a gradient-requiring op output is unreachable
  from the path's final output: computed, differentiable, and thrown
  away.
* ``grad-less-parameter`` — a registered parameter is unreachable from
  *every* traced path, so no optimizer step can ever touch it.

Tracing uses the same patch-on-enable instrumentation as the profiler
and sanitizer (``PROFILED_OPS``), plus a ``Module.__call__`` hook that
maintains the dotted module path so findings point at
``item_encoder.head.layers.2`` rather than a bare op name.

Entry points: :func:`check_model` for one model and
``python -m repro.analysis check-model`` for the whole registry.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.analysis.diagnostics import ERROR, WARNING, Diagnostic, has_errors
from repro.data.schema import (
    GROUP_ITEM_PROFILE,
    GROUP_ITEM_STAT,
    GROUP_USER,
    CategoricalFeature,
    FeatureSchema,
    NumericFeature,
    SequenceFeature,
)
from repro.nn.module import Module
from repro.nn.tensor import Tensor, get_default_dtype
from repro.obs.autograd import PROFILED_OPS

__all__ = [
    "OpRecord",
    "PathSpec",
    "GraphTracer",
    "CheckReport",
    "check_model",
    "default_paths",
    "schema_inputs",
    "demo_schema",
]

# The two abstract batch sizes.  Co-prime and larger than any plausible
# feature width multiplier, so a dimension equals both only if it is the
# batch dimension (and equals ``k*B`` in both runs only if it genuinely
# scales with the batch).
ABSTRACT_BATCH_SIZES: Tuple[int, int] = (7, 13)


@dataclass(frozen=True)
class OpRecord:
    """One traced autograd op."""

    index: int
    op: str
    module_path: str
    out: Tensor
    input_shapes: Tuple[Tuple[int, ...], ...]
    input_dtypes: Tuple[str, ...]

    @property
    def out_shape(self) -> Tuple[int, ...]:
        return tuple(self.out.shape)

    @property
    def out_dtype(self) -> str:
        return str(self.out.dtype)

    @property
    def location(self) -> str:
        return f"{self.module_path or '<root>'}::{self.op}"


@dataclass(frozen=True)
class PathSpec:
    """A named forward path of a model (e.g. the generator path)."""

    name: str
    run: Callable[[Module, Dict[str, np.ndarray]], Tensor]


_TRACER_ACTIVE = False


class GraphTracer:
    """Records every autograd op and the module that issued it."""

    def __init__(self, module_names: Optional[Dict[int, str]] = None) -> None:
        self.records: List[OpRecord] = []
        self.module_names = module_names or {}
        self.module_stack: List[str] = []
        self.error_path: Optional[str] = None
        self._originals: List[Tuple[str, object]] = []
        self._call_original = None

    # ------------------------------------------------------------------
    @staticmethod
    def _tensor_args(args) -> List[Tensor]:
        found: List[Tensor] = []
        for arg in args:
            if isinstance(arg, Tensor):
                found.append(arg)
            elif isinstance(arg, (list, tuple)):
                found.extend(a for a in arg if isinstance(a, Tensor))
        return found

    def _wrap_op(self, label: str, fn):
        tracer = self

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            inputs = tracer._tensor_args(args)
            out = fn(*args, **kwargs)
            if isinstance(out, Tensor):
                tracer.records.append(
                    OpRecord(
                        index=len(tracer.records),
                        op=label,
                        module_path=(
                            tracer.module_stack[-1] if tracer.module_stack else ""
                        ),
                        out=out,
                        input_shapes=tuple(tuple(t.shape) for t in inputs),
                        input_dtypes=tuple(str(t.dtype) for t in inputs),
                    )
                )
            return out

        return wrapper

    def _wrap_call(self, fn):
        tracer = self

        @functools.wraps(fn)
        def wrapper(module, *args, **kwargs):
            name = tracer.module_names.get(id(module), type(module).__name__)
            tracer.module_stack.append(name)
            try:
                return fn(module, *args, **kwargs)
            except Exception:
                # Remember the *deepest* module that failed: the first
                # wrapper to see the exception is the innermost call.
                if tracer.error_path is None:
                    tracer.error_path = name
                raise
            finally:
                tracer.module_stack.pop()

        return wrapper

    # ------------------------------------------------------------------
    def __enter__(self) -> "GraphTracer":
        global _TRACER_ACTIVE
        if _TRACER_ACTIVE:
            raise RuntimeError("another GraphTracer is already active")
        for method_name, label in PROFILED_OPS.items():
            original = Tensor.__dict__[method_name]
            self._originals.append((method_name, original))
            fn = original.__func__ if isinstance(original, staticmethod) else original
            wrapped = self._wrap_op(label, fn)
            if isinstance(original, staticmethod):
                setattr(Tensor, method_name, staticmethod(wrapped))
            else:
                setattr(Tensor, method_name, wrapped)
        self._call_original = Module.__dict__["__call__"]
        Module.__call__ = self._wrap_call(self._call_original)
        _TRACER_ACTIVE = True
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        global _TRACER_ACTIVE
        for method_name, original in self._originals:
            setattr(Tensor, method_name, original)
        self._originals.clear()
        if self._call_original is not None:
            Module.__call__ = self._call_original
            self._call_original = None
        _TRACER_ACTIVE = False


# ----------------------------------------------------------------------
# Abstract inputs
# ----------------------------------------------------------------------
def schema_inputs(
    schema: FeatureSchema,
    batch_size: int,
    rng: Optional[np.random.Generator] = None,
) -> Dict[str, np.ndarray]:
    """Synthetic feature columns for every column the schema declares.

    Categorical ids are drawn uniformly from each vocabulary, numerics
    from a unit normal in the engine's default dtype, and sequence
    features get padded id matrices with a validity mask whose first slot
    is always on (so mean-pooling never divides by zero).
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    dtype = get_default_dtype()
    features: Dict[str, np.ndarray] = {}
    for feature in schema.categorical:
        features[feature.name] = rng.integers(
            0, feature.vocab_size, size=batch_size, dtype=np.int64
        )
    for feature in schema.numeric:
        features[feature.name] = rng.standard_normal(batch_size).astype(dtype)
    for feature in schema.sequence:
        features[feature.name] = rng.integers(
            0, feature.vocab_size, size=(batch_size, feature.max_len), dtype=np.int64
        )
        mask = (rng.random((batch_size, feature.max_len)) < 0.7).astype(dtype)
        mask[:, 0] = 1.0
        features[feature.mask_name] = mask
    return features


def demo_schema() -> FeatureSchema:
    """A small but structurally complete schema for registry-wide checks.

    Covers every feature kind the towers consume: categoricals, numerics
    and a sequence feature, spread over all three paper groups.
    """
    return FeatureSchema(
        categorical=[
            CategoricalFeature("user_id", 50, 8, GROUP_USER),
            CategoricalFeature("user_segment", 6, 4, GROUP_USER),
            CategoricalFeature("item_category", 12, 6, GROUP_ITEM_PROFILE),
            CategoricalFeature("item_brand", 20, 6, GROUP_ITEM_PROFILE),
        ],
        numeric=[
            NumericFeature("user_activity", GROUP_USER),
            NumericFeature("item_price", GROUP_ITEM_PROFILE),
            NumericFeature("item_ctr_7d", GROUP_ITEM_STAT),
            NumericFeature("item_clicks_7d", GROUP_ITEM_STAT),
        ],
        sequence=[
            SequenceFeature("user_pref_categories", 12, 6, 5, GROUP_USER),
        ],
    )


# ----------------------------------------------------------------------
# Path discovery
# ----------------------------------------------------------------------
def default_paths(model: Module) -> List[PathSpec]:
    """The forward paths to union when checking parameter reachability.

    Adversarial models have a generator path whose parameters never
    appear in plain ``forward``; multi-task models additionally have one
    head per task.  Checking only ``forward`` would flag those parameters
    as grad-less, so the default spec enumerates every training path the
    repo's trainers actually differentiate.
    """
    tasks = getattr(model, "TASKS", None)
    has_generator = hasattr(model, "forward_generator")
    if tasks and has_generator:
        paths = [
            PathSpec(f"forward[{task}]", lambda m, f, t=task: m.forward(f, task=t))
            for task in tasks
        ]
        paths += [
            PathSpec(
                f"forward_generator[{task}]",
                lambda m, f, t=task: m.forward_generator(f, task=t),
            )
            for task in tasks
        ]
        return paths
    paths = [PathSpec("forward", lambda m, f: m.forward(f))]
    if has_generator:
        paths.append(
            PathSpec("forward_generator", lambda m, f: m.forward_generator(f))
        )
    return paths


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------
@dataclass
class CheckReport:
    """Outcome of :func:`check_model` for one model."""

    model: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    # Rows: (path, module_path, op, symbolic inputs, symbolic output, dtype)
    shape_table: List[Tuple[str, str, str, str, str, str]] = field(
        default_factory=list
    )

    @property
    def ok(self) -> bool:
        return not has_errors(self.diagnostics)

    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.is_error]

    def format(self, show_table: bool = False) -> str:
        status = "OK" if self.ok else "FAIL"
        lines = [f"check-model {self.model}: {status}"]
        for diagnostic in sorted(self.diagnostics, key=Diagnostic.sort_key):
            lines.append("  " + diagnostic.format())
        if show_table and self.shape_table:
            lines.append(f"  {'path':<24}{'module::op':<44}{'in -> out':<36}dtype")
            for path, module, op, sym_in, sym_out, dtype in self.shape_table:
                where = f"{module or '<root>'}::{op}"
                lines.append(
                    f"  {path:<24}{where:<44}{sym_in + ' -> ' + sym_out:<36}{dtype}"
                )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Shape symbolization
# ----------------------------------------------------------------------
def _symbolize_dim(d1: int, d2: int, b1: int, b2: int) -> str:
    if d1 == d2:
        return str(d1)
    if d1 % b1 == 0 and d2 % b2 == 0 and d1 // b1 == d2 // b2:
        k = d1 // b1
        return "B" if k == 1 else f"{k}B"
    return "?"


def _symbolize_shape(
    s1: Tuple[int, ...], s2: Tuple[int, ...], b1: int, b2: int
) -> str:
    if len(s1) != len(s2):
        return str(s1)
    return "(" + ", ".join(_symbolize_dim(a, b, b1, b2) for a, b in zip(s1, s2)) + ")"


def _batch_dim_count(shape: Tuple[int, ...], batch: int) -> int:
    return sum(1 for d in shape if d == batch)


def _reachable_ids(root: Tensor) -> Set[int]:
    """Ids of every tensor reachable from ``root`` via parent links."""
    seen: Set[int] = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.extend(node._parents)
    return seen


_FLOAT_DTYPES = ("float32", "float64")


def _float_dtypes(dtypes: Sequence[str]) -> List[str]:
    return [d for d in dtypes if d in _FLOAT_DTYPES]


# ----------------------------------------------------------------------
# The checker
# ----------------------------------------------------------------------
def check_model(
    model: Module,
    schema: FeatureSchema,
    paths: Optional[Sequence[PathSpec]] = None,
    batch_sizes: Tuple[int, int] = ABSTRACT_BATCH_SIZES,
    seed: int = 0,
    model_name: Optional[str] = None,
) -> CheckReport:
    """Trace every forward path of ``model`` and report graph defects.

    The model is put in eval mode for the duration (dropout off, so the
    two abstract traces align op-for-op) and restored afterwards.
    Parameters must require gradients for reachability analysis, which
    :class:`~repro.nn.module.Parameter` guarantees.
    """
    b1, b2 = batch_sizes
    if b1 == b2:
        raise ValueError("batch_sizes must differ to identify the batch dim")
    report = CheckReport(model=model_name or type(model).__name__)
    path_specs = list(paths) if paths is not None else default_paths(model)

    module_names = {
        id(module): name for name, module in model.named_modules() if name
    }
    param_names: Dict[int, str] = {}
    for name, param in model.named_parameters():
        param_names.setdefault(id(param), name)

    was_training = model.training
    model.eval()
    reachable_param_ids: Set[int] = set()
    try:
        for spec in path_specs:
            traces: List[Optional[Tuple[List[OpRecord], Tensor]]] = []
            for batch in (b1, b2):
                rng = np.random.default_rng(seed + batch)
                features = schema_inputs(schema, batch, rng)
                tracer = GraphTracer(module_names)
                try:
                    with tracer:
                        out = spec.run(model, features)
                except Exception as error:  # noqa: BLE001 - reported, not hidden
                    report.diagnostics.append(
                        Diagnostic.make(
                            "shape-error",
                            ERROR,
                            f"{type(error).__name__}: {error}",
                            location=f"{spec.name}@{tracer.error_path or '<root>'}",
                            batch_size=batch,
                        )
                    )
                    traces.append(None)
                    continue
                traces.append((tracer.records, out))

            trace1 = traces[0]
            if trace1 is None:
                continue
            records, out = trace1
            reachable = _reachable_ids(out)
            reachable_param_ids |= reachable & set(param_names)

            # Per-op structural checks on the first trace.
            for record in records:
                floats = _float_dtypes(record.input_dtypes)
                if len(set(floats)) > 1:
                    report.diagnostics.append(
                        Diagnostic.make(
                            "dtype-promotion",
                            ERROR,
                            "op mixes float32 and float64 inputs; numpy "
                            "promotes the whole computation to float64",
                            location=f"{spec.name}@{record.location}",
                            input_dtypes=",".join(record.input_dtypes),
                        )
                    )
                elif floats and record.out_dtype in _FLOAT_DTYPES and (
                    record.out_dtype != floats[0]
                ):
                    report.diagnostics.append(
                        Diagnostic.make(
                            "dtype-promotion",
                            ERROR,
                            "op widened its output dtype relative to its "
                            "inputs (a float64 constant or literal leaked in)",
                            location=f"{spec.name}@{record.location}",
                            input_dtype=floats[0],
                            output_dtype=record.out_dtype,
                        )
                    )
                out_b = _batch_dim_count(record.out_shape, b1)
                in_b = max(
                    (_batch_dim_count(s, b1) for s in record.input_shapes),
                    default=0,
                )
                # A single new batch axis is a legitimate gather (embedding
                # lookup indexes a (vocab, dim) table with B ids); two or
                # more batch axes in one output is the (B,)+(B,1) -> (B,B)
                # broadcast accident.
                if out_b > max(in_b, 1):
                    report.diagnostics.append(
                        Diagnostic.make(
                            "batch-broadcast-blowup",
                            WARNING,
                            "op output has more batch-sized axes than any "
                            "input; a broadcast likely built a (B, B) matrix",
                            location=f"{spec.name}@{record.location}",
                            input_shapes=str(record.input_shapes),
                            output_shape=str(record.out_shape),
                        )
                    )
                if record.out.requires_grad and id(record.out) not in reachable:
                    report.diagnostics.append(
                        Diagnostic.make(
                            "detached-subgraph",
                            ERROR,
                            "differentiable op output is unreachable from "
                            "the path output: computed and discarded, its "
                            "parameters receive no gradient from this path",
                            location=f"{spec.name}@{record.location}",
                            output_shape=str(record.out_shape),
                        )
                    )

            # Symbolic shape table needs both traces, aligned op-for-op.
            trace2 = traces[1]
            if trace2 is not None:
                records2 = trace2[0]
                if len(records2) == len(records) and all(
                    a.op == b.op for a, b in zip(records, records2)
                ):
                    for rec1, rec2 in zip(records, records2):
                        sym_in = ", ".join(
                            _symbolize_shape(s1, s2, b1, b2)
                            for s1, s2 in zip(rec1.input_shapes, rec2.input_shapes)
                        )
                        sym_out = _symbolize_shape(
                            rec1.out_shape, rec2.out_shape, b1, b2
                        )
                        report.shape_table.append(
                            (
                                spec.name,
                                rec1.module_path,
                                rec1.op,
                                sym_in or "()",
                                sym_out,
                                rec1.out_dtype,
                            )
                        )
    finally:
        model.train(was_training)

    missing = sorted(
        name
        for pid, name in param_names.items()
        if pid not in reachable_param_ids
    )
    for name in missing:
        report.diagnostics.append(
            Diagnostic.make(
                "grad-less-parameter",
                ERROR,
                "parameter is unreachable from every traced forward path; "
                "no optimizer step can ever update it",
                location=name,
                paths=",".join(spec.name for spec in path_specs),
            )
        )
    return report
