"""Static and runtime analysis for the autograd engine and its models.

Three coordinated passes (see ``docs/static_analysis.md``):

* :mod:`repro.analysis.checker` — static graph checker tracing models on
  abstract batches (symbolic shapes, dtype promotions, detached
  subgraphs, grad-less parameters);
* :mod:`repro.analysis.sanitizer` — opt-in runtime sanitizer (saved
  buffer versioning, aliased accumulation, NaN/Inf taint provenance);
* :mod:`repro.analysis.lint` — engine-aware AST lint over the source
  tree (rules ``ATN001``–``ATN005``).

CLI: ``python -m repro.analysis {lint,check-model,sanitize-smoke}``.
"""

from repro.analysis.checker import (
    CheckReport,
    GraphTracer,
    PathSpec,
    check_model,
    default_paths,
    demo_schema,
    schema_inputs,
)
from repro.analysis.diagnostics import (
    Diagnostic,
    has_errors,
    render_diagnostics,
)
from repro.analysis.lint import run_lint
from repro.analysis.sanitizer import (
    GradSanitizer,
    SanitizerError,
    TaintRecord,
    sanitizer_active,
)

__all__ = [
    "CheckReport",
    "GraphTracer",
    "PathSpec",
    "check_model",
    "default_paths",
    "demo_schema",
    "schema_inputs",
    "Diagnostic",
    "has_errors",
    "render_diagnostics",
    "run_lint",
    "GradSanitizer",
    "SanitizerError",
    "TaintRecord",
    "sanitizer_active",
]
