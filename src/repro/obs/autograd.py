"""Opt-in per-op profiling of the autograd engine.

The profiler instruments :class:`repro.nn.tensor.Tensor` by wrapping its
op methods *on the class*, so every call site in the codebase — including
modules that imported ``concat``/``stack``/``embedding_lookup`` by value
(they delegate to ``Tensor`` staticmethods) — reports without any change
to model code.  For each op it records:

* **forward**: call count and wall-clock seconds of the op call itself
  (inclusive: composite ops such as ``mean`` also tick their constituent
  ``sum``/``mul`` calls);
* **backward**: call count and seconds spent in the op's gradient
  function, captured by wrapping the ``_backward_fn`` recorded on the op
  output and therefore attributed to the op that created the node.

The hook is strictly opt-in: when no profiler is enabled the engine runs
the original unwrapped methods, so disabled telemetry costs nothing.

>>> from repro.obs import AutogradProfiler
>>> from repro.nn.tensor import Tensor
>>> with AutogradProfiler() as profiler:
...     loss = (Tensor([[1.0, 2.0]], requires_grad=True) * 3.0).sum()
...     loss.backward()
>>> profiler.report()["mul"].calls
1
"""

from __future__ import annotations

import functools
import json
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.nn.tensor import Tensor

__all__ = ["OpStats", "AutogradProfiler", "PROFILED_OPS"]

# Method name on Tensor -> human-readable op label.
PROFILED_OPS: Dict[str, str] = {
    "__add__": "add",
    "__radd__": "add",
    "__sub__": "sub",
    "__rsub__": "sub",
    "__mul__": "mul",
    "__rmul__": "mul",
    "__truediv__": "div",
    "__rtruediv__": "div",
    "__neg__": "neg",
    "__pow__": "pow",
    "__matmul__": "matmul",
    "transpose": "transpose",
    "reshape": "reshape",
    "__getitem__": "getitem",
    "sum": "sum",
    "max": "max",
    "mean": "mean",
    "exp": "exp",
    "log": "log",
    "sqrt": "sqrt",
    "tanh": "tanh",
    "sigmoid": "sigmoid",
    "relu": "relu",
    "leaky_relu": "leaky_relu",
    "clip": "clip",
    "abs": "abs",
    "_concat": "concat",
    "_stack": "stack",
    "_embedding_lookup": "embedding_lookup",
    # Fused kernels (perf round 2): each subsumes a multi-node subgraph,
    # so their rows replace the unfused add/matmul/relu rows in the
    # breakdown when fusion is on.
    "_fused_linear_relu": "fused_linear_relu",
    "_fused_cross": "fused_cross",
    "_fused_mlp": "fused_mlp",
    "_fused_embedding_bag": "fused_embedding_bag",
    "_fused_bce_logits": "fused_bce_logits",
}


@dataclass
class OpStats:
    """Accumulated forward/backward timing for one op."""

    op: str
    calls: int = 0
    forward_seconds: float = 0.0
    backward_calls: int = 0
    backward_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.forward_seconds + self.backward_seconds


# Only one profiler may patch the Tensor class at a time.
_ENABLED_PROFILER: Optional["AutogradProfiler"] = None


class AutogradProfiler:
    """Times every autograd op while enabled; context-manager friendly.

    With ``record_events=True`` the profiler additionally keeps a
    bounded list of individual op occurrences — ``(label, phase,
    absolute perf_counter start, duration)`` — exported by
    :meth:`to_chrome_trace` in the Chrome Trace Event Format.  Event
    recording is off by default because training loops produce millions
    of op calls; aggregated :class:`OpStats` are always collected.
    """

    def __init__(
        self, record_events: bool = False, max_events: int = 65536
    ) -> None:
        if max_events < 0:
            raise ValueError(f"max_events must be >= 0, got {max_events}")
        self._stats: Dict[str, OpStats] = {}
        self._originals: List[Tuple[str, object]] = []
        self.record_events = record_events
        self.max_events = max_events
        # (label, "forward"|"backward", absolute start, duration).
        self._events: List[Tuple[str, str, float, float]] = []
        self.dropped_events = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _op(self, label: str) -> OpStats:
        stats = self._stats.get(label)
        if stats is None:
            stats = self._stats[label] = OpStats(label)
        return stats

    def _record_event(self, label: str, phase: str, start: float, elapsed: float) -> None:
        if len(self._events) < self.max_events:
            self._events.append((label, phase, start, elapsed))
        else:
            self.dropped_events += 1

    def _record_forward(self, label: str, start: float, elapsed: float) -> None:
        stats = self._op(label)
        stats.calls += 1
        stats.forward_seconds += elapsed
        if self.record_events:
            self._record_event(label, "forward", start, elapsed)

    def _record_backward(self, label: str, start: float, elapsed: float) -> None:
        stats = self._op(label)
        stats.backward_calls += 1
        stats.backward_seconds += elapsed
        if self.record_events:
            self._record_event(label, "backward", start, elapsed)

    def reset(self) -> None:
        """Drop all accumulated statistics."""
        self._stats.clear()
        self._events.clear()
        self.dropped_events = 0

    # ------------------------------------------------------------------
    # Patching
    # ------------------------------------------------------------------
    def _wrap(self, label: str, fn):
        profiler = self

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            start = time.perf_counter()
            out = fn(*args, **kwargs)
            profiler._record_forward(label, start, time.perf_counter() - start)
            if isinstance(out, Tensor) and out._backward_fn is not None:
                inner = out._backward_fn

                def timed_backward(grad):
                    backward_start = time.perf_counter()
                    result = inner(grad)
                    profiler._record_backward(
                        label, backward_start, time.perf_counter() - backward_start
                    )
                    return result

                out._backward_fn = timed_backward
            return out

        return wrapper

    def enable(self) -> "AutogradProfiler":
        """Patch the Tensor op methods; raises if a profiler is already on."""
        global _ENABLED_PROFILER
        if _ENABLED_PROFILER is self:
            return self
        if _ENABLED_PROFILER is not None:
            raise RuntimeError("another AutogradProfiler is already enabled")
        for method_name, label in PROFILED_OPS.items():
            original = Tensor.__dict__[method_name]
            self._originals.append((method_name, original))
            fn = original.__func__ if isinstance(original, staticmethod) else original
            wrapped = self._wrap(label, fn)
            if isinstance(original, staticmethod):
                setattr(Tensor, method_name, staticmethod(wrapped))
            else:
                setattr(Tensor, method_name, wrapped)
        _ENABLED_PROFILER = self
        return self

    def disable(self) -> None:
        """Restore the original Tensor methods (idempotent)."""
        global _ENABLED_PROFILER
        if _ENABLED_PROFILER is not self:
            return
        for method_name, original in self._originals:
            setattr(Tensor, method_name, original)
        self._originals.clear()
        _ENABLED_PROFILER = None

    @property
    def enabled(self) -> bool:
        return _ENABLED_PROFILER is self

    def __enter__(self) -> "AutogradProfiler":
        return self.enable()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.disable()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> Dict[str, OpStats]:
        """Per-op statistics keyed by op label."""
        return dict(self._stats)

    def iter_records(self):
        """One JSON-friendly record per op, hottest (by total time) first."""
        ranked = sorted(
            self._stats.values(), key=lambda s: s.total_seconds, reverse=True
        )
        for stats in ranked:
            yield {
                "op": stats.op,
                "calls": stats.calls,
                "forward_seconds": stats.forward_seconds,
                "backward_calls": stats.backward_calls,
                "backward_seconds": stats.backward_seconds,
                "total_seconds": stats.total_seconds,
            }

    def chrome_trace_events(
        self, origin: Optional[float] = None, pid: int = 1, tid: int = 2
    ) -> List[Dict[str, object]]:
        """Recorded op occurrences as Trace Event Format ``"X"`` events.

        ``origin`` maps a perf_counter instant to ``ts=0`` (defaults to
        the earliest recorded start); pass a shared origin to align with
        a :class:`~repro.obs.tracing.Tracer`'s span events.
        """
        if not self._events:
            return []
        if origin is None:
            origin = min(start for _, _, start, _ in self._events)
        return [
            {
                "name": f"{label}.{phase}",
                "cat": f"autograd.{phase}",
                "ph": "X",
                "ts": (start - origin) * 1e6,
                "dur": elapsed * 1e6,
                "pid": pid,
                "tid": tid,
                "args": {"op": label, "phase": phase},
            }
            for label, phase, start, elapsed in self._events
        ]

    def earliest_event_start(self) -> Optional[float]:
        """Earliest recorded perf_counter start (None without events)."""
        if not self._events:
            return None
        return min(start for _, _, start, _ in self._events)

    def to_chrome_trace(self) -> str:
        """The recorded events as a Chrome/Perfetto-loadable JSON string."""
        return json.dumps(
            {
                "traceEvents": self.chrome_trace_events(),
                "displayTimeUnit": "ms",
            }
        )

    def to_text(self) -> str:
        """Per-op breakdown table ordered by total time."""
        header = (
            f"{'op':<18}{'calls':>8}{'fwd_s':>12}{'bwd_calls':>11}{'bwd_s':>12}"
            f"{'total_s':>12}"
        )
        lines = [header, "-" * len(header)]
        for record in self.iter_records():
            lines.append(
                f"{record['op']:<18}{record['calls']:>8}"
                f"{record['forward_seconds']:>12.6f}{record['backward_calls']:>11}"
                f"{record['backward_seconds']:>12.6f}{record['total_seconds']:>12.6f}"
            )
        return "\n".join(lines)
