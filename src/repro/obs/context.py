"""Request-scoped trace context: follow one request through the engine.

PR 1's :class:`~repro.obs.tracing.Tracer` aggregates span stats globally
— good for "where does time go overall", useless for "why was *this*
request slow".  This module adds the per-request layer:

* a :class:`TraceContext` — ``trace_id`` / ``span_id`` / ``parent_id``
  plus free-form string ``baggage`` — that instrumented code resolves
  with :func:`current_trace_context` and stamps onto everything it
  emits (monitor samples, alerts, telemetry records, span events);
* :class:`request_scope`, the context manager the serving engine wraps
  every public entry point in.  The outermost scope opens a fresh trace;
  nested scopes (``top_k`` lazily calling ``refresh``) become child
  spans of the same trace, so the finished request carries the whole
  causal chain;
* request observers — the flight recorder and the SLO tracker register
  themselves while active and receive one :class:`RequestRecord` per
  completed root request (duration, status, engine decisions, span
  occurrences).

Like every other obs surface the context layer is pay-for-what-you-use:
with no observers, no tracer and no monitor active, a request scope
costs one counter increment and two small object allocations.

>>> from repro.obs.context import current_trace_context, request_scope
>>> with request_scope("demo") as ctx:
...     inner = current_trace_context()
...     assert inner.trace_id == ctx.trace_id
>>> current_trace_context() is None
True
"""

from __future__ import annotations

import itertools
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "TraceContext",
    "RequestRecord",
    "current_trace_context",
    "use_trace_context",
    "request_scope",
    "new_trace_id",
    "register_request_observer",
    "unregister_request_observer",
    "get_shard_label",
    "set_shard_label",
]

# Process-unique prefix + monotonically increasing counter: cheap (no
# entropy per call) yet collision-free across engines in one process and
# overwhelmingly unlikely to collide across processes merging reports.
_ID_PREFIX = os.urandom(4).hex()
_ID_COUNTER = itertools.count(1)

# Spans kept per request before the context stops recording (a runaway
# request cannot grow without bound inside the flight recorder).
MAX_SPANS_PER_REQUEST = 512


def new_trace_id() -> str:
    """A process-unique trace identifier (hex prefix + sequence)."""
    return f"{_ID_PREFIX}-{next(_ID_COUNTER):08x}"


# ----------------------------------------------------------------------
# Process-wide shard label (set once by sharded workers; stamps request
# records and flight-recorder bundle names so fleet artefacts are
# attributable per shard).
# ----------------------------------------------------------------------
_SHARD_LABEL: Optional[str] = None


def set_shard_label(label: Optional[str]) -> None:
    """Name this process's shard (None clears the label)."""
    global _SHARD_LABEL
    _SHARD_LABEL = label


def get_shard_label() -> Optional[str]:
    """This process's shard label, or None outside sharded serving."""
    return _SHARD_LABEL


class TraceContext:
    """Identity of one in-flight request (or one unit of work within it).

    Attributes
    ----------
    trace_id:
        Shared by every context in one request tree.
    span_id:
        This context's own identifier.
    parent_id:
        ``span_id`` of the enclosing context (None at the root).
    kind:
        Free-form label of the work unit (``"ingest"``, ``"refresh"``...).
    baggage:
        Small string-to-string map propagated to every child — use it for
        routing keys (shard id, experiment arm), never for payloads.
    """

    __slots__ = (
        "trace_id",
        "_span_id",
        "parent_id",
        "kind",
        "baggage",
        "spans",
        "decisions",
        "spans_dropped",
        "remote",
    )

    def __init__(
        self,
        trace_id: Optional[str] = None,
        span_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        kind: str = "",
        baggage: Optional[Dict[str, str]] = None,
        spans: Optional[List[Tuple[str, float, float]]] = None,
        decisions: Optional[Dict[str, object]] = None,
    ) -> None:
        self.trace_id = trace_id if trace_id is not None else new_trace_id()
        self._span_id = span_id
        self.parent_id = parent_id
        self.kind = kind
        self.baggage: Dict[str, str] = baggage if baggage is not None else {}
        # The root's span/decision storage is *shared* by reference with
        # every child context, so nested work lands on the same request.
        self.spans: List[Tuple[str, float, float]] = (
            spans if spans is not None else []
        )
        self.decisions: Dict[str, object] = (
            decisions if decisions is not None else {}
        )
        self.spans_dropped = 0
        # True for contexts rebuilt from an inject()-ed carrier: the
        # sending process owns the parent span, so a request_scope under
        # a remote context is this process's *local root* (it produces
        # its own RequestRecord, chained to the sender via parent_id).
        self.remote = False

    @property
    def span_id(self) -> str:
        """This context's own identifier (generated on first use).

        Lazy because most requests never open a child scope — skipping
        the id for leaves keeps the request-scope hot path cheap.
        """
        if self._span_id is None:
            self._span_id = new_trace_id()
        return self._span_id

    def child(self, kind: str) -> "TraceContext":
        """A child context: same trace, this span as parent, shared storage."""
        return TraceContext(
            trace_id=self.trace_id,
            parent_id=self.span_id,
            kind=kind,
            baggage=self.baggage,
            spans=self.spans,
            decisions=self.decisions,
        )

    def record_span(self, path: str, start: float, elapsed: float) -> None:
        """Attach one span occurrence (perf_counter start) to the request."""
        if len(self.spans) < MAX_SPANS_PER_REQUEST:
            self.spans.append((path, start, elapsed))
        else:
            self.spans_dropped += 1

    def note(self, key: str, value: object) -> None:
        """Record one engine decision (served count, cache hit, ...)."""
        self.decisions[key] = value

    # ------------------------------------------------------------------
    # Cross-process propagation
    # ------------------------------------------------------------------
    def inject(self) -> Dict[str, object]:
        """Serialise this context for a process hop (JSON-friendly).

        The carrier pins ``span_id`` (forcing lazy generation), so the
        receiving process's requests chain to *this* span and the merged
        trace renders router→shard as one tree.
        """
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "baggage": dict(self.baggage),
        }

    @classmethod
    def extract(cls, carrier: Dict[str, object]) -> "TraceContext":
        """Rebuild a remote parent context from an :meth:`inject` carrier.

        The returned context carries the sender's ``trace_id`` and
        ``span_id`` and is marked ``remote``: activate it with
        :class:`use_trace_context` and every :class:`request_scope`
        opened inside becomes a local root chained to the sender.
        """
        context = cls(
            trace_id=str(carrier["trace_id"]),
            span_id=str(carrier["span_id"]),
            kind="remote",
            baggage=dict(carrier.get("baggage") or {}),  # type: ignore[arg-type]
        )
        context.remote = True
        return context

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceContext(trace_id={self.trace_id!r}, kind={self.kind!r}, "
            f"span_id={self.span_id!r}, parent_id={self.parent_id!r})"
        )


@dataclass
class RequestRecord:
    """One completed root request, as handed to request observers.

    ``spans`` carry absolute ``perf_counter`` starts; :meth:`as_dict`
    renders them relative to the request start for JSONL bundles.
    """

    trace_id: str
    kind: str
    started_unix: float
    started_perf: float
    duration_seconds: float
    status: str  # "ok" | "error"
    error: Optional[str] = None
    decisions: Dict[str, object] = field(default_factory=dict)
    spans: List[Tuple[str, float, float]] = field(default_factory=list)
    spans_dropped: int = 0
    # Cross-process identity: the request's own span id (None when the
    # context never minted one), the remote parent span it chains to,
    # and the emitting process — these joins let a collector stitch
    # bundles from different processes into one tree per trace_id.
    span_id: Optional[str] = None
    parent_id: Optional[str] = None
    pid: int = 0
    shard: Optional[str] = None

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly rendering (span starts relative to the request)."""
        return {
            "trace_id": self.trace_id,
            "kind": self.kind,
            "started_unix": self.started_unix,
            "duration_seconds": self.duration_seconds,
            "status": self.status,
            "error": self.error,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": self.pid,
            "shard": self.shard,
            "decisions": dict(self.decisions),
            "spans": [
                {
                    "path": path,
                    "start_seconds": start - self.started_perf,
                    "duration_seconds": elapsed,
                }
                for path, start, elapsed in self.spans
            ],
            "spans_dropped": self.spans_dropped,
        }

    def span_self_times(self) -> Dict[str, float]:
        """Exclusive (self) time per span path within this request.

        A span's children are exactly the recorded spans whose path
        extends it by one segment; their durations are subtracted from
        the parent's to give hot-path attribution without exporting a
        Chrome trace.
        """
        totals: Dict[str, float] = {}
        child_time: Dict[str, float] = {}
        for path, _, elapsed in self.spans:
            totals[path] = totals.get(path, 0.0) + elapsed
            if "/" in path:
                parent = path.rsplit("/", 1)[0]
                child_time[parent] = child_time.get(parent, 0.0) + elapsed
        return {
            path: total - child_time.get(path, 0.0)
            for path, total in totals.items()
        }

    def hottest_span(self) -> Optional[str]:
        """The span path with the largest self time (None without spans)."""
        self_times = self.span_self_times()
        if not self_times:
            return None
        return max(self_times.items(), key=lambda item: item[1])[0]


# ----------------------------------------------------------------------
# Active-context scoping (mirrors use_registry / use_tracer)
# ----------------------------------------------------------------------
_ACTIVE_CONTEXTS: List[TraceContext] = []


def current_trace_context() -> Optional[TraceContext]:
    """The innermost active trace context, or None outside any request."""
    return _ACTIVE_CONTEXTS[-1] if _ACTIVE_CONTEXTS else None


class use_trace_context:
    """Context manager activating an externally built ``TraceContext``.

    The serving engine uses :class:`request_scope`; this lower-level
    scope exists for callers that carry a context across boundaries
    (e.g. replaying a recorded request, or propagating a caller-supplied
    trace into the engine).
    """

    def __init__(self, context: TraceContext) -> None:
        self._context = context

    def __enter__(self) -> TraceContext:
        _ACTIVE_CONTEXTS.append(self._context)
        return self._context

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        for position in range(len(_ACTIVE_CONTEXTS) - 1, -1, -1):
            if _ACTIVE_CONTEXTS[position] is self._context:
                del _ACTIVE_CONTEXTS[position]
                break


# ----------------------------------------------------------------------
# Request observers (flight recorder, SLO tracker)
# ----------------------------------------------------------------------
_REQUEST_OBSERVERS: List[object] = []


def register_request_observer(observer: object) -> None:
    """Start delivering completed :class:`RequestRecord`s to ``observer``.

    ``observer`` must expose ``on_request(record: RequestRecord)``.
    """
    _REQUEST_OBSERVERS.append(observer)


def unregister_request_observer(observer: object) -> None:
    """Stop delivering requests to ``observer`` (no-op when absent)."""
    for position in range(len(_REQUEST_OBSERVERS) - 1, -1, -1):
        if _REQUEST_OBSERVERS[position] is observer:
            del _REQUEST_OBSERVERS[position]
            break


class request_scope:
    """Scope one serving request: open/propagate a trace, notify observers.

    Entering with no active context opens a *root* request (fresh
    ``trace_id``); entering inside one opens a child span of the same
    trace and produces no separate observer record — the root accounts
    for the nested work.  A *remote* parent (rebuilt via
    :meth:`TraceContext.extract`) counts as no local parent: the scope
    becomes this process's local root and produces its own record,
    chained to the sender through ``parent_id``.  Exceptions mark the
    request ``"error"`` and propagate after observers are notified (the
    flight recorder uses that to dump a postmortem bundle).
    """

    __slots__ = ("kind", "baggage", "context", "_root", "_start_perf", "_start_unix")

    def __init__(self, kind: str, baggage: Optional[Dict[str, str]] = None) -> None:
        self.kind = kind
        self.baggage = baggage
        self.context: Optional[TraceContext] = None
        self._root = False
        self._start_perf = 0.0
        self._start_unix = 0.0

    def __enter__(self) -> TraceContext:
        parent = current_trace_context()
        if parent is None:
            self.context = TraceContext(kind=self.kind, baggage=self.baggage)
            self._root = True
        else:
            self.context = parent.child(self.kind)
            if self.baggage:
                self.context.baggage.update(self.baggage)
            self._root = parent.remote
        _ACTIVE_CONTEXTS.append(self.context)
        self._start_perf = time.perf_counter()
        if self._root and _REQUEST_OBSERVERS:
            self._start_unix = time.time()
        return self.context

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        duration = time.perf_counter() - self._start_perf
        for position in range(len(_ACTIVE_CONTEXTS) - 1, -1, -1):
            if _ACTIVE_CONTEXTS[position] is self.context:
                del _ACTIVE_CONTEXTS[position]
                break
        if not self._root or not _REQUEST_OBSERVERS:
            return
        context = self.context
        record = RequestRecord(
            trace_id=context.trace_id,
            kind=context.kind,
            started_unix=self._start_unix,
            started_perf=self._start_perf,
            duration_seconds=duration,
            status="ok" if exc_type is None else "error",
            error=None if exc_value is None else repr(exc_value),
            decisions=context.decisions,
            spans=context.spans,
            spans_dropped=context.spans_dropped,
            span_id=context._span_id,
            parent_id=context.parent_id,
            pid=os.getpid(),
            shard=_SHARD_LABEL,
        )
        for observer in list(_REQUEST_OBSERVERS):
            observer.on_request(record)
