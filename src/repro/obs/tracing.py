"""Span tracing: nested wall-clock timing with call counts.

A :class:`Tracer` aggregates timing by *span path*: entering a span while
another is open nests it, and the child's statistics are recorded under
``"parent/child"``.  Spans are cheap (two ``perf_counter`` calls plus a
dict update), so instrumented paths can stay traced in production runs.

>>> from repro.obs import Tracer
>>> tracer = Tracer()
>>> with tracer.span("refresh"):
...     with tracer.span("encode"):
...         pass
>>> sorted(tracer.report())
['refresh', 'refresh/encode']

Instrumented library code uses :func:`maybe_span`, which resolves the
currently active tracer (see :class:`use_tracer`) and degrades to a no-op
context manager when tracing is off.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["SpanStats", "Span", "Tracer", "get_active_tracer", "use_tracer", "maybe_span"]


@dataclass
class SpanStats:
    """Aggregated timing for one span path."""

    calls: int = 0
    total_seconds: float = 0.0
    min_seconds: float = math.inf
    max_seconds: float = 0.0

    def record(self, elapsed: float) -> None:
        self.calls += 1
        self.total_seconds += elapsed
        self.min_seconds = min(self.min_seconds, elapsed)
        self.max_seconds = max(self.max_seconds, elapsed)


class Span:
    """Context manager timing one section under the tracer's current path."""

    __slots__ = ("_tracer", "name", "path", "_start", "elapsed")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        if not name or "/" in name:
            raise ValueError(f"span name must be non-empty and '/'-free, got {name!r}")
        self._tracer = tracer
        self.name = name
        self.path: Optional[str] = None
        self._start: Optional[float] = None
        self.elapsed = 0.0

    def __enter__(self) -> "Span":
        self.path = self._tracer._push(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if self._start is None:
            return
        start = self._start
        self.elapsed = time.perf_counter() - start
        self._start = None
        self._tracer._pop(self.path, start, self.elapsed)


class Tracer:
    """Collects :class:`SpanStats` keyed by nested span path.

    With ``record_events=True`` (the default) the tracer additionally
    keeps a bounded list of individual span occurrences — ``(path,
    absolute perf_counter start, duration)`` — which
    :meth:`to_chrome_trace` exports in the Chrome Trace Event Format
    (load the file in ``chrome://tracing`` or https://ui.perfetto.dev).
    Recording stops silently once ``max_events`` occurrences have been
    kept; :attr:`dropped_events` counts the overflow.  Aggregated
    :class:`SpanStats` are unaffected by the cap.
    """

    def __init__(self, record_events: bool = True, max_events: int = 65536) -> None:
        if max_events < 0:
            raise ValueError(f"max_events must be >= 0, got {max_events}")
        self._stats: Dict[str, SpanStats] = {}
        self._stack: List[str] = []
        self.record_events = record_events
        self.max_events = max_events
        # (path, absolute perf_counter start, duration) per occurrence.
        self._events: List[Tuple[str, float, float]] = []
        self.dropped_events = 0

    def span(self, name: str) -> Span:
        """A context manager timing ``name`` nested under any open spans."""
        return Span(self, name)

    def _push(self, name: str) -> str:
        path = f"{self._stack[-1]}/{name}" if self._stack else name
        self._stack.append(path)
        return path

    def _pop(self, path: str, start: float, elapsed: float) -> None:
        if self._stack and self._stack[-1] == path:
            self._stack.pop()
        self._stats.setdefault(path, SpanStats()).record(elapsed)
        if self.record_events:
            if len(self._events) < self.max_events:
                self._events.append((path, start, elapsed))
            else:
                self.dropped_events += 1

    def stats(self, path: str) -> SpanStats:
        """Aggregated stats for one span path (KeyError if never entered)."""
        return self._stats[path]

    def report(self) -> Dict[str, SpanStats]:
        """All span paths with their aggregated stats."""
        return dict(self._stats)

    def iter_records(self):
        """One JSON-friendly record per span path (sorted)."""
        for path in sorted(self._stats):
            stats = self._stats[path]
            yield {
                "path": path,
                "calls": stats.calls,
                "total_seconds": stats.total_seconds,
                "min_seconds": stats.min_seconds,
                "max_seconds": stats.max_seconds,
            }

    def to_text(self) -> str:
        """Indented tree-ish dump ordered by path."""
        lines = []
        for record in self.iter_records():
            depth = record["path"].count("/")
            lines.append(
                "  " * depth
                + f"{record['path'].rsplit('/', 1)[-1]} "
                + f"calls={record['calls']} total={record['total_seconds']:.6g}s"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Chrome Trace Event Format export
    # ------------------------------------------------------------------
    def chrome_trace_events(
        self, origin: Optional[float] = None, pid: int = 1, tid: int = 1
    ) -> List[Dict[str, object]]:
        """Recorded occurrences as Trace Event Format ``"X"`` events.

        ``origin`` is the perf_counter instant mapped to ``ts=0``; it
        defaults to the earliest recorded start, and callers merging
        several event sources (e.g. a tracer plus an autograd profiler)
        pass a shared origin so the timelines align.
        """
        if not self._events:
            return []
        if origin is None:
            origin = min(start for _, start, _ in self._events)
        return [
            {
                "name": path.rsplit("/", 1)[-1],
                "cat": "span",
                "ph": "X",
                "ts": (start - origin) * 1e6,
                "dur": elapsed * 1e6,
                "pid": pid,
                "tid": tid,
                "args": {"path": path},
            }
            for path, start, elapsed in self._events
        ]

    def earliest_event_start(self) -> Optional[float]:
        """Earliest recorded perf_counter start (None without events)."""
        if not self._events:
            return None
        return min(start for _, start, _ in self._events)

    def to_chrome_trace(self) -> str:
        """The recorded events as a Chrome/Perfetto-loadable JSON string."""
        return json.dumps(
            {
                "traceEvents": self.chrome_trace_events(),
                "displayTimeUnit": "ms",
            }
        )


# ----------------------------------------------------------------------
# Active-tracer scoping
# ----------------------------------------------------------------------
_ACTIVE_TRACERS: List[Tracer] = []


def get_active_tracer() -> Optional[Tracer]:
    """The innermost active tracer, or None when tracing is off."""
    return _ACTIVE_TRACERS[-1] if _ACTIVE_TRACERS else None


class use_tracer:
    """Context manager activating ``tracer`` for the enclosed block."""

    def __init__(self, tracer: Tracer) -> None:
        self._tracer = tracer

    def __enter__(self) -> Tracer:
        _ACTIVE_TRACERS.append(self._tracer)
        return self._tracer

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        for position in range(len(_ACTIVE_TRACERS) - 1, -1, -1):
            if _ACTIVE_TRACERS[position] is self._tracer:
                del _ACTIVE_TRACERS[position]
                break


class _NullSpan:
    """No-op stand-in used when no tracer is active."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        return None


_NULL_SPAN = _NullSpan()


def maybe_span(name: str):
    """A span on the active tracer, or a shared no-op context manager."""
    tracer = get_active_tracer()
    return tracer.span(name) if tracer is not None else _NULL_SPAN
