"""Span tracing: nested wall-clock timing with call counts.

A :class:`Tracer` aggregates timing by *span path*: entering a span while
another is open nests it, and the child's statistics are recorded under
``"parent/child"``.  Spans are cheap (two ``perf_counter`` calls plus a
dict update), so instrumented paths can stay traced in production runs.

>>> from repro.obs import Tracer
>>> tracer = Tracer()
>>> with tracer.span("refresh"):
...     with tracer.span("encode"):
...         pass
>>> sorted(tracer.report())
['refresh', 'refresh/encode']

Instrumented library code uses :func:`maybe_span`, which resolves the
currently active tracer (see :class:`use_tracer`) and degrades to a no-op
context manager when tracing is off.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.context import _ACTIVE_CONTEXTS as _CONTEXT_STACK
from repro.obs.metrics import get_active_registry

__all__ = ["SpanStats", "Span", "Tracer", "get_active_tracer", "use_tracer", "maybe_span"]


@dataclass
class SpanStats:
    """Aggregated timing for one span path.

    ``child_seconds`` accumulates the wall time spent inside *direct*
    child spans, so ``self_seconds`` — the span's exclusive time — is
    available without exporting a Chrome trace.
    """

    calls: int = 0
    total_seconds: float = 0.0
    min_seconds: float = math.inf
    max_seconds: float = 0.0
    child_seconds: float = 0.0

    def record(self, elapsed: float, child_seconds: float = 0.0) -> None:
        self.calls += 1
        self.total_seconds += elapsed
        if elapsed < self.min_seconds:
            self.min_seconds = elapsed
        if elapsed > self.max_seconds:
            self.max_seconds = elapsed
        self.child_seconds += child_seconds

    @property
    def self_seconds(self) -> float:
        """Exclusive time: total minus time spent in direct children."""
        return self.total_seconds - self.child_seconds


class Span:
    """Context manager timing one section under the tracer's current path."""

    __slots__ = ("_tracer", "name", "path", "_start", "elapsed")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        if not name or "/" in name:
            raise ValueError(f"span name must be non-empty and '/'-free, got {name!r}")
        self._tracer = tracer
        self.name = name
        self.path: Optional[str] = None
        self._start: Optional[float] = None
        self.elapsed = 0.0

    # Enter/exit inline the tracer bookkeeping: spans sit on serving hot
    # paths at hundreds per request batch, so the extra method hops of a
    # tracer._push/_pop pair are measurable in the overhead bench.
    def __enter__(self) -> "Span":
        tracer = self._tracer
        stack = tracer._stack
        path = f"{stack[-1]}/{self.name}" if stack else self.name
        self.path = path
        stack.append(path)
        tracer._child_acc.append(0.0)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        start = self._start
        if start is None:
            return
        elapsed = time.perf_counter() - start
        self.elapsed = elapsed
        self._start = None
        tracer = self._tracer
        path = self.path
        stack = tracer._stack
        children = 0.0
        if stack and stack[-1] == path:
            stack.pop()
            acc = tracer._child_acc
            children = acc.pop()
            if acc:
                acc[-1] += elapsed
        stats = tracer._stats.get(path)
        if stats is None:
            stats = tracer._stats[path] = SpanStats()
        stats.record(elapsed, children)
        context = _CONTEXT_STACK[-1] if _CONTEXT_STACK else None
        if context is not None:
            context.record_span(path, start, elapsed)
        if tracer.record_events:
            events = tracer._events
            if len(events) < tracer.max_events:
                events.append(
                    (path, start, elapsed,
                     None if context is None else context.trace_id)
                )
            else:
                # Silent span loss would poison trace-based conclusions:
                # surface the overflow as a counter and in every export.
                tracer.dropped_events += 1
                registry = get_active_registry()
                if registry is not None:
                    registry.counter("tracer.events_dropped").inc()


class Tracer:
    """Collects :class:`SpanStats` keyed by nested span path.

    With ``record_events=True`` (the default) the tracer additionally
    keeps a bounded list of individual span occurrences — ``(path,
    absolute perf_counter start, duration)`` — which
    :meth:`to_chrome_trace` exports in the Chrome Trace Event Format
    (load the file in ``chrome://tracing`` or https://ui.perfetto.dev).
    Recording stops once ``max_events`` occurrences have been kept;
    :attr:`dropped_events` counts the overflow, the active registry's
    ``tracer.events_dropped`` counter mirrors it, and both
    :meth:`to_text` and :meth:`to_chrome_trace` report the drop count so
    a truncated timeline can never pass for a complete one.  Aggregated
    :class:`SpanStats` are unaffected by the cap.

    When a :class:`~repro.obs.context.TraceContext` is active, each
    recorded occurrence additionally carries the request's ``trace_id``
    (exported in Chrome-trace ``args``) and is appended to the request's
    own span list for the flight recorder.
    """

    def __init__(self, record_events: bool = True, max_events: int = 65536) -> None:
        if max_events < 0:
            raise ValueError(f"max_events must be >= 0, got {max_events}")
        self._stats: Dict[str, SpanStats] = {}
        self._stack: List[str] = []
        self._child_acc: List[float] = []  # child time of each open span
        self.record_events = record_events
        self.max_events = max_events
        # (path, absolute perf_counter start, duration, trace_id) per
        # occurrence; trace_id is None outside any request scope.
        self._events: List[Tuple[str, float, float, Optional[str]]] = []
        self.dropped_events = 0

    def span(self, name: str) -> Span:
        """A context manager timing ``name`` nested under any open spans."""
        return Span(self, name)

    def stats(self, path: str) -> SpanStats:
        """Aggregated stats for one span path (KeyError if never entered)."""
        return self._stats[path]

    def report(self) -> Dict[str, SpanStats]:
        """All span paths with their aggregated stats."""
        return dict(self._stats)

    def iter_records(self):
        """One JSON-friendly record per span path (sorted)."""
        for path in sorted(self._stats):
            stats = self._stats[path]
            yield {
                "path": path,
                "calls": stats.calls,
                "total_seconds": stats.total_seconds,
                "self_seconds": stats.self_seconds,
                "min_seconds": stats.min_seconds,
                "max_seconds": stats.max_seconds,
            }

    def to_text(self) -> str:
        """Indented tree-ish dump ordered by path (with exclusive time)."""
        lines = []
        for record in self.iter_records():
            depth = record["path"].count("/")
            lines.append(
                "  " * depth
                + f"{record['path'].rsplit('/', 1)[-1]} "
                + f"calls={record['calls']} total={record['total_seconds']:.6g}s "
                + f"self={record['self_seconds']:.6g}s"
            )
        if self.dropped_events:
            lines.append(
                f"events dropped: {self.dropped_events} "
                f"(cap max_events={self.max_events}; aggregated stats are "
                "complete, per-event exports are truncated)"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Chrome Trace Event Format export
    # ------------------------------------------------------------------
    def chrome_trace_events(
        self, origin: Optional[float] = None, pid: int = 1, tid: int = 1
    ) -> List[Dict[str, object]]:
        """Recorded occurrences as Trace Event Format ``"X"`` events.

        ``origin`` is the perf_counter instant mapped to ``ts=0``; it
        defaults to the earliest recorded start, and callers merging
        several event sources (e.g. a tracer plus an autograd profiler)
        pass a shared origin so the timelines align.
        """
        if not self._events:
            return []
        if origin is None:
            origin = min(start for _, start, _, _ in self._events)
        events: List[Dict[str, object]] = []
        for path, start, elapsed, trace_id in self._events:
            args: Dict[str, object] = {"path": path}
            if trace_id is not None:
                args["trace_id"] = trace_id
            events.append(
                {
                    "name": path.rsplit("/", 1)[-1],
                    "cat": "span",
                    "ph": "X",
                    "ts": (start - origin) * 1e6,
                    "dur": elapsed * 1e6,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
        return events

    def snapshot_state(self) -> Dict[str, object]:
        """Mergeable event-recording accounting for fleet snapshots.

        Per-event payloads stay local (bundles carry them); what ships
        is the loss accounting, so a collector can surface per-shard and
        fleet-wide sampling loss (``tracer.dropped``).
        """
        return {
            "events_recorded": len(self._events),
            "events_dropped": self.dropped_events,
            "max_events": self.max_events,
        }

    def earliest_event_start(self) -> Optional[float]:
        """Earliest recorded perf_counter start (None without events)."""
        if not self._events:
            return None
        return min(start for _, start, _, _ in self._events)

    def to_chrome_trace(self) -> str:
        """The recorded events as a Chrome/Perfetto-loadable JSON string.

        The top-level ``metadata`` object carries the event-recording
        accounting — in particular ``events_dropped``, so a truncated
        timeline is detectable from the file alone.
        """
        return json.dumps(
            {
                "traceEvents": self.chrome_trace_events(),
                "displayTimeUnit": "ms",
                "metadata": {
                    "events_recorded": len(self._events),
                    "events_dropped": self.dropped_events,
                    "max_events": self.max_events,
                },
            }
        )


# ----------------------------------------------------------------------
# Active-tracer scoping
# ----------------------------------------------------------------------
_ACTIVE_TRACERS: List[Tracer] = []


def get_active_tracer() -> Optional[Tracer]:
    """The innermost active tracer, or None when tracing is off."""
    return _ACTIVE_TRACERS[-1] if _ACTIVE_TRACERS else None


class use_tracer:
    """Context manager activating ``tracer`` for the enclosed block."""

    def __init__(self, tracer: Tracer) -> None:
        self._tracer = tracer

    def __enter__(self) -> Tracer:
        _ACTIVE_TRACERS.append(self._tracer)
        return self._tracer

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        for position in range(len(_ACTIVE_TRACERS) - 1, -1, -1):
            if _ACTIVE_TRACERS[position] is self._tracer:
                del _ACTIVE_TRACERS[position]
                break


class _NullSpan:
    """No-op stand-in used when no tracer is active."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        return None


_NULL_SPAN = _NullSpan()


def maybe_span(name: str):
    """A span on the active tracer, or a shared no-op context manager."""
    return Span(_ACTIVE_TRACERS[-1], name) if _ACTIVE_TRACERS else _NULL_SPAN
