"""Serving flight recorder: recent request traces + postmortem bundles.

The aggregated tracer answers "where does time go"; the flight recorder
answers "what exactly happened around *this* incident".  While active
(:class:`use_flight_recorder`) it receives every completed root request
from :mod:`repro.obs.context` and keeps

* a bounded **ring buffer** of the most recent
  :class:`~repro.obs.context.RequestRecord`s (span tree + engine
  decisions: scores served, top-k order-cache hit/miss, slots
  rescored), and
* **tail exemplars** — the slowest requests seen over the whole run,
  retained even after the ring has wrapped many times, so the p99
  outlier that fired an alert an hour ago is still inspectable.

When an alert fires (any :class:`~repro.obs.alerts.AlertEngine` — the
quality monitor's or the SLO tracker's) or an exception escapes a
request scope, the recorder dumps a **postmortem bundle**: a directory
with

* ``META.json`` — reason, timestamps, counts;
* ``requests.jsonl`` — every retained request (ring + exemplars);
* ``trace.json`` — the retained requests as a Chrome/Perfetto trace,
  one thread lane per request;
* ``snapshot.json`` — the monitor/SLO/alert/registry state at dump time.

Replay a bundle from the shell::

    python -m repro.obs.flight results/postmortems/postmortem-001-alert-...

which prints the slowest exemplars with their span trees and names each
request's hottest span by *self* time — usually all that is needed to
attribute the outlier.
"""

from __future__ import annotations

import heapq
import itertools
import json
import os
import re
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.obs.alerts import (
    Alert,
    register_alert_observer,
    unregister_alert_observer,
)
from repro.obs.context import (
    RequestRecord,
    get_shard_label,
    register_request_observer,
    unregister_request_observer,
)
from repro.obs.logging import get_logger, kv
from repro.obs.metrics import get_active_registry

__all__ = [
    "FlightRecorder",
    "get_active_flight_recorder",
    "use_flight_recorder",
    "load_bundle",
    "render_bundle",
    "main",
]

_LOGGER = get_logger("obs.flight")


def _slug(text: str, max_length: int = 48) -> str:
    return re.sub(r"[^a-zA-Z0-9_.-]+", "-", text).strip("-")[:max_length] or "dump"


class FlightRecorder:
    """Bounded request history with tail-exemplar sampling.

    Parameters
    ----------
    capacity:
        Ring-buffer size (most recent requests).
    tail_exemplars:
        How many of the slowest requests to retain beyond the ring.
    postmortem_dir:
        Where automatic bundles land; None disables automatic dumps
        (explicit :meth:`dump_postmortem` still works with an explicit
        directory).
    auto_dump:
        Dump a bundle when an alert fires or a request errors.
    dump_debounce:
        Minimum completed requests between automatic dumps — an alert
        storm produces one bundle per traffic window, not one per
        transition.
    max_dumps:
        Hard cap on automatic bundles per recorder.
    """

    def __init__(
        self,
        capacity: int = 512,
        tail_exemplars: int = 16,
        postmortem_dir: Optional[Union[str, Path]] = None,
        auto_dump: bool = True,
        dump_debounce: int = 64,
        max_dumps: int = 8,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if tail_exemplars < 0:
            raise ValueError(
                f"tail_exemplars must be >= 0, got {tail_exemplars}"
            )
        self.capacity = capacity
        self.tail_exemplars = tail_exemplars
        self.postmortem_dir = (
            Path(postmortem_dir) if postmortem_dir is not None else None
        )
        self.auto_dump = auto_dump
        self.dump_debounce = dump_debounce
        self.max_dumps = max_dumps
        self._ring: List[RequestRecord] = []
        self._ring_next = 0  # insertion cursor once the ring is full
        # Min-heap of (duration, seq, record): the root is the *fastest*
        # retained exemplar, evicted first when a slower request arrives.
        self._slowest: List[Tuple[float, int, RequestRecord]] = []
        self._seq = itertools.count()
        self.requests_recorded = 0
        self.requests_failed = 0
        self.dumps: List[Path] = []
        self._last_dump_at = None  # requests_recorded at the last auto dump

    # ------------------------------------------------------------------
    # Intake
    # ------------------------------------------------------------------
    def on_request(self, record: RequestRecord) -> None:
        """Request-observer hook: retain one completed root request."""
        self.requests_recorded += 1
        if len(self._ring) < self.capacity:
            self._ring.append(record)
        else:
            self._ring[self._ring_next] = record
            self._ring_next = (self._ring_next + 1) % self.capacity
        if self.tail_exemplars:
            slowest = self._slowest
            if len(slowest) < self.tail_exemplars:
                heapq.heappush(
                    slowest, (record.duration_seconds, next(self._seq), record)
                )
            elif record.duration_seconds > slowest[0][0]:
                heapq.heapreplace(
                    slowest, (record.duration_seconds, next(self._seq), record)
                )
        registry = get_active_registry()
        if registry is not None:
            registry.counter("flight.requests_recorded").inc()
        if record.status != "ok":
            self.requests_failed += 1
            if registry is not None:
                registry.counter("flight.requests_failed").inc()
            self._maybe_auto_dump(f"exception-{record.kind}", error=record.error)

    def on_alert(self, alert: Alert) -> None:
        """Fired-alert observer hook: snapshot the surrounding traffic."""
        self._maybe_auto_dump(f"alert-{alert.rule}", alert=alert)

    def _maybe_auto_dump(self, reason: str, alert=None, error=None) -> None:
        if not self.auto_dump or self.postmortem_dir is None:
            return
        if len(self.dumps) >= self.max_dumps:
            return
        if (
            self._last_dump_at is not None
            and self.requests_recorded - self._last_dump_at < self.dump_debounce
        ):
            return
        self._last_dump_at = self.requests_recorded
        self.dump_postmortem(reason, alert=alert, error=error)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def recent(self) -> List[RequestRecord]:
        """Ring-buffer contents, oldest first."""
        return self._ring[self._ring_next:] + self._ring[: self._ring_next]

    def slowest_requests(self, n: Optional[int] = None) -> List[RequestRecord]:
        """Tail exemplars ordered slowest first."""
        ordered = [
            entry[2]
            for entry in sorted(self._slowest, key=lambda e: -e[0])
        ]
        return ordered if n is None else ordered[:n]

    def retained(self) -> List[RequestRecord]:
        """Ring plus exemplars (deduplicated), oldest first."""
        seen = set()
        out: List[RequestRecord] = []
        for record in self.recent() + self.slowest_requests():
            key = id(record)
            if key not in seen:
                seen.add(key)
                out.append(record)
        out.sort(key=lambda record: record.started_perf)
        return out

    def iter_records(self) -> Iterator[Dict[str, object]]:
        """One JSON-friendly ``request`` record per retained request."""
        exemplars = {id(record) for record in self.slowest_requests()}
        for record in self.retained():
            out: Dict[str, object] = {"type": "request"}
            out.update(record.as_dict())
            out["tail_exemplar"] = id(record) in exemplars
            yield out

    def to_text(self) -> str:
        """Short human-readable recorder summary."""
        lines = [
            "flight recorder: "
            f"{self.requests_recorded} requests seen, "
            f"{len(self._ring)} in ring, "
            f"{len(self._slowest)} tail exemplars, "
            f"{self.requests_failed} failed, "
            f"{len(self.dumps)} postmortem(s)"
        ]
        for record in self.slowest_requests(5):
            hottest = record.hottest_span()
            lines.append(
                f"  slowest {record.kind} {record.trace_id}: "
                f"{record.duration_seconds * 1e3:.3f} ms"
                + (f" (hottest span: {hottest})" if hottest else "")
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Postmortem bundles
    # ------------------------------------------------------------------
    def chrome_trace_events(self) -> List[Dict[str, object]]:
        """Retained requests as Trace Event Format events, one lane each."""
        retained = self.retained()
        if not retained:
            return []
        origin = min(record.started_perf for record in retained)
        events: List[Dict[str, object]] = []
        for tid, record in enumerate(retained, start=1):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {
                        "name": f"{record.kind} {record.trace_id} "
                        f"[{record.status}]"
                    },
                }
            )
            events.append(
                {
                    "name": f"request:{record.kind}",
                    "cat": "request",
                    "ph": "X",
                    "ts": (record.started_perf - origin) * 1e6,
                    "dur": record.duration_seconds * 1e6,
                    "pid": 1,
                    "tid": tid,
                    "args": {
                        "trace_id": record.trace_id,
                        "status": record.status,
                        "decisions": {
                            key: repr(value)
                            for key, value in record.decisions.items()
                        },
                    },
                }
            )
            for path, start, elapsed in record.spans:
                events.append(
                    {
                        "name": path.rsplit("/", 1)[-1],
                        "cat": "span",
                        "ph": "X",
                        "ts": (start - origin) * 1e6,
                        "dur": elapsed * 1e6,
                        "pid": 1,
                        "tid": tid,
                        "args": {"path": path, "trace_id": record.trace_id},
                    }
                )
        return events

    def dump_postmortem(
        self,
        reason: str,
        directory: Optional[Union[str, Path]] = None,
        alert: Optional[Alert] = None,
        error: Optional[str] = None,
    ) -> Path:
        """Write a bundle directory and return its path.

        The surrounding monitor/SLO/registry state is resolved from the
        ambient scopes at dump time, so the snapshot reflects exactly
        what the alert rules saw.
        """
        # Imported here so the flight recorder has no import-time
        # dependency on the quality/SLO modules (they are optional at
        # dump time anyway).
        from repro.obs.quality import get_active_monitor
        from repro.obs.slo import get_active_slo_tracker

        base = Path(directory) if directory is not None else self.postmortem_dir
        if base is None:
            raise ValueError(
                "no directory given and the recorder has no postmortem_dir"
            )
        # The name carries pid (and shard label when set): N shards
        # dumping into a shared directory in the same second must not
        # collide, and a fleet postmortem should be attributable at a
        # glance.
        shard = get_shard_label()
        suffix = f"-p{os.getpid()}" + (f"-{_slug(shard)}" if shard else "")
        bundle = base / (
            f"postmortem-{len(self.dumps) + 1:03d}-{_slug(reason)}{suffix}"
        )
        bundle.mkdir(parents=True, exist_ok=True)

        retained = self.retained()
        slowest = self.slowest_requests()
        meta: Dict[str, object] = {
            "reason": reason,
            "created_unix": time.time(),
            "requests_recorded": self.requests_recorded,
            "requests_failed": self.requests_failed,
            "requests_retained": len(retained),
            "tail_exemplars": [record.trace_id for record in slowest],
            "slowest_trace_id": slowest[0].trace_id if slowest else None,
            "alert": None if alert is None else alert.as_dict(),
            "error": error,
        }
        (bundle / "META.json").write_text(
            json.dumps(meta, indent=2), encoding="utf-8"
        )
        with open(bundle / "requests.jsonl", "w", encoding="utf-8") as handle:
            for record in self.iter_records():
                handle.write(json.dumps(record) + "\n")
        (bundle / "trace.json").write_text(
            json.dumps(
                {
                    "traceEvents": self.chrome_trace_events(),
                    "displayTimeUnit": "ms",
                    "metadata": {"reason": reason},
                }
            ),
            encoding="utf-8",
        )
        snapshot: Dict[str, object] = {}
        monitor = get_active_monitor()
        if monitor is not None:
            snapshot["quality"] = monitor.snapshot()
            snapshot["alerts"] = [dict(r) for r in monitor.alerts.iter_records()]
            snapshot["active_alerts"] = monitor.alerts.active_alerts()
            if monitor.cold_start is not None:
                snapshot["cold_start"] = monitor.cold_start.summary()
        tracker = get_active_slo_tracker()
        if tracker is not None:
            snapshot["slo"] = list(tracker.iter_records())
            snapshot["slo_alerts"] = [
                dict(r) for r in tracker.alerts.iter_records()
            ]
            snapshot["slo_exhausted"] = tracker.exhausted()
        registry = get_active_registry()
        if registry is not None:
            snapshot["metrics"] = registry.as_dict()
        (bundle / "snapshot.json").write_text(
            json.dumps(snapshot, indent=2), encoding="utf-8"
        )
        self.dumps.append(bundle)
        registry = get_active_registry()
        if registry is not None:
            registry.counter("flight.postmortems_dumped").inc()
        _LOGGER.warning(kv("postmortem bundle dumped", reason=reason, path=str(bundle)))
        return bundle


# ----------------------------------------------------------------------
# Active-recorder scoping (mirrors use_registry / use_monitor)
# ----------------------------------------------------------------------
_ACTIVE_RECORDERS: List[FlightRecorder] = []


def get_active_flight_recorder() -> Optional[FlightRecorder]:
    """The innermost active recorder, or None when recording is off."""
    return _ACTIVE_RECORDERS[-1] if _ACTIVE_RECORDERS else None


class use_flight_recorder:
    """Activate ``recorder``: request feed + fired-alert postmortems."""

    def __init__(self, recorder: FlightRecorder) -> None:
        self._recorder = recorder

    def __enter__(self) -> FlightRecorder:
        _ACTIVE_RECORDERS.append(self._recorder)
        register_request_observer(self._recorder)
        register_alert_observer(self._recorder.on_alert)
        return self._recorder

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        unregister_alert_observer(self._recorder.on_alert)
        unregister_request_observer(self._recorder)
        for position in range(len(_ACTIVE_RECORDERS) - 1, -1, -1):
            if _ACTIVE_RECORDERS[position] is self._recorder:
                del _ACTIVE_RECORDERS[position]
                break


# ----------------------------------------------------------------------
# Bundle replay (python -m repro.obs.flight <bundle>)
# ----------------------------------------------------------------------
def load_bundle(path: Union[str, Path]) -> Dict[str, object]:
    """Load a postmortem bundle directory back into dicts."""
    bundle = Path(path)
    if not bundle.is_dir():
        raise FileNotFoundError(f"not a bundle directory: {bundle}")
    meta = json.loads((bundle / "META.json").read_text(encoding="utf-8"))
    requests = [
        json.loads(line)
        for line in (bundle / "requests.jsonl")
        .read_text(encoding="utf-8")
        .splitlines()
        if line.strip()
    ]
    snapshot_path = bundle / "snapshot.json"
    snapshot = (
        json.loads(snapshot_path.read_text(encoding="utf-8"))
        if snapshot_path.exists()
        else {}
    )
    return {"meta": meta, "requests": requests, "snapshot": snapshot}


def _request_self_times(request: Dict[str, object]) -> Dict[str, float]:
    totals: Dict[str, float] = {}
    child: Dict[str, float] = {}
    for span in request.get("spans", ()):
        path = span["path"]
        elapsed = span["duration_seconds"]
        totals[path] = totals.get(path, 0.0) + elapsed
        if "/" in path:
            parent = path.rsplit("/", 1)[0]
            child[parent] = child.get(parent, 0.0) + elapsed
    return {p: t - child.get(p, 0.0) for p, t in totals.items()}


def render_bundle(bundle: Dict[str, object], slowest: int = 5) -> str:
    """Human-readable replay of a loaded bundle."""
    meta = bundle["meta"]
    requests = bundle["requests"]
    snapshot = bundle["snapshot"]
    lines = [
        f"postmortem bundle: reason={meta.get('reason')!r} "
        f"requests_retained={meta.get('requests_retained')} "
        f"requests_recorded={meta.get('requests_recorded')}",
    ]
    if meta.get("alert"):
        alert = meta["alert"]
        lines.append(
            f"  triggering alert: {alert.get('rule')} "
            f"({alert.get('severity')}) {alert.get('metric')}="
            f"{alert.get('value')} threshold={alert.get('threshold')} "
            f"trace_id={alert.get('trace_id')}"
        )
    if meta.get("error"):
        lines.append(f"  triggering error: {meta['error']}")
    ordered = sorted(
        requests, key=lambda r: -float(r.get("duration_seconds", 0.0))
    )
    lines.append(f"  slowest {min(slowest, len(ordered))} request(s):")
    for request in ordered[:slowest]:
        self_times = _request_self_times(request)
        hottest = (
            max(self_times.items(), key=lambda item: item[1])[0]
            if self_times
            else None
        )
        flag = " [tail exemplar]" if request.get("tail_exemplar") else ""
        lines.append(
            f"    {request['kind']} {request['trace_id']} "
            f"{float(request['duration_seconds']) * 1e3:.3f} ms "
            f"status={request['status']}{flag}"
        )
        if hottest is not None:
            lines.append(
                f"      hottest span (self time): {hottest} "
                f"{self_times[hottest] * 1e3:.3f} ms"
            )
        ordered_spans = sorted(
            request.get("spans", ()),
            key=lambda s: (s.get("start_seconds", 0.0), s["path"].count("/")),
        )
        for span in ordered_spans:
            depth = span["path"].count("/")
            lines.append(
                "      " + "  " * depth
                + f"{span['path'].rsplit('/', 1)[-1]} "
                f"{span['duration_seconds'] * 1e3:.3f} ms"
            )
        if request.get("decisions"):
            rendered = ", ".join(
                f"{key}={value}"
                for key, value in sorted(request["decisions"].items())
            )
            lines.append(f"      decisions: {rendered}")
    fired = [
        alert
        for alert in snapshot.get("alerts", []) + snapshot.get("slo_alerts", [])
        if alert.get("kind") == "fired"
    ]
    lines.append(f"  alerts fired at dump time: {len(fired)}")
    for alert in fired:
        lines.append(
            f"    {alert['rule']} ({alert['severity']}): "
            f"{alert['metric']}={alert['value']:.6g} "
            f"trace_id={alert.get('trace_id')}"
        )
    for record in snapshot.get("slo", []):
        remaining = record.get("budget_remaining")
        lines.append(
            f"  slo {record['name']} ({record['kind']}): "
            f"budget_remaining="
            f"{'n/a' if remaining is None else format(remaining, '.3f')}"
        )
    exhausted = snapshot.get("slo_exhausted") or []
    if exhausted:
        lines.append(f"  exhausted budgets: {', '.join(exhausted)}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro.obs.flight <bundle> [--slowest N]``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.flight",
        description="Replay a serving postmortem bundle.",
    )
    parser.add_argument("bundle", type=Path, help="bundle directory")
    parser.add_argument(
        "--slowest",
        type=int,
        default=5,
        help="how many of the slowest requests to expand (default 5)",
    )
    args = parser.parse_args(argv)
    try:
        bundle = load_bundle(args.bundle)
    except (FileNotFoundError, json.JSONDecodeError) as error:
        print(f"error: {error}")
        return 2
    print(render_bundle(bundle, slowest=args.slowest))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    import sys

    sys.exit(main())
