"""Dependency-free telemetry layer: metrics, tracing, profiling, logging.

The package provides four composable surfaces:

* :mod:`repro.obs.metrics` — ``Counter`` / ``Gauge`` / ``Histogram``
  instruments in a :class:`MetricsRegistry`, with scoped activation so
  instrumented library code reports only when telemetry is on;
* :mod:`repro.obs.tracing` — nested ``Span``/``Tracer`` wall-clock timing;
* :mod:`repro.obs.autograd` — an opt-in per-op profiler for the
  ``repro.nn`` autograd engine;
* :mod:`repro.obs.callbacks` — the trainer callback interface plus the
  :class:`TelemetryCallback` metrics adapter with divergence monitoring;
* :mod:`repro.obs.logging` — structured ``key=value`` logging setup;
* :mod:`repro.obs.quality` — online model-quality monitoring (streaming
  AUC/ECE, cohort CTR, cold-start lifecycle tracking) with
  :mod:`repro.obs.drift` score/feature drift detectors and
  :mod:`repro.obs.alerts` threshold+hysteresis alerting;
* :mod:`repro.obs.context` — request-scoped trace context
  (:class:`TraceContext` / :class:`request_scope`) propagated through
  the serving engine, so every emitted sample, alert and telemetry
  record carries the ``trace_id`` of the request that produced it;
* :mod:`repro.obs.slo` — declarative SLOs with rolling error budgets
  and multi-window burn-rate alerting over the serving stream;
* :mod:`repro.obs.flight` — the serving flight recorder: a bounded ring
  of recent per-request span trees with tail-exemplar sampling and
  automatic postmortem bundles (replay with
  ``python -m repro.obs.flight <bundle>``);
* :mod:`repro.obs.session` — :class:`TelemetrySession`, which activates
  everything at once and renders JSONL/text run reports (the CLI's
  ``--telemetry`` flag), plus Chrome-trace export;
* :mod:`repro.obs.agg` — fleet aggregation for sharded serving: a
  :class:`TelemetryShipper` spooling mergeable snapshot frames per
  process and a :class:`TelemetryCollector` merging N spools into one
  fleet-level view (``python -m repro.obs.agg``), with cross-process
  trace stitching via :meth:`TraceContext.inject` /
  :meth:`TraceContext.extract`.

Only numpy and the standard library are used, and every hook is pay-for-
what-you-use: with no active registry/tracer/profiler/monitor the
instrumented hot paths skip telemetry entirely.
"""

from repro.obs.agg import (
    TelemetryCollector,
    TelemetryShipper,
    stitch_request_records,
    stitched_chrome_trace,
)
from repro.obs.alerts import (
    Alert,
    AlertEngine,
    AlertRule,
    AlertSink,
    CallbackSink,
    JsonlSink,
    LogSink,
    Severity,
    register_alert_observer,
    unregister_alert_observer,
)
from repro.obs.autograd import AutogradProfiler, OpStats
from repro.obs.context import (
    RequestRecord,
    TraceContext,
    current_trace_context,
    get_shard_label,
    new_trace_id,
    register_request_observer,
    request_scope,
    set_shard_label,
    unregister_request_observer,
    use_trace_context,
)
from repro.obs.flight import (
    FlightRecorder,
    get_active_flight_recorder,
    load_bundle,
    use_flight_recorder,
)
from repro.obs.callbacks import (
    BatchStats,
    TelemetryCallback,
    TrainerCallback,
    global_callbacks,
    register_global_callback,
    unregister_global_callback,
)
from repro.obs.drift import DriftDetector, kl_divergence, psi
from repro.obs.logging import configure_logging, get_logger, kv
from repro.obs.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_active_registry,
    prometheus_metric_name,
    use_registry,
)
from repro.obs.quality import (
    CohortCTR,
    ColdStartTracker,
    QualityMonitor,
    StreamingAUC,
    WindowedECE,
    default_quality_rules,
    get_active_monitor,
    use_monitor,
)
from repro.obs.session import TelemetrySession
from repro.obs.slo import (
    SLO,
    SLOTracker,
    SLOWindow,
    default_serving_slos,
    get_active_slo_tracker,
    use_slo_tracker,
)
from repro.obs.tracing import (
    Span,
    SpanStats,
    Tracer,
    get_active_tracer,
    maybe_span,
    use_tracer,
)
from repro.obs.window import SlidingBlocks

__all__ = [
    "Alert",
    "AlertEngine",
    "AlertRule",
    "AlertSink",
    "CallbackSink",
    "JsonlSink",
    "LogSink",
    "Severity",
    "register_alert_observer",
    "unregister_alert_observer",
    "AutogradProfiler",
    "OpStats",
    "BatchStats",
    "TelemetryCallback",
    "TrainerCallback",
    "global_callbacks",
    "register_global_callback",
    "unregister_global_callback",
    "DriftDetector",
    "kl_divergence",
    "psi",
    "configure_logging",
    "get_logger",
    "kv",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_active_registry",
    "prometheus_metric_name",
    "use_registry",
    "CohortCTR",
    "ColdStartTracker",
    "QualityMonitor",
    "StreamingAUC",
    "WindowedECE",
    "default_quality_rules",
    "get_active_monitor",
    "use_monitor",
    "RequestRecord",
    "TraceContext",
    "current_trace_context",
    "get_shard_label",
    "new_trace_id",
    "register_request_observer",
    "request_scope",
    "set_shard_label",
    "unregister_request_observer",
    "use_trace_context",
    "TelemetryCollector",
    "TelemetryShipper",
    "stitch_request_records",
    "stitched_chrome_trace",
    "FlightRecorder",
    "get_active_flight_recorder",
    "load_bundle",
    "use_flight_recorder",
    "SLO",
    "SLOTracker",
    "SLOWindow",
    "default_serving_slos",
    "get_active_slo_tracker",
    "use_slo_tracker",
    "TelemetrySession",
    "Span",
    "SpanStats",
    "Tracer",
    "get_active_tracer",
    "maybe_span",
    "use_tracer",
    "SlidingBlocks",
]
