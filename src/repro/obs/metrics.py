"""Metric instruments and the registry that owns them.

The registry is the heart of the telemetry layer: every instrumented code
path (trainers, the serving engine, the statistics store, named
:class:`~repro.utils.timer.Timer` blocks) reports into whichever
:class:`MetricsRegistry` is *active*.  Activation is scoped — registries
nest like context managers — so a test or a CLI run can capture exactly
the metrics produced inside its own block:

>>> from repro.obs import MetricsRegistry, use_registry
>>> registry = MetricsRegistry()
>>> with use_registry(registry):
...     registry.counter("demo.requests").inc()
>>> registry.counter("demo.requests").value
1.0

Three instrument kinds are provided, following the Prometheus vocabulary:

* :class:`Counter` — monotonically increasing totals (events, batches);
* :class:`Gauge` — a value that can go up and down (learning rate, epoch);
* :class:`Histogram` — observation distributions with fixed buckets *and*
  exact-or-sampled p50/p90/p99 quantile summaries.

When no registry is active the instrumented code paths skip reporting
entirely, so production hot loops pay nothing for unused telemetry.
"""

from __future__ import annotations

import json
import math
import re
import threading
from typing import Dict, IO, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "get_active_registry",
    "prometheus_metric_name",
    "use_registry",
]

# Geometric latency-style buckets (seconds) covering microseconds to minutes.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0
)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        self._value += float(amount)

    @property
    def value(self) -> float:
        return self._value

    def snapshot_state(self) -> Dict[str, object]:
        """Mergeable sufficient statistics (wire-format ``state`` payload)."""
        return {"value": self._value}

    def merge_state(self, state: Dict[str, object]) -> None:
        """Fold another process's snapshot in: totals add."""
        self._value += float(state["value"])  # type: ignore[arg-type]


class Gauge:
    """A value that can move in both directions."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += float(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._value -= float(amount)

    @property
    def value(self) -> float:
        return self._value

    def snapshot_state(self) -> Dict[str, object]:
        """Mergeable state; gauges merge last-writer-wins (see merge_state)."""
        return {"value": self._value}

    def merge_state(self, state: Dict[str, object]) -> None:
        """Adopt the snapshot's value.

        Gauges are *levels*, not totals, so summing across processes is
        meaningless; the collector applies frames in timestamp order and
        the freshest writer wins.
        """
        self._value = float(state["value"])  # type: ignore[arg-type]


class Histogram:
    """Observation distribution with fixed buckets and quantile summaries.

    Bucket counts are cumulative-free (each bucket counts observations in
    ``(previous_bound, bound]``; an implicit ``+inf`` bucket catches the
    rest).  Quantiles come from a bounded sample of the raw observations:
    while fewer than ``sample_capacity`` values have been observed the
    quantiles are **exact** (they match ``numpy.percentile`` on the full
    observation stream); beyond that the sample is decimated by a
    deterministic stride, giving approximate quantiles with bounded memory.
    """

    __slots__ = (
        "name", "help", "bounds", "bucket_counts", "count", "sum",
        "min", "max", "_sample", "_sample_capacity", "_stride", "_since_kept",
    )

    def __init__(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        help: str = "",
        sample_capacity: int = 8192,
    ) -> None:
        if sample_capacity < 2:
            raise ValueError(f"sample_capacity must be >= 2, got {sample_capacity}")
        bounds = tuple(sorted(buckets if buckets is not None else DEFAULT_BUCKETS))
        if len(bounds) != len(set(bounds)):
            raise ValueError(f"histogram {name!r} has duplicate bucket bounds")
        self.name = name
        self.help = help
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last slot is +inf
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._sample: List[float] = []
        self._sample_capacity = sample_capacity
        self._stride = 1  # keep every _stride-th observation in the sample
        self._since_kept = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        # Find the first bound >= value (linear scan; bucket lists are short).
        for position, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[position] += 1
                break
        else:
            self.bucket_counts[-1] += 1
        # Bounded quantile sample with deterministic stride decimation.
        self._since_kept += 1
        if self._since_kept >= self._stride:
            self._since_kept = 0
            self._sample.append(value)
            if len(self._sample) >= self._sample_capacity:
                self._sample = self._sample[::2]
                self._stride *= 2

    def quantile(self, q: float) -> float:
        """Return the ``q``-quantile (``q`` in [0, 1]) of the sample.

        Matches ``numpy.percentile``'s default linear interpolation; exact
        while the observation count is below the sample capacity.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._sample:
            raise ValueError(f"histogram {self.name!r} has no observations")
        return float(np.percentile(self._sample, 100.0 * q))

    def cumulative_counts(self) -> List[int]:
        """Prometheus-style cumulative bucket counts (last equals ``count``).

        Entry ``i`` counts every observation ``<= bounds[i]``; the final
        entry is the implicit ``+inf`` bucket and always equals the total
        observation count.  Both exporters (:meth:`summary` and
        :meth:`MetricsRegistry.to_prometheus_text`) derive their
        cumulative views from this single method so they cannot drift
        apart.
        """
        out: List[int] = []
        running = 0
        for count in self.bucket_counts:
            running += count
            out.append(running)
        return out

    def summary(self) -> Dict[str, object]:
        """JSON-friendly snapshot with p50/p90/p99 and bucket counts.

        Each bucket entry carries both the per-bin ``count`` and the
        Prometheus-convention ``cumulative`` count (observations
        ``<= le``).
        """
        empty = self.count == 0
        return {
            "count": self.count,
            "sum": self.sum,
            "min": None if empty else self.min,
            "max": None if empty else self.max,
            "p50": None if empty else self.quantile(0.50),
            "p90": None if empty else self.quantile(0.90),
            "p99": None if empty else self.quantile(0.99),
            "buckets": [
                {"le": bound, "count": count, "cumulative": cumulative}
                for bound, count, cumulative in zip(
                    self.bounds + (math.inf,),
                    self.bucket_counts,
                    self.cumulative_counts(),
                )
            ],
        }

    # ------------------------------------------------------------------
    # Mergeable snapshots
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        """Mergeable sufficient statistics for fleet aggregation.

        Carries the exact accumulators (bounds, per-bucket counts, count,
        sum, min, max) plus the stride-decimated quantile sample together
        with its stride, so a collector can reconcile samples taken at
        different decimation levels.
        """
        empty = self.count == 0
        return {
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.sum,
            "min": None if empty else self.min,
            "max": None if empty else self.max,
            "sample": list(self._sample),
            "stride": self._stride,
        }

    def merge_state(self, state: Dict[str, object]) -> None:
        """Fold another histogram's snapshot into this one.

        Bucket counts, count, sum and min/max merge exactly.  The
        quantile samples merge by decimating the finer-strided sample to
        the coarser stride (strides are always powers of two, so the
        decimation factor is integral), concatenating, then halving until
        the result fits the sample capacity — the merged sample is drawn
        from the union stream at a single uniform stride.
        """
        bounds = tuple(float(bound) for bound in state["bounds"])  # type: ignore[union-attr]
        if bounds != self.bounds:
            raise ValueError(
                f"histogram {self.name!r} bucket bounds differ from the "
                f"snapshot's; refusing to merge mismatched distributions"
            )
        for position, count in enumerate(state["bucket_counts"]):  # type: ignore[union-attr]
            self.bucket_counts[position] += int(count)
        self.count += int(state["count"])  # type: ignore[arg-type]
        self.sum += float(state["sum"])  # type: ignore[arg-type]
        if state["min"] is not None:
            self.min = min(self.min, float(state["min"]))  # type: ignore[arg-type]
        if state["max"] is not None:
            self.max = max(self.max, float(state["max"]))  # type: ignore[arg-type]
        other_sample = [float(value) for value in state["sample"]]  # type: ignore[union-attr]
        other_stride = int(state.get("stride", 1))  # type: ignore[union-attr]
        stride = max(self._stride, other_stride)
        mine = self._sample[:: stride // self._stride]
        theirs = other_sample[:: stride // other_stride]
        merged = mine + theirs
        while len(merged) >= self._sample_capacity:
            merged = merged[::2]
            stride *= 2
        self._sample = merged
        self._stride = stride
        self._since_kept = 0


Instrument = Union[Counter, Gauge, Histogram]


def prometheus_metric_name(name: str) -> str:
    """Sanitise a dotted metric name into a valid Prometheus identifier.

    Prometheus names must match ``[a-zA-Z_:][a-zA-Z0-9_:]*``; every other
    character (the registry's dots, dashes in cohort names, ...) becomes
    an underscore, and a leading digit gains a ``_`` prefix.
    """
    sanitised = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not sanitised or not re.match(r"[a-zA-Z_:]", sanitised[0]):
        sanitised = "_" + sanitised
    return sanitised


class MetricsRegistry:
    """Named instruments plus text and JSONL exporters.

    Instruments are get-or-create: asking twice for the same name returns
    the same object; asking for an existing name with a different
    instrument kind raises ``ValueError``.
    """

    def __init__(self) -> None:
        self._instruments: "Dict[str, Instrument]" = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Instrument factories
    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, kind, factory) -> Instrument:
        if not name:
            raise ValueError("metric name must be non-empty")
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise ValueError(
                        f"metric {name!r} is a {type(existing).__name__}, "
                        f"not a {kind.__name__}"
                    )
                return existing
            instrument = factory()
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name, help))

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        help: str = "",
    ) -> Histogram:
        return self._get_or_create(
            name, Histogram, lambda: Histogram(name, buckets=buckets, help=help)
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        return sorted(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """Snapshot of every instrument, keyed by name."""
        out: Dict[str, Dict[str, object]] = {}
        for name in self.names():
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                payload: Dict[str, object] = {"type": "histogram"}
                payload.update(instrument.summary())
            elif isinstance(instrument, Counter):
                payload = {"type": "counter", "value": instrument.value}
            else:
                payload = {"type": "gauge", "value": instrument.value}
            out[name] = payload
        return out

    def iter_records(self) -> Iterator[Dict[str, object]]:
        """Yield one JSON-friendly record per instrument."""
        for name, payload in self.as_dict().items():
            record = {"name": name}
            record.update(payload)
            yield record

    def to_text(self) -> str:
        """Human-readable dump, one instrument per line."""
        lines: List[str] = []
        for name in self.names():
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                if instrument.count:
                    lines.append(
                        f"{name} histogram count={instrument.count} "
                        f"sum={instrument.sum:.6g} p50={instrument.quantile(0.5):.6g} "
                        f"p90={instrument.quantile(0.9):.6g} "
                        f"p99={instrument.quantile(0.99):.6g}"
                    )
                else:
                    lines.append(f"{name} histogram count=0")
            elif isinstance(instrument, Counter):
                lines.append(f"{name} counter value={instrument.value:.6g}")
            else:
                lines.append(f"{name} gauge value={instrument.value:.6g}")
        return "\n".join(lines)

    def to_prometheus_text(self) -> str:
        """Prometheus text exposition format (version 0.0.4).

        Metric names are sanitised with :func:`prometheus_metric_name`
        (dots become underscores, invalid leading characters are
        prefixed), histograms emit the conventional cumulative
        ``_bucket{le="..."}`` series plus ``_sum`` and ``_count``, and
        every metric carries ``# HELP``/``# TYPE`` headers.
        """
        lines: List[str] = []
        for name in self.names():
            instrument = self._instruments[name]
            metric = prometheus_metric_name(name)
            help_text = instrument.help or name
            if isinstance(instrument, Histogram):
                lines.append(f"# HELP {metric} {help_text}")
                lines.append(f"# TYPE {metric} histogram")
                bounds = instrument.bounds + (math.inf,)
                for bound, cumulative in zip(
                    bounds, instrument.cumulative_counts()
                ):
                    label = "+Inf" if math.isinf(bound) else repr(float(bound))
                    lines.append(
                        f'{metric}_bucket{{le="{label}"}} {cumulative}'
                    )
                lines.append(f"{metric}_sum {instrument.sum!r}")
                lines.append(f"{metric}_count {instrument.count}")
            elif isinstance(instrument, Counter):
                lines.append(f"# HELP {metric} {help_text}")
                lines.append(f"# TYPE {metric} counter")
                lines.append(f"{metric} {instrument.value!r}")
            else:
                lines.append(f"# HELP {metric} {help_text}")
                lines.append(f"# TYPE {metric} gauge")
                lines.append(f"{metric} {instrument.value!r}")
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, destination: Union[str, "IO[str]"], *, extra=()) -> None:
        """Write one JSON object per line: ``extra`` records then metrics."""
        def _write(handle: "IO[str]") -> None:
            for record in extra:
                handle.write(json.dumps(record) + "\n")
            for record in self.iter_records():
                handle.write(json.dumps(record) + "\n")

        if hasattr(destination, "write"):
            _write(destination)
        else:
            with open(destination, "w", encoding="utf-8") as handle:
                _write(handle)

    # ------------------------------------------------------------------
    # Mergeable snapshots (fleet aggregation wire format)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> List[Dict[str, object]]:
        """One mergeable record per instrument: name, kind, help, state."""
        records: List[Dict[str, object]] = []
        with self._lock:
            names = sorted(self._instruments)
            instruments = [self._instruments[name] for name in names]
        for name, instrument in zip(names, instruments):
            if isinstance(instrument, Histogram):
                kind = "histogram"
            elif isinstance(instrument, Counter):
                kind = "counter"
            else:
                kind = "gauge"
            records.append(
                {
                    "name": name,
                    "kind": kind,
                    "help": instrument.help,
                    "state": instrument.snapshot_state(),
                }
            )
        return records

    def merge_state(self, record: Dict[str, object]) -> Instrument:
        """Fold one :meth:`snapshot_state` record into this registry.

        The target instrument is get-or-created under the snapshot's name
        and kind (histograms adopt the snapshot's bucket bounds), so a
        fresh registry accumulates the union of every shipped process's
        instruments.  Kind mismatches raise, same as live registration.
        """
        name = str(record["name"])
        kind = str(record["kind"])
        help_text = str(record.get("help", "") or "")
        state = record["state"]
        if kind == "counter":
            instrument: Instrument = self.counter(name, help_text)
        elif kind == "gauge":
            instrument = self.gauge(name, help_text)
        elif kind == "histogram":
            instrument = self.histogram(
                name, buckets=state["bounds"], help=help_text  # type: ignore[index]
            )
        else:
            raise ValueError(f"unknown instrument kind {kind!r} for {name!r}")
        instrument.merge_state(state)  # type: ignore[arg-type]
        return instrument


# ----------------------------------------------------------------------
# Active-registry scoping
# ----------------------------------------------------------------------
_ACTIVE_REGISTRIES: List[MetricsRegistry] = []


def get_active_registry() -> Optional[MetricsRegistry]:
    """The innermost active registry, or None when telemetry is off."""
    return _ACTIVE_REGISTRIES[-1] if _ACTIVE_REGISTRIES else None


class use_registry:
    """Context manager activating ``registry`` for the enclosed block."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self._registry = registry

    def __enter__(self) -> MetricsRegistry:
        _ACTIVE_REGISTRIES.append(self._registry)
        return self._registry

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        # Remove our registry specifically so mismatched exits stay safe.
        for position in range(len(_ACTIVE_REGISTRIES) - 1, -1, -1):
            if _ACTIVE_REGISTRIES[position] is self._registry:
                del _ACTIVE_REGISTRIES[position]
                break
