"""Fleet telemetry aggregation: snapshot shipping, merging, stitching.

Every observability primitive in this package is process-local by
design — ``docs/thread_hostility.md`` enumerates exactly which ambient
channels (active registry/tracer/monitor stacks, request observers)
must never be shared across shards.  Sharded serving therefore
aggregates by **snapshot shipping** instead: each process periodically
writes a frame of mergeable sufficient statistics to its own spool
file, and a collector tails the spools and folds the newest frame per
process into fleet-level state.

* :class:`TelemetryShipper` — flushes the active (or bound) registry,
  quality monitor, SLO tracker and tracer into
  ``<spool_dir>/<process>.jsonl`` as versioned JSONL frames.  No
  threads: time-based flushing is pumped from the request-observer hook
  (and an explicit final flush at session stop).
* :class:`TelemetryCollector` — tails N spools, keeps the newest
  *complete* frame per process (half-written tails are ignored until
  finished), merges everything into a fresh registry / monitor / SLO
  tracker, re-evaluates burn rates and alert rules on the merged view,
  and re-exports text/JSONL/Prometheus.
* Trace stitching — :func:`stitch_request_records` joins request
  records from different processes by ``trace_id``/``parent_id`` (see
  :meth:`~repro.obs.context.TraceContext.inject`), and
  :func:`stitched_chrome_trace` renders the joined trees on one
  unix-aligned timeline, one Chrome-trace process row per real process.

Wire format (version 1)
-----------------------
One frame is a contiguous run of JSONL records::

    {"type": "frame", "version": 1, "process": ..., "pid": ...,
     "shard": ..., "seq": N, "at_unix": ..., "unix_anchor": ...,
     "perf_anchor": ..., "n_records": K}
    {"type": "metric", "name": ..., "kind": ..., "help": ..., "state": {...}}
    {"type": "quality", "state": {...}}
    {"type": "slo", "state": {...}}
    {"type": "tracer", "state": {...}}
    {"type": "frame_end", "seq": N}

``n_records`` counts the records between header and terminator; a frame
is complete only when its ``frame_end`` carries the header's ``seq`` and
exactly ``n_records`` records arrived.  Merge semantics: counters,
histogram accumulators and estimator bins are *sums*; gauges are
last-writer-wins in frame-timestamp order; SLO windows replay their
shipped event strings (see :meth:`~repro.obs.slo.SLOWindow.merge_state`).
Every frame carries the process's *cumulative* state, so the collector
always rebuilds fleet state from the newest frame per process — frames
are idempotent, and a lost frame costs freshness, not correctness.

Run ``python -m repro.obs.agg <spool_dir>`` for a one-shot merge, or
``--watch`` for a live summary.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.obs.alerts import Alert
from repro.obs.context import get_shard_label
from repro.obs.logging import get_logger, kv
from repro.obs.metrics import (
    MetricsRegistry,
    get_active_registry,
    use_registry,
)
from repro.obs.quality import QualityMonitor, get_active_monitor
from repro.obs.slo import SLOTracker, get_active_slo_tracker
from repro.obs.tracing import Tracer, get_active_tracer

__all__ = [
    "WIRE_VERSION",
    "TelemetryShipper",
    "TelemetryCollector",
    "load_bundle_requests",
    "stitch_request_records",
    "stitched_chrome_trace",
    "main",
]

_LOGGER = get_logger("obs.agg")

WIRE_VERSION = 1


# ----------------------------------------------------------------------
# Shipper
# ----------------------------------------------------------------------
class TelemetryShipper:
    """Periodically spools one process's telemetry as mergeable frames.

    Sources may be bound at construction or left ``None`` to resolve the
    ambient object (``get_active_registry()`` & co.) at each flush — the
    latter is what :class:`~repro.obs.session.TelemetrySession` uses, so
    the shipper always sees exactly the objects the session activated.

    The shipper never starts threads.  :meth:`maybe_flush` is cheap
    (one clock read) and is pumped from the request-observer hook
    (:meth:`on_request`), so shipping rides the serving request stream;
    callers must :meth:`flush` once at shutdown to ship the final state.
    """

    def __init__(
        self,
        spool_dir: Union[str, Path],
        process_label: Optional[str] = None,
        interval_seconds: float = 2.0,
        registry: Optional[MetricsRegistry] = None,
        monitor: Optional[QualityMonitor] = None,
        slo: Optional[SLOTracker] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError(
                f"interval_seconds must be > 0, got {interval_seconds}"
            )
        self.spool_dir = Path(spool_dir)
        self.spool_dir.mkdir(parents=True, exist_ok=True)
        if process_label is None:
            process_label = get_shard_label() or f"pid{os.getpid()}"
        self.process_label = str(process_label)
        self.spool_path = self.spool_dir / f"{self.process_label}.jsonl"
        self.interval_seconds = float(interval_seconds)
        self._registry = registry
        self._monitor = monitor
        self._slo = slo
        self._tracer = tracer
        self._seq = 0
        self._last_flush = 0.0  # monotonic; 0 → never flushed

    # ------------------------------------------------------------------
    def _sources(
        self,
    ) -> Tuple[
        Optional[MetricsRegistry],
        Optional[QualityMonitor],
        Optional[SLOTracker],
        Optional[Tracer],
    ]:
        return (
            self._registry if self._registry is not None else get_active_registry(),
            self._monitor if self._monitor is not None else get_active_monitor(),
            self._slo if self._slo is not None else get_active_slo_tracker(),
            self._tracer if self._tracer is not None else get_active_tracer(),
        )

    def build_frame(self) -> List[Dict[str, object]]:
        """The frame records (header first, ``frame_end`` last)."""
        registry, monitor, slo, tracer = self._sources()
        records: List[Dict[str, object]] = []
        if registry is not None:
            for record in registry.snapshot_state():
                records.append({"type": "metric", **record})
        if monitor is not None:
            records.append({"type": "quality", "state": monitor.snapshot_state()})
        if slo is not None:
            records.append({"type": "slo", "state": slo.snapshot_state()})
        if tracer is not None:
            records.append({"type": "tracer", "state": tracer.snapshot_state()})
        self._seq += 1
        header: Dict[str, object] = {
            "type": "frame",
            "version": WIRE_VERSION,
            "process": self.process_label,
            "pid": os.getpid(),
            "shard": get_shard_label(),
            "seq": self._seq,
            "at_unix": time.time(),
            "unix_anchor": time.time(),
            "perf_anchor": time.perf_counter(),
            "n_records": len(records),
        }
        return [header, *records, {"type": "frame_end", "seq": self._seq}]

    def flush(self) -> int:
        """Append one complete frame to the spool; returns its seq.

        The frame is serialised first and appended with a single write,
        so a concurrently tailing collector sees at worst a truncated
        final line — never interleaved or reordered records.
        """
        started = time.perf_counter()
        frame = self.build_frame()
        payload = "".join(json.dumps(record) + "\n" for record in frame)
        with open(self.spool_path, "a", encoding="utf-8") as handle:
            handle.write(payload)
        self._last_flush = time.monotonic()
        registry, _, _, _ = self._sources()
        if registry is not None:
            registry.counter("shipper.flushes").inc()
            registry.histogram("shipper.flush_seconds").observe(
                time.perf_counter() - started
            )
        return self._seq

    def maybe_flush(self, now: Optional[float] = None) -> bool:
        """Flush when the interval elapsed; returns whether it did."""
        if now is None:
            now = time.monotonic()
        if now - self._last_flush < self.interval_seconds:
            return False
        self.flush()
        return True

    def on_request(self, record) -> None:
        """Request-observer hook: pump time-based flushing, no threads."""
        self.maybe_flush()


# ----------------------------------------------------------------------
# Spool tailing
# ----------------------------------------------------------------------
class _SpoolTail:
    """Incremental reader of one spool file.

    Remembers the byte offset of the last fully parsed line, so each
    :meth:`poll` only touches bytes appended since; a truncated final
    line (a flush caught mid-write) stays unconsumed until completed.
    """

    def __init__(self, path: Path) -> None:
        self.path = path
        self.offset = 0
        self._open: Optional[Tuple[Dict[str, object], List[Dict[str, object]]]] = None
        self.latest: Optional[Tuple[Dict[str, object], List[Dict[str, object]]]] = None
        self.frames_seen = 0
        self.corrupt_lines = 0

    def poll(self) -> int:
        """Consume appended bytes; returns newly completed frame count."""
        try:
            size = self.path.stat().st_size
        except OSError:
            return 0
        if size < self.offset:  # truncated/rotated: start over
            self.offset = 0
            self._open = None
        if size == self.offset:
            return 0
        with open(self.path, "r", encoding="utf-8") as handle:
            handle.seek(self.offset)
            data = handle.read()
        completed = 0
        consumed = 0
        for line in data.splitlines(keepends=True):
            if not line.endswith("\n"):
                break  # partial tail: wait for the writer to finish it
            consumed += len(line.encode("utf-8"))
            stripped = line.strip()
            if not stripped:
                continue
            try:
                record = json.loads(stripped)
            except json.JSONDecodeError:
                self.corrupt_lines += 1
                self._open = None
                continue
            completed += self._feed(record)
        self.offset += consumed
        return completed

    def _feed(self, record: Dict[str, object]) -> int:
        kind = record.get("type")
        if kind == "frame":
            if int(record.get("version", -1)) != WIRE_VERSION:
                _LOGGER.warning(
                    kv(
                        "skipping frame with unknown wire version",
                        path=str(self.path),
                        version=record.get("version"),
                    )
                )
                self._open = None
                return 0
            self._open = (record, [])
            return 0
        if self._open is None:
            return 0
        header, records = self._open
        if kind == "frame_end":
            self._open = None
            if record.get("seq") != header.get("seq"):
                self.corrupt_lines += 1
                return 0
            if len(records) != int(header.get("n_records", -1)):
                self.corrupt_lines += 1
                return 0
            self.latest = (header, records)
            self.frames_seen += 1
            return 1
        records.append(record)
        return 0


# ----------------------------------------------------------------------
# Collector
# ----------------------------------------------------------------------
class TelemetryCollector:
    """Tails a spool directory and merges frames to fleet-level state.

    Every :meth:`collect` call polls each ``*.jsonl`` spool, then
    rebuilds the merged view **from scratch** out of the newest complete
    frame per process (frames carry cumulative state, so rebuilding is
    idempotent and late or lost frames can never double-count).  The
    merged view is a fresh :class:`~repro.obs.metrics.MetricsRegistry`,
    :class:`~repro.obs.quality.QualityMonitor` and
    :class:`~repro.obs.slo.SLOTracker`; :meth:`evaluate` re-runs the SLO
    burn-rate/budget rules and quality alert rules against it.

    Staleness: a process whose newest frame is older than
    ``stale_after`` seconds is listed in :attr:`stale_processes` (and
    counted by the ``collector.stale_processes`` gauge) but stays in the
    merge — its last shipped state remains the best known truth; it is
    flagged, never silently dropped.
    """

    def __init__(
        self,
        spool_dir: Union[str, Path],
        stale_after: float = 30.0,
    ) -> None:
        if stale_after <= 0:
            raise ValueError(f"stale_after must be > 0, got {stale_after}")
        self.spool_dir = Path(spool_dir)
        self.stale_after = float(stale_after)
        self._tails: Dict[str, _SpoolTail] = {}
        self.collections = 0
        # Merged view, rebuilt by collect().
        self.registry = MetricsRegistry()
        self.monitor: Optional[QualityMonitor] = None
        self.slo = SLOTracker(slos=(), evaluate_every=0)
        self.processes: Dict[str, Dict[str, object]] = {}
        self.stale_processes: List[str] = []

    # ------------------------------------------------------------------
    def _poll_spools(self) -> int:
        if not self.spool_dir.is_dir():
            return 0
        fresh = 0
        for path in sorted(self.spool_dir.glob("*.jsonl")):
            key = path.name
            tail = self._tails.get(key)
            if tail is None:
                tail = self._tails[key] = _SpoolTail(path)
            fresh += tail.poll()
        return fresh

    @staticmethod
    def _monitor_for(state: Dict[str, object]) -> QualityMonitor:
        """A fleet monitor shaped like the first shipped quality state."""
        auc = state["auc"]
        ece = state["ece"]
        return QualityMonitor(
            auc_bins=int(auc["n_bins"]),  # type: ignore[index]
            ece_bins=int(ece["n_bins"]),  # type: ignore[index]
            min_outcomes=int(state.get("min_outcomes", 200)),  # type: ignore[arg-type]
        )

    def collect(self, now: Optional[float] = None) -> Dict[str, object]:
        """Poll spools, rebuild the merged view, return a summary dict."""
        if now is None:
            now = time.time()
        self._poll_spools()
        self.collections += 1
        # Newest complete frame per process, oldest frame first so
        # last-writer-wins gauges resolve to the freshest process.
        frames = [
            tail.latest for tail in self._tails.values() if tail.latest is not None
        ]
        frames.sort(key=lambda frame: float(frame[0].get("at_unix", 0.0)))
        registry = MetricsRegistry()
        monitor: Optional[QualityMonitor] = None
        slo = SLOTracker(slos=(), evaluate_every=0)
        processes: Dict[str, Dict[str, object]] = {}
        stale: List[str] = []
        tracer_dropped_total = 0
        for header, records in frames:
            process = str(header.get("process", "unknown"))
            at_unix = float(header.get("at_unix", 0.0))
            age = now - at_unix
            info: Dict[str, object] = {
                "pid": header.get("pid"),
                "shard": header.get("shard"),
                "seq": header.get("seq"),
                "at_unix": at_unix,
                "age_seconds": age,
                "stale": age > self.stale_after,
            }
            for record in records:
                kind = record.get("type")
                if kind == "metric":
                    registry.merge_state(record)
                elif kind == "quality":
                    state = record["state"]
                    if monitor is None:
                        monitor = self._monitor_for(state)  # type: ignore[arg-type]
                    monitor.merge_state(state)  # type: ignore[arg-type]
                elif kind == "slo":
                    slo.merge_state(record["state"])  # type: ignore[arg-type]
                elif kind == "tracer":
                    state = record["state"]
                    dropped = int(state.get("events_dropped", 0))  # type: ignore[union-attr]
                    info["tracer_dropped"] = dropped
                    info["tracer_recorded"] = state.get("events_recorded")  # type: ignore[union-attr]
                    tracer_dropped_total += dropped
            processes[process] = info
            if info["stale"]:
                stale.append(process)
        # Collector-owned fleet metrics (literal names; the per-process
        # drop gauges use the documented dynamic tracer.dropped.* family).
        registry.counter(
            "tracer.dropped",
            help="fleet-wide tracer events dropped across every shipped process",
        ).inc(tracer_dropped_total)
        for process, info in sorted(processes.items()):
            if "tracer_dropped" in info:
                registry.gauge(f"tracer.dropped.{process}").set(
                    float(info["tracer_dropped"])  # type: ignore[arg-type]
                )
        registry.counter("collector.collections").inc(self.collections)
        registry.gauge("collector.processes").set(float(len(processes)))
        registry.gauge("collector.stale_processes").set(float(len(stale)))
        self.registry = registry
        self.monitor = monitor
        self.slo = slo
        self.processes = processes
        self.stale_processes = stale
        return {
            "processes": len(processes),
            "stale": list(stale),
            "tracer_dropped": tracer_dropped_total,
            "metrics": len(registry),
            "slos": sorted(self.slo.windows),
        }

    # ------------------------------------------------------------------
    # Evaluation and export over the merged view
    # ------------------------------------------------------------------
    def evaluate(self) -> List[Alert]:
        """Re-run SLO and quality alert rules against the merged view.

        Runs with the merged registry active, so burn-rate/budget and
        quality gauges land in it exactly as they would in-process.
        """
        alerts: List[Alert] = []
        with use_registry(self.registry):
            alerts.extend(self.slo.evaluate())
            if self.monitor is not None:
                alerts.extend(self.monitor.evaluate())
        return alerts

    def fleet_snapshot(self) -> Dict[str, Optional[float]]:
        """Flat merged metric mapping (slo.* plus quality.*)."""
        out: Dict[str, Optional[float]] = {}
        out.update(self.slo.snapshot())
        if self.monitor is not None:
            out.update(self.monitor.snapshot())
        return out

    def iter_records(self) -> Iterator[Dict[str, object]]:
        """JSONL report: fleet summary, per-process lines, merged state."""
        yield {
            "type": "fleet",
            "processes": sorted(self.processes),
            "stale_processes": list(self.stale_processes),
            "collections": self.collections,
        }
        for process, info in sorted(self.processes.items()):
            record: Dict[str, object] = {"type": "process", "process": process}
            record.update(info)
            yield record
        for record in self.registry.iter_records():
            yield {"type": "metric", **record}
        for record in self.slo.iter_records():
            yield record
        if self.monitor is not None:
            for name, value in self.monitor.snapshot().items():
                yield {"type": "quality", "name": name, "value": value}

    def to_text(self) -> str:
        """Human-readable fleet summary."""
        lines = [
            f"fleet telemetry: {len(self.processes)} process(es), "
            f"{len(self.stale_processes)} stale"
        ]
        for process, info in sorted(self.processes.items()):
            flags = " STALE" if info.get("stale") else ""
            dropped = info.get("tracer_dropped", 0)
            lines.append(
                f"  {process}: shard={info.get('shard')} pid={info.get('pid')} "
                f"seq={info.get('seq')} age={info.get('age_seconds', 0.0):.1f}s "
                f"tracer_dropped={dropped}{flags}"
            )
        if len(self.slo.windows):
            lines.append(self.slo.to_text())
        if self.monitor is not None:
            lines.append(self.monitor.to_text())
        metrics_text = self.registry.to_text()
        if metrics_text:
            lines.append("merged metrics")
            lines.extend(f"  {line}" for line in metrics_text.splitlines())
        return "\n".join(lines)

    def to_prometheus_text(self) -> str:
        """Merged registry in Prometheus exposition format."""
        return self.registry.to_prometheus_text()

    def write_jsonl(self, destination: Union[str, Path]) -> None:
        with open(destination, "w", encoding="utf-8") as handle:
            for record in self.iter_records():
                handle.write(json.dumps(record) + "\n")


# ----------------------------------------------------------------------
# Cross-process trace stitching
# ----------------------------------------------------------------------
def load_bundle_requests(bundle_dir: Union[str, Path]) -> List[Dict[str, object]]:
    """The request records of one flight-recorder bundle (rendered form)."""
    path = Path(bundle_dir) / "requests.jsonl"
    records: List[Dict[str, object]] = []
    if not path.is_file():
        return records
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _find_bundles(roots: Sequence[Union[str, Path]]) -> List[Path]:
    """Bundle dirs under ``roots`` (a root may itself be a bundle)."""
    bundles: List[Path] = []
    for root in roots:
        root = Path(root)
        if (root / "requests.jsonl").is_file():
            bundles.append(root)
            continue
        bundles.extend(
            sorted(
                candidate.parent
                for candidate in root.glob("**/requests.jsonl")
            )
        )
    return bundles


def stitch_request_records(
    records: Sequence[Dict[str, object]],
) -> Dict[str, List[Dict[str, object]]]:
    """Join request records (possibly from many processes) into trees.

    Returns ``{trace_id: [root_tree, ...]}`` where each tree node is the
    original record plus a ``children`` list; a child is any record of
    the same trace whose ``parent_id`` equals the node's ``span_id``
    (the identity :meth:`~repro.obs.context.TraceContext.inject`
    carries over a process hop).  Records whose parent never shipped
    stay roots of their trace rather than disappearing.
    """
    by_trace: Dict[str, List[Dict[str, object]]] = {}
    for record in records:
        trace_id = str(record.get("trace_id"))
        by_trace.setdefault(trace_id, []).append(record)
    out: Dict[str, List[Dict[str, object]]] = {}
    for trace_id, members in sorted(by_trace.items()):
        nodes = [dict(member, children=[]) for member in members]
        by_span: Dict[str, Dict[str, object]] = {
            str(node["span_id"]): node
            for node in nodes
            if node.get("span_id") is not None
        }
        roots: List[Dict[str, object]] = []
        for node in nodes:
            parent_id = node.get("parent_id")
            parent = by_span.get(str(parent_id)) if parent_id is not None else None
            if parent is None or parent is node:
                roots.append(node)
            else:
                parent["children"].append(node)
        for node in nodes:
            node["children"].sort(
                key=lambda child: float(child.get("started_unix", 0.0))
            )
        roots.sort(key=lambda node: float(node.get("started_unix", 0.0)))
        out[trace_id] = roots
    return out


def stitched_chrome_trace(
    records: Sequence[Dict[str, object]],
) -> Dict[str, object]:
    """Chrome Trace Event Format JSON over unix-aligned request records.

    Request records carry ``started_unix`` anchors and render their
    spans relative to the request start, so records from different
    processes land on one shared timeline without perf-counter
    alignment.  Each real process (pid) becomes one Chrome-trace
    process row, labelled with its shard when known.
    """
    if not records:
        return {"traceEvents": [], "displayTimeUnit": "ms", "metadata": {}}
    origin = min(float(record.get("started_unix", 0.0)) for record in records)
    events: List[Dict[str, object]] = []
    seen_pids: Dict[int, Optional[str]] = {}
    for record in records:
        pid = int(record.get("pid") or 0)
        shard = record.get("shard")
        seen_pids.setdefault(pid, shard if isinstance(shard, str) else None)
        start = float(record.get("started_unix", 0.0)) - origin
        args = {
            "trace_id": record.get("trace_id"),
            "span_id": record.get("span_id"),
            "parent_id": record.get("parent_id"),
            "shard": shard,
            "status": record.get("status"),
        }
        events.append(
            {
                "name": str(record.get("kind", "request")),
                "cat": "request",
                "ph": "X",
                "ts": start * 1e6,
                "dur": float(record.get("duration_seconds", 0.0)) * 1e6,
                "pid": pid,
                "tid": 1,
                "args": args,
            }
        )
        for span in record.get("spans", ()):  # type: ignore[union-attr]
            events.append(
                {
                    "name": str(span["path"]).rsplit("/", 1)[-1],
                    "cat": "span",
                    "ph": "X",
                    "ts": (start + float(span["start_seconds"])) * 1e6,
                    "dur": float(span["duration_seconds"]) * 1e6,
                    "pid": pid,
                    "tid": 1,
                    "args": {
                        "path": span["path"],
                        "trace_id": record.get("trace_id"),
                    },
                }
            )
    for pid, shard in sorted(seen_pids.items()):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 1,
                "args": {"name": shard if shard else f"pid {pid}"},
            }
        )
    traces = stitch_request_records(records)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {
            "origin_unix": origin,
            "processes": len(seen_pids),
            "traces": len(traces),
            "stitched_traces": sum(
                1
                for roots in traces.values()
                if len({int(r.get("pid") or 0) for r in _walk(roots)}) > 1
            ),
        },
    }


def _walk(nodes: Sequence[Dict[str, object]]) -> Iterator[Dict[str, object]]:
    for node in nodes:
        yield node
        yield from _walk(node.get("children", ()))  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# CLI: one-shot merge or live watch
# ----------------------------------------------------------------------
def _render(collector: TelemetryCollector, fmt: str) -> str:
    if fmt == "prom":
        return collector.to_prometheus_text()
    if fmt == "jsonl":
        return "".join(
            json.dumps(record) + "\n" for record in collector.iter_records()
        )
    return collector.to_text()


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.agg",
        description=(
            "Merge per-process telemetry spools into a fleet view, "
            "re-evaluate SLO/alert rules on it, and optionally stitch "
            "flight-recorder bundles into one cross-process trace."
        ),
    )
    parser.add_argument("spool_dir", help="directory of <process>.jsonl spools")
    parser.add_argument(
        "--bundles",
        nargs="*",
        default=(),
        help="flight-recorder bundle dirs (or parents) to stitch by trace_id",
    )
    parser.add_argument(
        "--format",
        choices=("text", "jsonl", "prom"),
        default="text",
        help="merged-view rendering (default: text)",
    )
    parser.add_argument("--out", help="write the rendering here instead of stdout")
    parser.add_argument(
        "--trace-out", help="write the stitched Chrome trace JSON here"
    )
    parser.add_argument(
        "--stale-after",
        type=float,
        default=30.0,
        help="seconds before a process's newest frame counts as stale",
    )
    parser.add_argument(
        "--watch",
        action="store_true",
        help="keep polling and re-printing the summary",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="watch polling interval in seconds",
    )
    args = parser.parse_args(argv)

    collector = TelemetryCollector(args.spool_dir, stale_after=args.stale_after)
    try:
        while True:
            collector.collect()
            alerts = collector.evaluate()
            rendering = _render(collector, args.format)
            if args.out:
                with open(args.out, "w", encoding="utf-8") as handle:
                    handle.write(rendering if rendering.endswith("\n") else rendering + "\n")
            else:
                print(rendering)
            if alerts:
                for alert in alerts:
                    print(
                        f"alert {alert.kind}: {alert.rule} "
                        f"({alert.metric}={alert.value:.6g})"
                    )
            if not args.watch:
                break
            time.sleep(args.interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass

    if args.trace_out:
        records: List[Dict[str, object]] = []
        for bundle in _find_bundles(args.bundles):
            records.extend(load_bundle_requests(bundle))
        trace = stitched_chrome_trace(records)
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            json.dump(trace, handle)
        print(
            f"stitched trace: {trace['metadata'].get('traces', 0)} trace(s), "
            f"{trace['metadata'].get('stitched_traces', 0)} spanning multiple "
            f"processes -> {args.trace_out}"
        )
    if not collector.processes:
        print(f"no complete frames found under {args.spool_dir}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
