"""Online model-quality monitoring for the serving path.

PR 1's telemetry observes *system* health (latencies, counters, loss
curves); this module observes *model* health while traffic flows:

* :class:`StreamingAUC` — fixed-bin histogram AUC over a (click, score)
  outcome stream: O(bins) memory, vectorised O(batch) updates, and
  within-bin ties handled midrank-style so it tracks the exact
  :func:`repro.metrics.auc.roc_auc` closely (see ``tests/obs``);
* :class:`WindowedECE` — expected calibration error over a sliding
  window, exactly equal to :func:`repro.metrics.classification.\
calibration_error` when evaluated on a full window;
* :class:`CohortCTR` — empirical click-through per cohort (cold vs warm
  serving path);
* :class:`ColdStartTracker` — the paper's whole point is scoring items
  with cold statistics, so new arrivals get dedicated telemetry: time to
  first impression, impressions until the warm threshold, and the cosine
  divergence between the generator's vector and the encoder's vector
  sampled at every refresh;
* :class:`QualityMonitor` — the façade bundling the estimators with
  per-channel :class:`~repro.obs.drift.DriftDetector` instances and an
  :class:`~repro.obs.alerts.AlertEngine`.

Like registries and tracers, monitors are *ambient*: instrumented code
(:class:`repro.serving.engine.RealTimeEngine`, the trainers' validation
hook) reports into the innermost monitor activated with
:class:`use_monitor`, and costs one ``None`` check when monitoring is
off.
"""

from __future__ import annotations

import math
import time
from collections import deque
from typing import Deque, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.metrics.auc import roc_auc
from repro.metrics.classification import calibration_error
from repro.obs.alerts import Alert, AlertEngine, AlertRule, AlertSink, Severity
from repro.obs.context import current_trace_context
from repro.obs.drift import DriftDetector
from repro.obs.logging import get_logger, kv
from repro.obs.metrics import get_active_registry
from repro.obs.window import SlidingBlocks

__all__ = [
    "StreamingAUC",
    "WindowedECE",
    "CohortCTR",
    "ColdStartTracker",
    "QualityMonitor",
    "default_quality_rules",
    "get_active_monitor",
    "use_monitor",
]

_LOGGER = get_logger("obs.quality")


def _outcome_arrays(labels, scores) -> Tuple[np.ndarray, np.ndarray]:
    labels = np.asarray(labels, dtype=float).ravel()
    scores = np.asarray(scores, dtype=float).ravel()
    if labels.shape != scores.shape:
        raise ValueError(
            f"labels and scores must match, got {labels.shape} vs {scores.shape}"
        )
    return labels, scores


class StreamingAUC:
    """Histogram-based streaming AUC over a binary outcome stream.

    Scores are binned into ``n_bins`` equal-width bins over ``[lo, hi]``;
    per bin the estimator keeps positive and negative counts, and the
    AUC is the usual rank statistic with every within-bin pair treated
    as a tie (counted half).  The approximation error is bounded by the
    in-bin tie mass, so a few hundred bins put it well inside 0.01 of
    the exact midrank AUC for probability-style score streams.

    With ``window`` set, counts roll through block-rotated windows (see
    :class:`~repro.obs.window.SlidingBlocks`), forgetting old regimes.
    """

    def __init__(
        self,
        n_bins: int = 512,
        lo: float = 0.0,
        hi: float = 1.0,
        window: Optional[int] = None,
        block_size: Optional[int] = None,
    ) -> None:
        if n_bins < 2:
            raise ValueError(f"n_bins must be >= 2, got {n_bins}")
        if not hi > lo:
            raise ValueError(f"need hi > lo, got [{lo}, {hi}]")
        self.n_bins = n_bins
        self.lo = float(lo)
        self.hi = float(hi)
        self._blocks = SlidingBlocks((n_bins, n_bins), window, block_size)

    def update(self, labels, scores) -> None:
        """Fold a batch of (binary label, score) outcomes in."""
        labels, scores = _outcome_arrays(labels, scores)
        if labels.size == 0:
            return
        scaled = (scores - self.lo) / (self.hi - self.lo) * self.n_bins
        bins = np.clip(scaled.astype(np.int64), 0, self.n_bins - 1)
        positive = labels != 0.0
        pos = np.bincount(bins[positive], minlength=self.n_bins).astype(float)
        neg = np.bincount(bins[~positive], minlength=self.n_bins).astype(float)
        self._blocks.add(labels.size, pos, neg)

    @property
    def count(self) -> int:
        """Outcomes inside the current window."""
        return self._blocks.count

    @property
    def value(self) -> Optional[float]:
        """Windowed AUC, or None while only one class has been seen."""
        pos, neg = self._blocks.totals()
        n_positive = pos.sum()
        n_negative = neg.sum()
        if n_positive == 0 or n_negative == 0:
            return None
        negatives_below = np.cumsum(neg) - neg
        pair_wins = (pos * (negatives_below + 0.5 * neg)).sum()
        return float(pair_wins / (n_positive * n_negative))

    def snapshot_state(self) -> Dict[str, object]:
        """Mergeable per-bin positive/negative counts plus the binning."""
        state: Dict[str, object] = {
            "n_bins": self.n_bins,
            "lo": self.lo,
            "hi": self.hi,
        }
        state.update(self._blocks.snapshot_state())
        return state

    def merge_state(self, state: Dict[str, object]) -> None:
        """Fold another estimator's bin counts in (binning must match).

        Exact in cumulative mode: per-bin counts are sums, so the merged
        AUC equals the whole-stream AUC over the union of outcomes.
        """
        if (
            int(state["n_bins"]) != self.n_bins  # type: ignore[arg-type]
            or float(state["lo"]) != self.lo  # type: ignore[arg-type]
            or float(state["hi"]) != self.hi  # type: ignore[arg-type]
        ):
            raise ValueError(
                "StreamingAUC binning mismatch: cannot merge "
                f"({state['n_bins']} bins over [{state['lo']}, {state['hi']}]) "
                f"into ({self.n_bins} bins over [{self.lo}, {self.hi}])"
            )
        self._blocks.merge_state(state)


class WindowedECE:
    """Sliding-window expected calibration error.

    Per equal-width probability bin the estimator keeps (count, label
    sum, probability sum); the windowed ECE is then
    ``sum_b (count_b / total) * |mean_prob_b - mean_label_b|`` — on a
    full window this matches
    :func:`repro.metrics.classification.calibration_error` exactly
    (same binning, same weighting).
    """

    def __init__(
        self,
        n_bins: int = 10,
        window: Optional[int] = None,
        block_size: Optional[int] = None,
    ) -> None:
        if n_bins < 1:
            raise ValueError(f"n_bins must be >= 1, got {n_bins}")
        self.n_bins = n_bins
        self._edges = np.linspace(0.0, 1.0, n_bins + 1)
        self._blocks = SlidingBlocks((n_bins, n_bins, n_bins), window, block_size)

    def update(self, labels, probabilities) -> None:
        """Fold a batch of (binary label, probability) outcomes in."""
        labels, probabilities = _outcome_arrays(labels, probabilities)
        if labels.size == 0:
            return
        indices = np.clip(
            np.digitize(probabilities, self._edges[1:-1]), 0, self.n_bins - 1
        )
        count = np.bincount(indices, minlength=self.n_bins).astype(float)
        label_sum = np.bincount(indices, weights=labels, minlength=self.n_bins)
        score_sum = np.bincount(
            indices, weights=probabilities, minlength=self.n_bins
        )
        self._blocks.add(labels.size, count, label_sum, score_sum)

    @property
    def count(self) -> int:
        return self._blocks.count

    @property
    def value(self) -> Optional[float]:
        """Windowed ECE, or None before any outcome arrived."""
        count, label_sum, score_sum = self._blocks.totals()
        total = count.sum()
        if total == 0:
            return None
        occupied = count > 0
        gaps = np.abs(
            score_sum[occupied] / count[occupied]
            - label_sum[occupied] / count[occupied]
        )
        return float(np.sum(count[occupied] / total * gaps))

    def snapshot_state(self) -> Dict[str, object]:
        """Mergeable per-bin (count, label sum, score sum) accumulators."""
        state: Dict[str, object] = {"n_bins": self.n_bins}
        state.update(self._blocks.snapshot_state())
        return state

    def merge_state(self, state: Dict[str, object]) -> None:
        """Fold another estimator's bin accumulators in (bins must match).

        Exact in cumulative mode: the merged ECE equals the whole-stream
        ECE over the union of outcomes (same bins, summed accumulators).
        """
        if int(state["n_bins"]) != self.n_bins:  # type: ignore[arg-type]
            raise ValueError(
                f"WindowedECE bin mismatch: cannot merge {state['n_bins']} "
                f"bins into {self.n_bins}"
            )
        self._blocks.merge_state(state)


class CohortCTR:
    """Windowed impression/click totals per named cohort."""

    def __init__(
        self, window: Optional[int] = None, block_size: Optional[int] = None
    ) -> None:
        if window is not None and window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if block_size is None and window is not None:
            block_size = max(1, window // 8)
        self.window = window
        self.block_size = block_size
        self._live_impressions: Dict[str, float] = {}
        self._live_clicks: Dict[str, float] = {}
        self._live_count = 0
        self._sealed: List[Tuple[int, Dict[str, float], Dict[str, float]]] = []

    def record(self, cohort: str, impressions: float, clicks: float) -> None:
        """Add a batch of impressions/clicks under ``cohort``."""
        if impressions < 0 or clicks < 0:
            raise ValueError("impressions and clicks must be >= 0")
        if impressions == 0 and clicks == 0:
            return
        self._live_impressions[cohort] = (
            self._live_impressions.get(cohort, 0.0) + impressions
        )
        self._live_clicks[cohort] = self._live_clicks.get(cohort, 0.0) + clicks
        self._live_count += int(impressions)
        if self.window is None:
            return
        if self._live_count >= self.block_size:
            self._sealed.append(
                (self._live_count, self._live_impressions, self._live_clicks)
            )
            self._live_impressions = {}
            self._live_clicks = {}
            self._live_count = 0
            retained = sum(n for n, _, _ in self._sealed)
            while self._sealed and retained - self._sealed[0][0] >= self.window:
                retained -= self._sealed.pop(0)[0]

    def _totals(self) -> Tuple[Dict[str, float], Dict[str, float]]:
        impressions = dict(self._live_impressions)
        clicks = dict(self._live_clicks)
        for _, sealed_impressions, sealed_clicks in self._sealed:
            for cohort, value in sealed_impressions.items():
                impressions[cohort] = impressions.get(cohort, 0.0) + value
            for cohort, value in sealed_clicks.items():
                clicks[cohort] = clicks.get(cohort, 0.0) + value
        return impressions, clicks

    def cohorts(self) -> List[str]:
        impressions, _ = self._totals()
        return sorted(impressions)

    def ctr(self, cohort: str) -> Optional[float]:
        """Windowed CTR of one cohort (None without impressions)."""
        impressions, clicks = self._totals()
        shown = impressions.get(cohort, 0.0)
        if shown == 0:
            return None
        return clicks.get(cohort, 0.0) / shown

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-cohort impressions/clicks/ctr inside the window."""
        impressions, clicks = self._totals()
        return {
            cohort: {
                "impressions": impressions[cohort],
                "clicks": clicks.get(cohort, 0.0),
                "ctr": (
                    clicks.get(cohort, 0.0) / impressions[cohort]
                    if impressions[cohort]
                    else 0.0
                ),
            }
            for cohort in sorted(impressions)
        }

    def snapshot_state(self) -> Dict[str, object]:
        """Mergeable windowed per-cohort impression/click totals."""
        impressions, clicks = self._totals()
        return {"impressions": impressions, "clicks": clicks}

    def merge_state(self, state: Dict[str, object]) -> None:
        """Fold another process's cohort totals in (sums per cohort)."""
        impressions: Dict[str, float] = dict(state["impressions"])  # type: ignore[arg-type]
        clicks: Dict[str, float] = dict(state["clicks"])  # type: ignore[arg-type]
        for cohort in sorted(set(impressions) | set(clicks)):
            self.record(
                str(cohort),
                float(impressions.get(cohort, 0.0)),
                float(clicks.get(cohort, 0.0)),
            )


class ColdStartTracker:
    """Per-new-item lifecycle telemetry.

    Tracks, per catalogue slot: release time (defaults to stream start),
    the timestamp of the first impression, cumulative impressions, the
    impression count at which the slot crossed the warm threshold, and
    the latest generator-vs-encoder cosine divergence (``1 - cosine``)
    sampled when the engine re-encodes the slot at refresh.
    """

    def __init__(
        self,
        n_slots: int,
        warm_view_threshold: int = 50,
        sample_capacity: int = 4096,
    ) -> None:
        if n_slots <= 0:
            raise ValueError(f"n_slots must be positive, got {n_slots}")
        if warm_view_threshold < 1:
            raise ValueError(
                f"warm_view_threshold must be >= 1, got {warm_view_threshold}"
            )
        self.n_slots = n_slots
        self.warm_view_threshold = warm_view_threshold
        self._release = np.zeros(n_slots)
        self._first_impression = np.full(n_slots, np.nan)
        self._impressions = np.zeros(n_slots, dtype=np.int64)
        self._warm_at = np.full(n_slots, -1, dtype=np.int64)
        self._last_divergence = np.full(n_slots, np.nan)
        self._divergence_samples: List[float] = []
        self._sample_capacity = sample_capacity
        self._sample_stride = 1
        self._since_kept = 0

    # ------------------------------------------------------------------
    def note_release(self, slot: int, timestamp: float) -> None:
        """Record when a slot entered the catalogue."""
        self._release[slot] = float(timestamp)

    def cold_mask(self, item_ids: np.ndarray) -> np.ndarray:
        """Which of ``item_ids`` are still below the warm threshold."""
        return self._impressions[item_ids] < self.warm_view_threshold

    def observe_impressions(
        self, item_ids: np.ndarray, timestamps: np.ndarray
    ) -> None:
        """Fold a batch of impressions (VIEW events) in, vectorised."""
        if item_ids.size == 0:
            return
        counts = np.bincount(item_ids, minlength=self.n_slots)
        updated = self._impressions + counts
        crossed = (
            (self._warm_at < 0)
            & (updated >= self.warm_view_threshold)
            & (counts > 0)
        )
        self._warm_at[crossed] = updated[crossed]
        unique_items, first_positions = np.unique(item_ids, return_index=True)
        fresh = np.isnan(self._first_impression[unique_items])
        self._first_impression[unique_items[fresh]] = timestamps[
            first_positions[fresh]
        ]
        self._impressions = updated

    def observe_divergence(
        self, slots: np.ndarray, divergences: np.ndarray
    ) -> None:
        """Record ``1 - cosine`` divergences sampled at a refresh."""
        slots = np.asarray(slots, dtype=np.int64)
        divergences = np.asarray(divergences, dtype=float)
        self._last_divergence[slots] = divergences
        # Bounded sample (stride decimation, as Histogram does) for
        # stable percentile summaries over the whole run.
        for value in divergences:
            self._since_kept += 1
            if self._since_kept >= self._sample_stride:
                self._since_kept = 0
                self._divergence_samples.append(float(value))
                if len(self._divergence_samples) >= self._sample_capacity:
                    self._divergence_samples = self._divergence_samples[::2]
                    self._sample_stride *= 2

    # ------------------------------------------------------------------
    @property
    def items_seen(self) -> int:
        """Slots with at least one impression."""
        return int(np.sum(~np.isnan(self._first_impression)))

    @property
    def warm_items(self) -> int:
        """Slots that have crossed the warm threshold."""
        return int(np.sum(self._warm_at >= 0))

    def divergence_mean(self) -> Optional[float]:
        """Mean of the latest divergence per sampled slot."""
        if np.all(np.isnan(self._last_divergence)):
            return None
        return float(np.nanmean(self._last_divergence))

    @staticmethod
    def _stats(values: np.ndarray) -> Optional[Dict[str, float]]:
        if values.size == 0:
            return None
        return {
            "mean": float(values.mean()),
            "p50": float(np.percentile(values, 50)),
            "p90": float(np.percentile(values, 90)),
            "max": float(values.max()),
        }

    def summary(self) -> Dict[str, object]:
        """JSON-friendly cohort lifecycle summary."""
        seen = ~np.isnan(self._first_impression)
        time_to_first = self._first_impression[seen] - self._release[seen]
        warm = self._warm_at >= 0
        divergences = np.asarray(self._divergence_samples)
        return {
            "n_slots": self.n_slots,
            "items_seen": int(seen.sum()),
            "warm_items": int(warm.sum()),
            "warm_view_threshold": self.warm_view_threshold,
            "time_to_first_impression": self._stats(time_to_first),
            "impressions_until_warm": self._stats(
                self._warm_at[warm].astype(float)
            ),
            "vector_divergence": self._stats(divergences),
            "vector_divergence_current_mean": self.divergence_mean(),
        }


def default_quality_rules(
    min_auc: float = 0.52,
    max_ece: float = 0.25,
    psi_warning: float = 0.25,
    psi_critical: float = 0.60,
    max_divergence: float = 0.80,
) -> Tuple[AlertRule, ...]:
    """The stock serving-quality rule set (thresholds overridable).

    The defaults are deliberately on the loose side — they catch
    collapses (an AUC at coin-flip level, a calibration blow-out, a
    score distribution that no longer resembles the reference, generator
    vectors pointing away from the encoder's), not day-to-day noise.
    """
    return (
        AlertRule(
            "auc-collapse",
            "quality.streaming_auc",
            min_auc,
            direction="below",
            clear_threshold=min_auc + 0.02,
            consecutive=2,
            severity=Severity.CRITICAL,
        ),
        AlertRule(
            "calibration-collapse",
            "quality.ece",
            max_ece,
            clear_threshold=max_ece * 0.7,
            consecutive=2,
            severity=Severity.WARNING,
        ),
        AlertRule(
            "score-drift",
            "drift.score.psi",
            psi_warning,
            clear_threshold=psi_warning * 0.6,
            consecutive=2,
            severity=Severity.WARNING,
        ),
        AlertRule(
            "score-drift-critical",
            "drift.score.psi",
            psi_critical,
            clear_threshold=psi_critical * 0.6,
            consecutive=2,
            severity=Severity.CRITICAL,
        ),
        AlertRule(
            "generator-divergence",
            "coldstart.divergence_mean",
            max_divergence,
            clear_threshold=max_divergence * 0.8,
            consecutive=2,
            severity=Severity.WARNING,
        ),
    )


class QualityMonitor:
    """Bundles the streaming estimators, drift detectors and alerting.

    The serving engine feeds a monitor through three entry points:
    :meth:`observe_serving_batch` at ingest (impressions, clicks,
    cohorts, cold-start lifecycle, AUC/ECE over served scores),
    :meth:`observe_scores` at refresh (catalogue score distribution into
    the ``score`` drift channel) and :meth:`observe_divergence` when
    warm slots are re-encoded.  Trainers feed
    :meth:`observe_validation` with held-out scores each epoch.

    Parameters
    ----------
    warm_view_threshold:
        Cold/warm cohort boundary; overridden by the engine's own
        threshold at :meth:`attach_catalogue` time.
    auc_bins, auc_window, ece_bins, ece_window, ctr_window:
        Estimator resolutions and sliding-window spans (None: cumulative).
    drift_reference, drift_window, drift_bins:
        Score-drift detector configuration (see
        :class:`~repro.obs.drift.DriftDetector`).
    rules, sinks:
        Alerting configuration; defaults to :func:`default_quality_rules`
        with a log sink.
    min_outcomes:
        Outcomes required before AUC/ECE appear in snapshots (and can
        therefore trip alert rules) — warm-up handling.
    """

    def __init__(
        self,
        warm_view_threshold: int = 50,
        auc_bins: int = 512,
        auc_window: Optional[int] = None,
        ece_bins: int = 10,
        ece_window: Optional[int] = None,
        ctr_window: Optional[int] = None,
        drift_reference: int = 2000,
        drift_window: int = 2000,
        drift_bins: int = 32,
        rules: Optional[Sequence[AlertRule]] = None,
        sinks: Sequence[AlertSink] = (),
        min_outcomes: int = 200,
    ) -> None:
        self.warm_view_threshold = warm_view_threshold
        self.auc = StreamingAUC(n_bins=auc_bins, window=auc_window)
        self.ece = WindowedECE(n_bins=ece_bins, window=ece_window)
        self.cohort_ctr = CohortCTR(window=ctr_window)
        self.score_drift = DriftDetector(
            n_bins=drift_bins,
            reference_size=drift_reference,
            window=drift_window,
        )
        self.feature_drift: Dict[str, DriftDetector] = {}
        self.alerts = AlertEngine(
            rules if rules is not None else default_quality_rules(),
            sinks=sinks,
        )
        self.cold_start: Optional[ColdStartTracker] = None
        self.min_outcomes = min_outcomes
        self.validation: Dict[str, Dict[str, float]] = {}
        self.impressions_seen = 0
        self.clicks_seen = 0
        self.outcomes_scored = 0
        self.score_emissions = 0
        # Bounded log of ingestion samples, each stamped with the trace
        # of the request that produced it — joins monitor state to the
        # flight recorder's per-request records.
        self.samples: Deque[Dict[str, object]] = deque(maxlen=1024)

    def _sample(self, entry_point: str, **fields: object) -> None:
        context = current_trace_context()
        record: Dict[str, object] = {
            "entry_point": entry_point,
            "trace_id": None if context is None else context.trace_id,
            "at_unix": time.time(),
        }
        record.update(fields)
        self.samples.append(record)

    # ------------------------------------------------------------------
    # Attachment and per-channel configuration
    # ------------------------------------------------------------------
    def attach_catalogue(
        self, n_slots: int, warm_view_threshold: Optional[int] = None
    ) -> "QualityMonitor":
        """Size the cold-start tracker for a catalogue (idempotent)."""
        if warm_view_threshold is not None:
            self.warm_view_threshold = warm_view_threshold
        if self.cold_start is None or self.cold_start.n_slots < n_slots:
            self.cold_start = ColdStartTracker(
                n_slots, warm_view_threshold=self.warm_view_threshold
            )
        return self

    def watch_feature(self, name: str, **detector_kwargs) -> DriftDetector:
        """Register (or fetch) a named feature drift channel."""
        if name not in self.feature_drift:
            self.feature_drift[name] = DriftDetector(**detector_kwargs)
        return self.feature_drift[name]

    def observe_feature(self, name: str, values) -> None:
        """Feed one batch of a watched feature's values."""
        self.watch_feature(name).update(values)

    # ------------------------------------------------------------------
    # Serving-path entry points
    # ------------------------------------------------------------------
    def observe_serving_batch(self, events, scores=None, columns=None) -> None:
        """Fold one ingested event batch in.

        ``scores`` is the score vector the engine was serving while the
        events happened (its last refresh); when None (no refresh yet),
        outcomes update cohorts and lifecycle but not AUC/ECE.
        ``columns`` optionally carries the precomputed
        :func:`~repro.serving.events.event_columns` arrays so callers
        that already decomposed the batch (the engine) don't pay for a
        second pass over the python event objects.
        """
        # Imported here (not at module top) to keep obs free of a hard
        # package dependency on repro.serving.
        from repro.serving.events import (
            EventKind,
            KIND_CODES,
            event_columns,
            join_outcome_columns,
        )

        if columns is None:
            if not events:
                return
            columns = event_columns(events)
        kinds, items, users, timestamps = columns
        if items.size == 0:
            return
        self._sample(
            "serving_batch", events=int(items.size), scored=scores is not None
        )
        if self.cold_start is None:
            self.attach_catalogue(int(items.max()) + 1)
        tracker = self.cold_start
        release_mask = kinds == KIND_CODES[EventKind.RELEASE]
        if release_mask.any():
            for slot, timestamp in zip(
                items[release_mask], timestamps[release_mask]
            ):
                tracker.note_release(int(slot), float(timestamp))
        items_v, users_v, ts_v, clicked = join_outcome_columns(
            kinds, items, users, timestamps
        )
        self.clicks_seen += int(np.sum(kinds == KIND_CODES[EventKind.CLICK]))
        if items_v.size == 0:
            return
        self.impressions_seen += int(items_v.size)
        cold = tracker.cold_mask(items_v)
        tracker.observe_impressions(items_v, ts_v)
        n_cold = int(cold.sum())
        self.cohort_ctr.record("cold", n_cold, float(clicked[cold].sum()))
        self.cohort_ctr.record(
            "warm", items_v.size - n_cold, float(clicked[~cold].sum())
        )
        if scores is not None:
            served = np.clip(np.asarray(scores)[items_v], 0.0, 1.0)
            labels = clicked.astype(float)
            self.auc.update(labels, served)
            self.ece.update(labels, served)
            self.outcomes_scored += int(items_v.size)

    def observe_scores(self, scores) -> None:
        """Feed a refreshed catalogue score distribution (drift channel)."""
        self._sample("scores", n=int(np.asarray(scores).size))
        self.score_drift.update(scores)
        self.score_emissions += 1

    def observe_divergence(self, slots, generated, encoded) -> None:
        """Record generator-vs-encoder cosine divergence for re-encoded slots."""
        if self.cold_start is None:
            return
        self._sample("divergence", slots=int(np.asarray(slots).size))
        generated = np.asarray(generated, dtype=float)
        encoded = np.asarray(encoded, dtype=float)
        inner = np.sum(generated * encoded, axis=1)
        norms = np.linalg.norm(generated, axis=1) * np.linalg.norm(
            encoded, axis=1
        )
        norms = np.where(norms < 1e-12, 1.0, norms)
        self.cold_start.observe_divergence(slots, 1.0 - inner / norms)

    # ------------------------------------------------------------------
    # Training-eval entry point
    # ------------------------------------------------------------------
    def observe_validation(self, path: str, labels, scores) -> None:
        """Record exact quality of one validation pass (per model path)."""
        labels, scores = _outcome_arrays(labels, scores)
        self._sample("validation", path=path, n=int(labels.size))
        record: Dict[str, float] = {"n": float(labels.size)}
        try:
            record["auc"] = roc_auc(labels, scores)
        except ValueError:
            pass
        try:
            record["ece"] = calibration_error(labels, np.clip(scores, 0.0, 1.0))
        except ValueError:
            pass
        self.validation[path] = record

    # ------------------------------------------------------------------
    # Snapshots, alerting, reporting
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Optional[float]]:
        """Flat metric mapping (None while an estimator warms up)."""
        warmed = self.outcomes_scored >= self.min_outcomes
        out: Dict[str, Optional[float]] = {
            "quality.streaming_auc": self.auc.value if warmed else None,
            "quality.ece": self.ece.value if warmed else None,
            "quality.impressions": float(self.impressions_seen),
            "quality.clicks": float(self.clicks_seen),
            "quality.outcomes_scored": float(self.outcomes_scored),
        }
        for cohort in self.cohort_ctr.cohorts():
            out[f"quality.ctr.{cohort}"] = self.cohort_ctr.ctr(cohort)
        out["drift.score.psi"] = self.score_drift.psi()
        out["drift.score.kl"] = self.score_drift.kl()
        for name, detector in sorted(self.feature_drift.items()):
            out[f"drift.feature.{name}.psi"] = detector.psi()
            out[f"drift.feature.{name}.kl"] = detector.kl()
        if self.cold_start is not None:
            out["coldstart.items_seen"] = float(self.cold_start.items_seen)
            out["coldstart.warm_items"] = float(self.cold_start.warm_items)
            out["coldstart.divergence_mean"] = self.cold_start.divergence_mean()
        for path, record in sorted(self.validation.items()):
            for key, value in record.items():
                if key != "n":
                    out[f"quality.validation.{path}.{key}"] = value
        return out

    def snapshot_state(self) -> Dict[str, object]:
        """Mergeable estimator states for fleet aggregation.

        Ships the AUC/ECE/cohort-CTR sufficient statistics plus the
        outcome counters.  Per-process state that does not merge
        meaningfully stays local: drift detectors (their frozen
        references differ per process) and the cold-start tracker
        (slot-indexed lifecycle arrays; per-shard catalogues overlap) —
        both remain visible in each process's own report.
        """
        return {
            "auc": self.auc.snapshot_state(),
            "ece": self.ece.snapshot_state(),
            "cohort_ctr": self.cohort_ctr.snapshot_state(),
            "impressions_seen": self.impressions_seen,
            "clicks_seen": self.clicks_seen,
            "outcomes_scored": self.outcomes_scored,
            "score_emissions": self.score_emissions,
            "min_outcomes": self.min_outcomes,
        }

    def merge_state(self, state: Dict[str, object]) -> None:
        """Fold another monitor's shipped state into this one."""
        self.auc.merge_state(state["auc"])  # type: ignore[arg-type]
        self.ece.merge_state(state["ece"])  # type: ignore[arg-type]
        self.cohort_ctr.merge_state(state["cohort_ctr"])  # type: ignore[arg-type]
        self.impressions_seen += int(state["impressions_seen"])  # type: ignore[arg-type]
        self.clicks_seen += int(state["clicks_seen"])  # type: ignore[arg-type]
        self.outcomes_scored += int(state["outcomes_scored"])  # type: ignore[arg-type]
        self.score_emissions += int(state["score_emissions"])  # type: ignore[arg-type]

    def evaluate(self) -> List[Alert]:
        """Run the alert rules against a fresh snapshot.

        Finite snapshot values are also mirrored into the active metrics
        registry as gauges, so Prometheus/JSONL exports carry them.
        """
        snapshot = self.snapshot()
        registry = get_active_registry()
        if registry is not None:
            for name, value in snapshot.items():
                if isinstance(value, (int, float)) and math.isfinite(value):
                    registry.gauge(name).set(value)
        transitions = self.alerts.evaluate(snapshot)
        for alert in transitions:
            _LOGGER.debug(
                kv("alert transition", rule=alert.rule, kind=alert.kind)
            )
        return transitions

    def iter_records(self) -> Iterator[Dict[str, object]]:
        """Report lines (quality / drift / coldstart / monitor_sample / alert)."""
        for name, value in self.snapshot().items():
            yield {"type": "quality", "name": name, "value": value}
        channels: List[Tuple[str, DriftDetector]] = [("score", self.score_drift)]
        channels.extend(sorted(self.feature_drift.items()))
        for channel, detector in channels:
            record: Dict[str, object] = {"type": "drift", "channel": channel}
            record.update(detector.snapshot())
            yield record
        if self.cold_start is not None:
            record = {"type": "coldstart"}
            record.update(self.cold_start.summary())
            yield record
        for sample in self.samples:
            record = {"type": "monitor_sample"}
            record.update(sample)
            yield record
        for alert_record in self.alerts.iter_records():
            record = {"type": "alert"}
            record.update(alert_record)
            yield record

    def to_text(self) -> str:
        """Short human-readable monitor summary."""
        lines = ["model-quality monitor"]
        for name, value in self.snapshot().items():
            rendered = "n/a" if value is None else f"{value:.6g}"
            lines.append(f"  {name} = {rendered}")
        active = self.alerts.active_alerts()
        lines.append(
            f"  alerts: {len(self.alerts.fired)} fired, "
            f"{len(active)} active{' (' + ', '.join(active) + ')' if active else ''}"
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Active-monitor scoping (mirrors use_registry / use_tracer)
# ----------------------------------------------------------------------
_ACTIVE_MONITORS: List[QualityMonitor] = []


def get_active_monitor() -> Optional[QualityMonitor]:
    """The innermost active monitor, or None when monitoring is off."""
    return _ACTIVE_MONITORS[-1] if _ACTIVE_MONITORS else None


class use_monitor:
    """Context manager activating ``monitor`` for the enclosed block."""

    def __init__(self, monitor: QualityMonitor) -> None:
        self._monitor = monitor

    def __enter__(self) -> QualityMonitor:
        _ACTIVE_MONITORS.append(self._monitor)
        return self._monitor

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        for position in range(len(_ACTIVE_MONITORS) - 1, -1, -1):
            if _ACTIVE_MONITORS[position] is self._monitor:
                del _ACTIVE_MONITORS[position]
                break
