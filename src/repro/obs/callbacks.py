"""Trainer telemetry: the callback interface and its metrics adapter.

``repro.core.trainer._BaseTrainer`` emits one :class:`BatchStats` per
optimizer step and one record per epoch to every attached
:class:`TrainerCallback` — both callbacks passed to the trainer directly
and *global* callbacks registered here (which is how a
:class:`~repro.obs.session.TelemetrySession` observes trainers it never
constructed).

:class:`TelemetryCallback` converts those events into registry metrics —
per-batch loss histograms, per-parameter-group gradient norms, the
learning rate — and watches the adversarial game for divergence: when the
generator/encoder loss ratio drifts by more than ``drift_factor`` from
its running (exponential-moving-average) level, it increments the
``trainer.divergence_warning`` counter and logs a warning.  This is the
collapse monitor that alternating schemes like ATNN's need (per-epoch
means hide it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs.logging import get_logger, kv
from repro.obs.metrics import MetricsRegistry, get_active_registry

__all__ = [
    "BatchStats",
    "TrainerCallback",
    "TelemetryCallback",
    "register_global_callback",
    "unregister_global_callback",
    "global_callbacks",
]

_LOGGER = get_logger("obs.trainer")


@dataclass(frozen=True)
class BatchStats:
    """One optimizer step's diagnostics.

    Attributes
    ----------
    step:
        The optimizer's global step count after this update.
    path:
        Which alternating path produced the step (``"encoder"`` or
        ``"generator"``; plain trainers use ``"encoder"``).
    losses:
        Scalar loss components of this step (e.g. ``loss_i`` or
        ``loss_g``/``loss_s``).
    grad_norm:
        Global L2 norm over all gradients present after the step.
    grad_norms:
        L2 norm per top-level parameter group of the model.
    lr:
        The optimizer's current learning rate.
    """

    step: int
    path: str
    losses: Dict[str, float]
    grad_norm: float
    grad_norms: Dict[str, float]
    lr: float


class TrainerCallback:
    """Base class; subclasses override any subset of the hooks."""

    def on_train_begin(self, trainer, model) -> None:
        pass

    def on_batch_end(self, stats: BatchStats) -> None:
        pass

    def on_epoch_end(self, epoch: int, record: Dict[str, float]) -> None:
        pass

    def on_validation_scores(self, path: str, labels, scores) -> None:
        """Raw held-out (labels, scores) of one validation pass.

        ``path`` names the scoring head (``"encoder"``/``"generator"``).
        Trainers call this right after computing their validation AUC so
        quality monitors can derive exact calibration metrics without
        re-running prediction.
        """
        pass

    def on_train_end(self, history) -> None:
        pass


# ----------------------------------------------------------------------
# Global callbacks (attached by telemetry sessions)
# ----------------------------------------------------------------------
_GLOBAL_CALLBACKS: List[TrainerCallback] = []


def register_global_callback(callback: TrainerCallback) -> None:
    """Attach ``callback`` to every trainer run until unregistered."""
    if callback not in _GLOBAL_CALLBACKS:
        _GLOBAL_CALLBACKS.append(callback)


def unregister_global_callback(callback: TrainerCallback) -> None:
    """Detach a previously registered global callback (no-op if absent)."""
    try:
        _GLOBAL_CALLBACKS.remove(callback)
    except ValueError:
        pass


def global_callbacks() -> Tuple[TrainerCallback, ...]:
    """The currently registered global callbacks."""
    return tuple(_GLOBAL_CALLBACKS)


# ----------------------------------------------------------------------
# Metrics adapter
# ----------------------------------------------------------------------
# Loss keys reported by the encoder path of each trainer, used to anchor
# the generator/encoder ratio.
_ENCODER_LOSS_KEYS = ("loss_i", "loss_r", "loss")
_GENERATOR_LOSS_KEY = "loss_g"

# Loss histograms use wide log-style buckets (losses are unit-scale but
# can spike by orders of magnitude when the game diverges).
_LOSS_BUCKETS = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 100.0)


class TelemetryCallback(TrainerCallback):
    """Streams trainer events into a :class:`MetricsRegistry`.

    Parameters
    ----------
    registry:
        Destination registry; defaults to the active one at event time.
    drift_factor:
        How far the generator/encoder loss ratio may deviate from its EMA
        (multiplicatively, either direction) before a divergence warning
        fires.
    warmup_batches:
        Generator steps observed before drift checks start (the ratio is
        meaningless while both paths are still settling).
    ema_decay:
        Smoothing of the log-ratio EMA.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        drift_factor: float = 3.0,
        warmup_batches: int = 20,
        ema_decay: float = 0.98,
    ) -> None:
        if drift_factor <= 1.0:
            raise ValueError(f"drift_factor must be > 1, got {drift_factor}")
        if not 0.0 < ema_decay < 1.0:
            raise ValueError(f"ema_decay must be in (0, 1), got {ema_decay}")
        self._registry = registry
        self.drift_factor = drift_factor
        self.warmup_batches = warmup_batches
        self.ema_decay = ema_decay
        self.epochs: List[Dict[str, float]] = []
        self._last_encoder_loss: Optional[float] = None
        self._log_ratio_ema: Optional[float] = None
        self._generator_batches = 0

    def _resolve_registry(self) -> Optional[MetricsRegistry]:
        return self._registry if self._registry is not None else get_active_registry()

    # ------------------------------------------------------------------
    def on_train_begin(self, trainer, model) -> None:
        registry = self._resolve_registry()
        if registry is not None:
            registry.counter("trainer.runs").inc()
            registry.gauge("trainer.lr").set(trainer.lr)

    def on_batch_end(self, stats: BatchStats) -> None:
        registry = self._resolve_registry()
        if registry is not None:
            registry.counter("trainer.batches").inc()
            registry.gauge("trainer.lr").set(stats.lr)
            for key, value in stats.losses.items():
                registry.histogram(
                    f"trainer.{key}", buckets=_LOSS_BUCKETS
                ).observe(value)
            registry.histogram("trainer.grad_norm").observe(stats.grad_norm)
            for group, norm in stats.grad_norms.items():
                registry.histogram(f"trainer.grad_norm.{group}").observe(norm)
        self._watch_divergence(stats, registry)

    def on_epoch_end(self, epoch: int, record: Dict[str, float]) -> None:
        self.epochs.append(dict(record))
        registry = self._resolve_registry()
        if registry is not None:
            registry.gauge("trainer.epoch").set(epoch + 1)
        _LOGGER.debug(kv("epoch finished", epoch=epoch, **record))

    def on_validation_scores(self, path: str, labels, scores) -> None:
        # Route to the active quality monitor (imported lazily: quality
        # imports alerts which imports metrics; importing quality here at
        # module top would create a cycle).
        from repro.obs.quality import get_active_monitor

        monitor = get_active_monitor()
        if monitor is not None:
            monitor.observe_validation(path, labels, scores)

    # ------------------------------------------------------------------
    def _watch_divergence(
        self, stats: BatchStats, registry: Optional[MetricsRegistry]
    ) -> None:
        """Track the generator/encoder loss ratio; flag drift and NaNs."""
        non_finite = [k for k, v in stats.losses.items() if not math.isfinite(v)]
        if non_finite:
            self._warn(
                registry,
                "non-finite loss",
                step=stats.step,
                keys=",".join(non_finite),
            )
            return
        for key in _ENCODER_LOSS_KEYS:
            if key in stats.losses:
                self._last_encoder_loss = stats.losses[key]
                return
        generator_loss = stats.losses.get(_GENERATOR_LOSS_KEY)
        if generator_loss is None or not self._last_encoder_loss:
            return
        if generator_loss <= 0 or self._last_encoder_loss <= 0:
            return
        log_ratio = math.log(generator_loss / self._last_encoder_loss)
        self._generator_batches += 1
        if self._log_ratio_ema is None:
            self._log_ratio_ema = log_ratio
            return
        drifted = (
            self._generator_batches > self.warmup_batches
            and abs(log_ratio - self._log_ratio_ema) > math.log(self.drift_factor)
        )
        if drifted:
            self._warn(
                registry,
                "generator/encoder loss ratio drifted",
                step=stats.step,
                ratio=math.exp(log_ratio),
                ema_ratio=math.exp(self._log_ratio_ema),
            )
        self._log_ratio_ema = (
            self.ema_decay * self._log_ratio_ema + (1.0 - self.ema_decay) * log_ratio
        )

    def _warn(self, registry: Optional[MetricsRegistry], message: str, **fields):
        if registry is not None:
            registry.counter("trainer.divergence_warning").inc()
        _LOGGER.warning(kv(message, **fields))
