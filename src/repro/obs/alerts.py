"""Threshold + hysteresis alerting over streaming quality metrics.

An :class:`AlertEngine` is evaluated periodically (the serving engine
does it once per refresh) against a flat ``{metric_name: value}``
snapshot.  Each :class:`AlertRule` watches one metric with

* a **direction** (``"above"`` or ``"below"`` the threshold is bad),
* a **consecutive** requirement — the metric must breach on that many
  successive evaluations before the alert fires (debouncing one-off
  spikes), and
* a **hysteresis band** — once fired, the alert stays active until the
  metric crosses back over ``clear_threshold`` (not merely back over the
  firing threshold), so a metric hovering at the boundary cannot flap.

Fired and resolved transitions are emitted as :class:`Alert` records to
pluggable sinks: :class:`LogSink` (structured logging),
:class:`JsonlSink` (append to a JSONL file) and :class:`CallbackSink`
(any callable).  Missing or non-finite metric values leave a rule's
state untouched — a warming-up estimator neither fires nor clears
anything.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.obs.context import current_trace_context
from repro.obs.logging import get_logger, kv
from repro.obs.metrics import get_active_registry

__all__ = [
    "Severity",
    "AlertRule",
    "Alert",
    "AlertSink",
    "LogSink",
    "JsonlSink",
    "CallbackSink",
    "AlertEngine",
    "register_alert_observer",
    "unregister_alert_observer",
]

_LOGGER = get_logger("obs.alerts")


class Severity:
    """Alert severity levels, mildest first."""

    INFO = "info"
    WARNING = "warning"
    CRITICAL = "critical"

    ORDER = (INFO, WARNING, CRITICAL)


@dataclass(frozen=True)
class AlertRule:
    """One thresholded watch on one metric.

    Attributes
    ----------
    name:
        Unique rule identifier (used in alert records and engine state).
    metric:
        Key looked up in the snapshot passed to ``evaluate``.
    threshold:
        Firing boundary.
    direction:
        ``"above"`` — values >= threshold breach; ``"below"`` — values
        <= threshold breach.
    clear_threshold:
        Hysteresis boundary the metric must cross to resolve an active
        alert; defaults to ``threshold`` (no band).
    consecutive:
        Breaching evaluations required before firing.
    severity:
        One of :class:`Severity`.
    """

    name: str
    metric: str
    threshold: float
    direction: str = "above"
    clear_threshold: Optional[float] = None
    consecutive: int = 1
    severity: str = Severity.WARNING

    def __post_init__(self) -> None:
        if self.direction not in ("above", "below"):
            raise ValueError(
                f"direction must be 'above' or 'below', got {self.direction!r}"
            )
        if self.consecutive < 1:
            raise ValueError(f"consecutive must be >= 1, got {self.consecutive}")
        if self.severity not in Severity.ORDER:
            raise ValueError(
                f"severity must be one of {Severity.ORDER}, got {self.severity!r}"
            )
        if self.clear_threshold is not None:
            ok = (
                self.clear_threshold <= self.threshold
                if self.direction == "above"
                else self.clear_threshold >= self.threshold
            )
            if not ok:
                raise ValueError(
                    "clear_threshold must sit on the healthy side of "
                    f"threshold ({self.direction}), got clear="
                    f"{self.clear_threshold} vs threshold={self.threshold}"
                )

    # ------------------------------------------------------------------
    def breaches(self, value: float) -> bool:
        """Whether ``value`` is on the bad side of the firing threshold."""
        return value >= self.threshold if self.direction == "above" else value <= self.threshold

    def clears(self, value: float) -> bool:
        """Whether ``value`` is back past the hysteresis boundary."""
        boundary = (
            self.clear_threshold if self.clear_threshold is not None else self.threshold
        )
        return value < boundary if self.direction == "above" else value > boundary


@dataclass(frozen=True)
class Alert:
    """One fired/resolved transition of a rule.

    ``trace_id`` names the request whose evaluation produced the
    transition (None when the rules were evaluated outside any
    :class:`~repro.obs.context.request_scope`), so an alert can be
    joined back to the flight-recorder exemplar that triggered it.
    """

    rule: str
    metric: str
    value: float
    threshold: float
    severity: str
    kind: str  # "fired" | "resolved"
    at_unix: float = field(default_factory=time.time)
    trace_id: Optional[str] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "metric": self.metric,
            "value": self.value,
            "threshold": self.threshold,
            "severity": self.severity,
            "kind": self.kind,
            "at_unix": self.at_unix,
            "trace_id": self.trace_id,
        }


class AlertSink:
    """Sink interface; subclasses override :meth:`emit`."""

    def emit(self, alert: Alert) -> None:
        raise NotImplementedError


class LogSink(AlertSink):
    """Routes alerts to structured logging at a severity-mapped level."""

    def emit(self, alert: Alert) -> None:
        message = kv(
            f"alert {alert.kind}",
            rule=alert.rule,
            metric=alert.metric,
            value=alert.value,
            threshold=alert.threshold,
            severity=alert.severity,
        )
        if alert.kind == "resolved" or alert.severity == Severity.INFO:
            _LOGGER.info(message)
        elif alert.severity == Severity.CRITICAL:
            _LOGGER.error(message)
        else:
            _LOGGER.warning(message)


class JsonlSink(AlertSink):
    """Appends one JSON object per alert to a file."""

    def __init__(self, path) -> None:
        self.path = path

    def emit(self, alert: Alert) -> None:
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(alert.as_dict()) + "\n")


class CallbackSink(AlertSink):
    """Invokes an arbitrary callable with each alert."""

    def __init__(self, fn: Callable[[Alert], None]) -> None:
        self.fn = fn

    def emit(self, alert: Alert) -> None:
        self.fn(alert)


# ----------------------------------------------------------------------
# Fired-alert observers (the flight recorder hooks postmortem dumps here;
# registration lives in this module so alerts stays import-light).
# ----------------------------------------------------------------------
_ALERT_OBSERVERS: List[Callable[[Alert], None]] = []


def register_alert_observer(fn: Callable[[Alert], None]) -> None:
    """Call ``fn`` with every *fired* alert from any engine."""
    _ALERT_OBSERVERS.append(fn)


def unregister_alert_observer(fn: Callable[[Alert], None]) -> None:
    """Stop notifying ``fn`` (no-op when absent)."""
    for position in range(len(_ALERT_OBSERVERS) - 1, -1, -1):
        if _ALERT_OBSERVERS[position] is fn:
            del _ALERT_OBSERVERS[position]
            break


class _RuleState:
    __slots__ = ("streak", "active")

    def __init__(self) -> None:
        self.streak = 0
        self.active = False


class AlertEngine:
    """Evaluates rules against metric snapshots and fans out transitions.

    When a metrics registry is active, every *fired* transition also
    increments the ``alerts.fired`` counter (and
    ``alerts.fired.<severity>``), so run reports carry the alert volume
    even without a configured sink.
    """

    def __init__(
        self,
        rules: Sequence[AlertRule],
        sinks: Sequence[AlertSink] = (),
    ) -> None:
        names = [rule.name for rule in rules]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate rule names in {names}")
        self.rules = tuple(rules)
        self.sinks: List[AlertSink] = list(sinks) or [LogSink()]
        self.history: List[Alert] = []
        self._states: Dict[str, _RuleState] = {
            rule.name: _RuleState() for rule in self.rules
        }
        self.evaluations = 0

    # ------------------------------------------------------------------
    def add_sink(self, sink: AlertSink) -> None:
        self.sinks.append(sink)

    def add_rules(self, rules: Sequence[AlertRule]) -> None:
        """Register additional rules after construction (unique names)."""
        for rule in rules:
            if rule.name in self._states:
                raise ValueError(f"duplicate rule name {rule.name!r}")
            self.rules = self.rules + (rule,)
            self._states[rule.name] = _RuleState()

    def _emit(self, alert: Alert) -> None:
        self.history.append(alert)
        if alert.kind == "fired":
            registry = get_active_registry()
            if registry is not None:
                registry.counter("alerts.fired").inc()
                registry.counter(f"alerts.fired.{alert.severity}").inc()
        for sink in self.sinks:
            sink.emit(alert)
        if alert.kind == "fired":
            for observer in list(_ALERT_OBSERVERS):
                observer(alert)

    def evaluate(self, metrics: Mapping[str, object]) -> List[Alert]:
        """Advance every rule against ``metrics``; return new transitions.

        Metrics that are absent, ``None`` or non-finite are skipped and
        leave the corresponding rule's streak/active state unchanged.
        """
        self.evaluations += 1
        context = current_trace_context()
        trace_id = None if context is None else context.trace_id
        transitions: List[Alert] = []
        for rule in self.rules:
            value = metrics.get(rule.metric)
            if value is None or not isinstance(value, (int, float)):
                continue
            value = float(value)
            if not math.isfinite(value):
                continue
            state = self._states[rule.name]
            if not state.active:
                if rule.breaches(value):
                    state.streak += 1
                    if state.streak >= rule.consecutive:
                        state.active = True
                        state.streak = 0
                        transitions.append(
                            Alert(
                                rule=rule.name,
                                metric=rule.metric,
                                value=value,
                                threshold=rule.threshold,
                                severity=rule.severity,
                                kind="fired",
                                trace_id=trace_id,
                            )
                        )
                else:
                    state.streak = 0
            elif rule.clears(value):
                state.active = False
                state.streak = 0
                transitions.append(
                    Alert(
                        rule=rule.name,
                        metric=rule.metric,
                        value=value,
                        threshold=rule.threshold,
                        severity=rule.severity,
                        kind="resolved",
                        trace_id=trace_id,
                    )
                )
        for alert in transitions:
            self._emit(alert)
        return transitions

    # ------------------------------------------------------------------
    def active_alerts(self) -> List[str]:
        """Names of rules currently in the fired state."""
        return [name for name, state in self._states.items() if state.active]

    @property
    def fired(self) -> List[Alert]:
        """Every ``fired`` transition so far."""
        return [alert for alert in self.history if alert.kind == "fired"]

    def iter_records(self):
        """One JSON-friendly record per historical transition."""
        for alert in self.history:
            yield alert.as_dict()
