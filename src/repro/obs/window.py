"""Block-rotated sliding windows over fixed-size count arrays.

The streaming quality estimators (:mod:`repro.obs.quality`) and the drift
detectors (:mod:`repro.obs.drift`) all reduce an observation stream to a
small set of per-bin accumulator arrays (positive counts, label sums,
score sums, ...).  Exact sliding windows would need per-observation
memory; instead :class:`SlidingBlocks` seals accumulators into *blocks*
of roughly ``block_size`` observations and evicts whole blocks from the
tail, so the retained span stays within ``[window, window + block_size)``
observations at O(window / block_size) memory, with every update still a
vectorised array addition.

With ``window=None`` the blocks degenerate to a single cumulative
accumulator (nothing is ever evicted).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["SlidingBlocks"]


class SlidingBlocks:
    """Sliding-window totals over parallel accumulator arrays.

    Parameters
    ----------
    array_sizes:
        Length of each parallel accumulator vector (e.g. ``(n_bins,
        n_bins)`` for positive/negative histograms).
    window:
        Approximate number of most-recent observations to retain; ``None``
        keeps everything (cumulative mode).
    block_size:
        Observations per sealed block; defaults to ``window // 8``
        (minimum 1).  Smaller blocks track the window more tightly at the
        cost of more retained arrays.
    """

    def __init__(
        self,
        array_sizes: Sequence[int],
        window: Optional[int] = None,
        block_size: Optional[int] = None,
    ) -> None:
        if not array_sizes:
            raise ValueError("array_sizes must name at least one accumulator")
        if window is not None and window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if block_size is None and window is not None:
            block_size = max(1, window // 8)
        if block_size is not None and block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        self._sizes = tuple(int(size) for size in array_sizes)
        self.window = window
        self.block_size = block_size
        self._live = [np.zeros(size) for size in self._sizes]
        self._live_count = 0
        # Sealed blocks, oldest first: (observation_count, arrays).
        self._sealed: "Deque[Tuple[int, List[np.ndarray]]]" = deque()
        self._sealed_count = 0
        self.total_seen = 0

    # ------------------------------------------------------------------
    def add(self, n_observations: int, *deltas: np.ndarray) -> None:
        """Accumulate ``deltas`` representing ``n_observations`` samples."""
        if len(deltas) != len(self._live):
            raise ValueError(
                f"expected {len(self._live)} delta arrays, got {len(deltas)}"
            )
        if n_observations < 0:
            raise ValueError(f"n_observations must be >= 0, got {n_observations}")
        for accumulator, delta in zip(self._live, deltas):
            accumulator += delta
        self._live_count += int(n_observations)
        self.total_seen += int(n_observations)
        if self.window is None:
            return
        if self._live_count >= self.block_size:
            self._sealed.append((self._live_count, self._live))
            self._sealed_count += self._live_count
            self._live = [np.zeros(size) for size in self._sizes]
            self._live_count = 0
            # Evict whole tail blocks while the remainder still covers
            # the window.
            while (
                self._sealed
                and self._sealed_count + self._live_count - self._sealed[0][0]
                >= self.window
            ):
                evicted_count, _ = self._sealed.popleft()
                self._sealed_count -= evicted_count

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Observations currently inside the window."""
        return self._sealed_count + self._live_count

    def totals(self) -> Tuple[np.ndarray, ...]:
        """Windowed sum of each accumulator array (freshly allocated)."""
        totals = [accumulator.copy() for accumulator in self._live]
        for _, arrays in self._sealed:
            for total, sealed in zip(totals, arrays):
                total += sealed
        return tuple(totals)

    def reset(self) -> None:
        """Drop every retained observation."""
        self._live = [np.zeros(size) for size in self._sizes]
        self._live_count = 0
        self._sealed.clear()
        self._sealed_count = 0
        self.total_seen = 0

    # ------------------------------------------------------------------
    # Mergeable snapshots
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Windowed totals plus the observation count, JSON-friendly."""
        return {
            "count": self.count,
            "totals": [total.tolist() for total in self.totals()],
        }

    def merge_state(self, state: dict) -> None:
        """Fold a snapshot's windowed totals in as one batched addition.

        Exact in cumulative mode (``window=None``): sums of sums.  In
        windowed mode the snapshot lands as a single batch, so it rotates
        through the block ring like any other bulk update — the usual
        block-granularity approximation, nothing worse.
        """
        arrays = [np.asarray(values, dtype=float) for values in state["totals"]]
        self.add(int(state["count"]), *arrays)
